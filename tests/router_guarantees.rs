//! Differential tests of the line-expansion router's headline
//! guarantee (§5.5.4): *a connection is found whenever one exists*.
//!
//! The oracle is the Lee maze router — complete by construction — run
//! over the same obstacle configurations. Across hundreds of randomized
//! planes:
//!
//! * line expansion and Lee agree on routability,
//! * line expansion never needs more bends than Lee's minimum-length
//!   path uses (it minimises bends),
//! * Hightower never routes something unreachable, but does give up on
//!   reachable mazes (its documented incompleteness),
//! * every produced path is a connected tree through both terminals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netart::geom::{Dir, Point, Rect, Segment};
use netart::netlist::NetId;
use netart::route::{hightower, lee, line_expansion, ObstacleKind, ObstacleMap};

struct Maze {
    map: ObstacleMap,
    bounds: Rect,
    from: Point,
    to: Point,
}

fn random_maze(seed: u64) -> Option<Maze> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = rng.gen_range(20..36);
    let h = rng.gen_range(16..30);
    let bounds = Rect::new(Point::new(0, 0), w, h);
    let mut map = ObstacleMap::new();
    map.add_rect(&bounds, ObstacleKind::Module);
    let mut rects = Vec::new();
    for _ in 0..rng.gen_range(2..7) {
        let rw = rng.gen_range(2..8);
        let rh = rng.gen_range(2..8);
        let x = rng.gen_range(1..(w - rw).max(2));
        let y = rng.gen_range(1..(h - rh).max(2));
        let r = Rect::new(Point::new(x, y), rw, rh);
        map.add_rect(&r, ObstacleKind::Module);
        rects.push(r);
    }
    // Pre-existing foreign nets to cross; their interiors are legal
    // crossings, their endpoints block. Distinct tracks: two nets may
    // never overlap collinearly in a legal diagram.
    let mut used_tracks = Vec::new();
    for n in 0..rng.gen_range(0..3) {
        let track = rng.gen_range(2..h - 2);
        if used_tracks.contains(&track) {
            continue;
        }
        used_tracks.push(track);
        let lo = rng.gen_range(1..w / 2);
        let hi = rng.gen_range(w / 2..w - 1);
        map.add(
            Segment::horizontal(track, lo, hi),
            ObstacleKind::Net(NetId::from_index(100 + n)),
        );
    }
    // Terminals must be clear of every obstacle so all four routers
    // start from identical conditions.
    let clear = |p: Point, rects: &[Rect], map: &ObstacleMap| {
        bounds.contains_strictly(p)
            && !rects.iter().any(|r| r.contains(p))
            && !map.point_matches(p, |_| true)
    };
    let mut pick = |map: &ObstacleMap| {
        for _ in 0..200 {
            let p = Point::new(rng.gen_range(1..w), rng.gen_range(1..h));
            if clear(p, &rects, map) {
                return Some(p);
            }
        }
        None
    };
    let from = pick(&map)?;
    let to = pick(&map)?;
    (from != to).then_some(Maze { map, bounds, from, to })
}

fn net() -> NetId {
    NetId::from_index(0)
}

#[test]
fn line_expansion_matches_lee_on_routability() {
    let mut solvable = 0;
    let mut checked = 0;
    for seed in 0..300 {
        let Some(maze) = random_maze(seed) else { continue };
        checked += 1;
        let oracle = lee::route_two_points(
            &maze.map,
            maze.bounds.inflate(-1),
            maze.from,
            maze.to,
            net(),
        );
        let ours = line_expansion::route_two_points(
            &maze.map,
            (maze.from, &Dir::ALL),
            (maze.to, &Dir::ALL),
            net(),
        );
        assert_eq!(
            oracle.is_some(),
            ours.is_some(),
            "seed {seed}: lee={:?} line-expansion={:?} from {} to {}",
            oracle.as_ref().map(|p| p.length()),
            ours.as_ref().map(|p| p.length()),
            maze.from,
            maze.to
        );
        if oracle.is_some() {
            solvable += 1;
        }
    }
    assert!(checked > 200, "maze generation degenerated: {checked}");
    assert!(solvable > 100, "mazes should mostly be solvable: {solvable}");
}

#[test]
fn line_expansion_minimises_bends_lee_minimises_length() {
    // §5.8: line expansion finds minimum-bend paths "in most cases" —
    // zero-length trace hops can merge segments, so a rare maze gets
    // one extra bend. The contract verified here: never shorter than
    // Lee (Lee is length-optimal), hardly ever more bends than Lee's
    // path (and then by at most one), and clearly fewer bends overall.
    let mut solved = 0;
    let mut bend_wins = 0;
    let mut bend_losses = 0;
    let mut total_le_bends = 0u64;
    let mut total_lee_bends = 0u64;
    for seed in 0..300 {
        let Some(maze) = random_maze(seed) else { continue };
        let (Some(lee_path), Some(le_path)) = (
            lee::route_two_points(&maze.map, maze.bounds.inflate(-1), maze.from, maze.to, net()),
            line_expansion::route_two_points(
                &maze.map,
                (maze.from, &Dir::ALL),
                (maze.to, &Dir::ALL),
                net(),
            ),
        ) else {
            continue;
        };
        solved += 1;
        // Lee is length-optimal: nobody beats it on length.
        assert!(
            le_path.length() >= lee_path.length(),
            "seed {seed}: {} < {}",
            le_path.length(),
            lee_path.length()
        );
        total_le_bends += u64::from(le_path.bends());
        total_lee_bends += u64::from(lee_path.bends());
        if le_path.bends() < lee_path.bends() {
            bend_wins += 1;
        } else if le_path.bends() > lee_path.bends() {
            bend_losses += 1;
            assert!(
                le_path.bends() <= lee_path.bends() + 1,
                "seed {seed}: {} vs {}",
                le_path.bends(),
                lee_path.bends()
            );
        }
    }
    assert!(solved > 100, "solved {solved}");
    assert!(
        bend_wins > 3 * bend_losses,
        "wins {bend_wins} losses {bend_losses} solved {solved}"
    );
    assert!(
        bend_losses * 10 <= solved,
        "losses {bend_losses} of {solved}"
    );
    assert!(
        total_le_bends < total_lee_bends,
        "aggregate bends {total_le_bends} !< {total_lee_bends}"
    );
}

#[test]
fn produced_paths_are_sound_trees() {
    for seed in 0..150 {
        let Some(maze) = random_maze(seed) else { continue };
        if let Some(p) = line_expansion::route_two_points(
            &maze.map,
            (maze.from, &Dir::ALL),
            (maze.to, &Dir::ALL),
            net(),
        ) {
            assert!(p.connects(&[maze.from, maze.to]), "seed {seed}");
            assert!(p.is_tree(), "seed {seed}: {:?}", p.segments());
        }
        if let Some(p) = lee::route_two_points(
            &maze.map,
            maze.bounds.inflate(-1),
            maze.from,
            maze.to,
            net(),
        ) {
            assert!(p.connects(&[maze.from, maze.to]), "seed {seed}");
            assert!(p.is_tree(), "seed {seed}");
        }
    }
}

#[test]
fn hightower_is_incomplete_but_sound() {
    let mut reachable = 0;
    let mut ht_solved = 0;
    for seed in 0..200 {
        let Some(maze) = random_maze(seed) else { continue };
        let oracle = lee::route_two_points(
            &maze.map,
            maze.bounds.inflate(-1),
            maze.from,
            maze.to,
            net(),
        )
        .is_some();
        if oracle {
            reachable += 1;
        }
        if let Some(p) =
            hightower::route_two_points(&maze.map, maze.bounds.inflate(-1), maze.from, maze.to)
        {
            ht_solved += 1;
            assert!(p.connects(&[maze.from, maze.to]), "seed {seed}");
            assert!(oracle, "hightower routed an unreachable pair, seed {seed}");
        }
    }
    assert!(ht_solved <= reachable, "{ht_solved} vs {reachable}");
    assert!(ht_solved * 2 > reachable, "hightower should solve easy mazes");
}
