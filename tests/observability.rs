//! Observability guarantees: metrics determinism and run-report
//! coherence over full pipeline runs.
//!
//! Counters are the deterministic half of the metrics registry — two
//! runs of the same input must produce identical counter maps, while
//! histograms (which absorb wall-clock observations) may differ. The
//! run report must agree with the outcome it was derived from.

use netart::place::PlaceConfig;
use netart::route::RouteConfig;
use netart::Generator;
use netart_workloads::{controller_cluster, life, random_network, string_chain, RandomSpec};

#[test]
fn counters_are_identical_across_reruns() {
    let run = |seed: u64| {
        let spec = RandomSpec::new(12, 18).with_seed(seed).with_max_fanout(4);
        Generator::new()
            .with_placing(PlaceConfig::strings())
            .with_routing(RouteConfig::new().with_margin(3))
            .generate(random_network(&spec))
    };
    for seed in [0, 3, 7] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(
            a.metrics.counters, b.metrics.counters,
            "seed {seed}: counter snapshots differ between identical runs"
        );
        // The timing histograms exist in both runs even when their
        // observed values differ.
        assert_eq!(
            a.metrics.histograms.keys().collect::<Vec<_>>(),
            b.metrics.histograms.keys().collect::<Vec<_>>(),
            "seed {seed}: histogram sets differ between identical runs"
        );
    }
}

#[test]
fn counters_are_identical_across_paper_workload_reruns() {
    let run = || Generator::new().generate(controller_cluster());
    assert_eq!(run().metrics.counters, run().metrics.counters);

    let route_life = || {
        let network = life::network();
        let hand = life::hand_placement(&network);
        Generator::new()
            .route_only(network, hand)
            .expect("hand placement is complete")
    };
    assert_eq!(route_life().metrics.counters, route_life().metrics.counters);
}

#[test]
fn route_only_counters_and_reports_are_deterministic() {
    // The eureka path: routing an already-placed diagram must be just
    // as deterministic as the full pipeline — identical counter maps
    // and byte-identical normalized run reports across reruns.
    let run = || {
        let network = life::network();
        let hand = life::hand_placement(&network);
        Generator::new()
            .with_routing(RouteConfig::new().with_margin(4))
            .route_only(network, hand)
            .expect("hand placement is complete")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.metrics.counters, b.metrics.counters,
        "route-only counter snapshots differ between identical runs"
    );
    assert_eq!(
        a.run_report("eureka").normalized().to_json_string(),
        b.run_report("eureka").normalized().to_json_string(),
        "route-only normalized run reports are not byte-identical"
    );
}

#[test]
fn run_report_agrees_with_outcome() {
    let network = string_chain(5);
    let nets = network.net_count();
    let outcome = Generator::new()
        .with_placing(PlaceConfig::strings().with_max_box_size(5))
        .generate(network);
    let report = outcome.run_report("netart");

    assert_eq!(report.tool, "netart");
    assert_eq!(report.network.nets, nets);
    assert_eq!(report.nets.len(), nets, "one NetReport per net");
    assert_eq!(report.quality.routed_nets, outcome.report.routed.len());
    assert_eq!(report.is_clean, outcome.is_clean());
    assert_eq!(
        report.is_clean,
        report.degradations.is_empty(),
        "is_clean must mirror the degradation list"
    );

    // Both pipeline phases ran and took measurable time.
    for phase in ["place", "route"] {
        let ns = report.phase_ns(phase).unwrap_or(0);
        assert!(ns > 0, "phase {phase} reported zero wall time");
    }

    // Per-net effort rolls up to the aggregate counter.
    let per_net: u64 = report.nets.iter().map(|n| n.nodes_expanded).sum();
    assert_eq!(
        per_net,
        report.metrics.counters["route.nodes_expanded"],
        "per-net nodes_expanded must sum to the aggregate counter"
    );
    assert!(per_net > 0, "router expanded no nodes");
    assert_eq!(
        report.metrics.counters["route.nets_routed"],
        outcome.report.routed.len() as u64
    );
}

#[test]
fn route_only_report_has_no_place_phase() {
    let network = life::network();
    let hand = life::hand_placement(&network);
    let outcome = Generator::new()
        .route_only(network, hand)
        .expect("hand placement is complete");
    let report = outcome.run_report("eureka");
    assert_eq!(report.phase_ns("place"), None, "routing-only run");
    assert!(report.phase_ns("route").unwrap_or(0) > 0);
    assert!(!report.metrics.histograms.contains_key("phase.place_ns"));
}
