//! Pipeline-hardening integration tests: tight routing budgets on
//! congested networks must degrade gracefully — salvage, Lee fallback,
//! or ghost wires — and never panic or corrupt the diagram.

use std::time::Duration;

use netart::route::{Budget, SalvageStep};
use netart::{Degradation, Generator, Routing};
use netart_workloads::{random_network, string_chain, RandomSpec};

/// Every net must end the run either routed or carrying a ghost wire,
/// and the structural check must hold for the routed subset.
fn assert_degraded_but_sound(outcome: &netart::Outcome) {
    for n in outcome.diagram.unrouted() {
        assert!(
            outcome.diagram.ghost(n).is_some(),
            "unrouted net {n:?} has no ghost wire"
        );
    }
    let check = outcome.diagram.check();
    assert!(check.is_ok(), "routed subset must stay sound: {check}");
    // The report and the degradation list agree.
    let report = &outcome.report;
    for record in &report.salvaged {
        assert!(
            outcome.degradations.iter().any(|d| matches!(
                d,
                Degradation::NetSalvaged { net, .. } if *net == record.net
            )),
            "salvage record for {:?} missing from degradations",
            record.net
        );
    }
    for &n in &report.failed {
        assert!(
            !report.routed.contains(&n),
            "net {n:?} both routed and failed"
        );
    }
}

#[test]
fn tight_budget_on_congested_network_degrades_gracefully() {
    let network = random_network(&RandomSpec::new(16, 28).with_seed(11).with_max_fanout(5));
    let nets = network.net_count();
    let budget = Budget::new()
        .with_node_limit(6)
        .with_time_limit(Duration::from_millis(50));
    let outcome = Generator::strings()
        .with_routing(Routing::new().with_budget(budget))
        .generate(network);

    assert_degraded_but_sound(&outcome);
    // A 6-node budget cannot route a congested network cleanly: the
    // salvage cascade must have fired, and every fallback is recorded.
    assert!(
        !outcome.degradations.is_empty(),
        "expected degradations under a 6-node budget, report: {:?}",
        outcome.report
    );
    assert!(!outcome.is_clean());
    assert_eq!(
        outcome.report.routed.len() + outcome.report.failed.len(),
        nets,
        "every net accounted for"
    );
}

#[test]
fn one_node_budget_never_panics_and_ghosts_carry_the_rest() {
    let network = string_chain(12);
    let outcome = Generator::strings()
        .with_routing(Routing::new().with_budget(Budget::new().with_node_limit(1)))
        .generate(network);
    assert_degraded_but_sound(&outcome);
    // Whatever the cascade managed, the output shows every connection:
    // real wire or ghost line.
    for n in outcome.diagram.network().nets() {
        assert!(
            outcome.diagram.route(n).is_some() || outcome.diagram.ghost(n).is_some(),
            "net {n:?} vanished from the output"
        );
    }
}

#[test]
fn salvage_steps_are_reported_in_cascade_order() {
    let network = random_network(&RandomSpec::new(16, 28).with_seed(11).with_max_fanout(5));
    let outcome = Generator::strings()
        .with_routing(Routing::new().with_budget(Budget::new().with_node_limit(6)))
        .generate(network);
    for record in &outcome.report.salvaged {
        match record.step {
            // A rip-up or Lee salvage means the net really routed.
            SalvageStep::RipUpRetry | SalvageStep::LeeFallback => {
                assert!(
                    outcome.diagram.route(record.net).is_some(),
                    "{record:?} claims a route that does not exist"
                );
                assert!(outcome.report.routed.contains(&record.net));
            }
            SalvageStep::GhostWire => {
                assert!(outcome.diagram.route(record.net).is_none());
                assert!(
                    outcome.diagram.ghost(record.net).is_some(),
                    "{record:?} claims a ghost that does not exist"
                );
                assert!(outcome.report.failed.contains(&record.net));
            }
        }
    }
}

#[test]
fn disabling_salvage_leaves_failures_bare() {
    let network = random_network(&RandomSpec::new(16, 28).with_seed(11).with_max_fanout(5));
    let outcome = Generator::strings()
        .with_routing(
            Routing::new()
                .with_budget(Budget::new().with_node_limit(6))
                .without_salvage(),
        )
        .generate(network);
    assert!(outcome.report.salvaged.is_empty());
    for &n in &outcome.report.failed {
        assert!(
            outcome.diagram.ghost(n).is_none(),
            "no ghosts without salvage"
        );
        assert!(outcome
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::NetUnrouted(m) if *m == n)));
    }
}

#[test]
fn unlimited_budget_stays_clean_on_reference_workloads() {
    for network in [string_chain(12), netart_workloads::controller_cluster()] {
        let outcome = Generator::strings().generate(network);
        assert!(outcome.is_clean(), "{:?}", outcome.degradations);
        assert!(outcome.report.failed.is_empty());
        assert!(outcome.report.salvaged.is_empty());
    }
}
