//! End-to-end pipeline tests: netlist → placement → routing → checked
//! diagram, across the paper's workloads and configurations.

use netart::place::PlaceConfig;
use netart::route::RouteConfig;
use netart::Generator;
use netart_workloads::{controller_cluster, life, random_network, string_chain, RandomSpec};

/// Generates and validates; returns (routed, total, diagram).
fn run(g: &Generator, net: netart::netlist::Network) -> (usize, usize, netart::diagram::Diagram) {
    let total = net.net_count();
    let out = g.generate(net);
    let check = out.diagram.check();
    assert!(check.is_ok(), "structural check failed: {check}");
    (out.report.routed.len(), total, out.diagram)
}

#[test]
fn string_chain_routes_fully_with_zero_extra_bends() {
    // Figure 6.1: one partition, one box of all six modules (the box
    // limit must admit the whole string), minimal bends.
    let g = Generator::new()
        .with_placing(PlaceConfig::strings().with_max_box_size(6));
    let (routed, total, diagram) = run(&g, string_chain(6));
    assert_eq!(routed, total);
    let m = diagram.metrics();
    let s = diagram.placement().structure().expect("pablo structure");
    assert_eq!(s.partition_count(), 1);
    assert_eq!(s.box_count(), 1);
    assert_eq!(s.longest_string(), 6);
    assert!(m.total_bends <= 2, "expected nearly straight wires: {m}");
    assert_eq!(m.crossovers, 0);
}

#[test]
fn cluster_all_presets_route_fully() {
    for cfg in [
        PlaceConfig::default(),
        PlaceConfig::clusters(),
        PlaceConfig::strings(),
    ] {
        let g = Generator::new().with_placing(cfg.clone());
        let (routed, total, _) = run(&g, controller_cluster());
        assert_eq!(routed, total, "preset {cfg:?}");
    }
}

#[test]
fn cluster_partition_structure_matches_figures() {
    // Figure 6.2: -p 1 -b 1 → 16 singleton partitions.
    let out = Generator::new().generate(controller_cluster());
    let s = out.diagram.placement().structure().unwrap();
    assert_eq!(s.partition_count(), 16);

    // Figure 6.3: -p 5 -b 1 → partitions of at most 5 forming groups.
    let out = Generator::new()
        .with_placing(PlaceConfig::clusters())
        .generate(controller_cluster());
    let s = out.diagram.placement().structure().unwrap();
    assert!(s.partitions.iter().all(|p| p.len() <= 5));
    assert!(s.partition_count() >= 4, "{}", s.partition_count());
    assert_eq!(s.longest_string(), 1, "-b 1 forbids strings");

    // Figure 6.4: -p 7 -b 5 → strings of connected modules appear.
    let out = Generator::strings().generate(controller_cluster());
    let s = out.diagram.placement().structure().unwrap();
    assert!(s.longest_string() >= 3, "strings expected: {}", s.longest_string());
}

#[test]
fn signal_flow_is_left_to_right_in_strings() {
    let out = Generator::strings().generate(string_chain(5));
    let d = &out.diagram;
    let net = d.network();
    let s = d.placement().structure().unwrap();
    for part in &s.partitions {
        for string in part {
            for w in string.windows(2) {
                let a = d.placement().module(w[0]).unwrap().position;
                let b = d.placement().module(w[1]).unwrap().position;
                assert!(a.x < b.x, "driver left of consumer");
            }
        }
    }
    // Rule 4: the output system terminal ends up on the right edge.
    let out_term = net.system_term_by_name("out").unwrap();
    let pos = d.placement().system_term(out_term).unwrap();
    let bb = d.placement().bounding_box(net).unwrap();
    assert_eq!(pos.x, bb.upper_right().x, "output on the right ring edge");
}

#[test]
fn preplaced_flow_reproduces_figure_6_5() {
    // Generate the figure 6.2 diagram, move one module far away by
    // hand, regenerate around it: the edit survives, everything routes.
    let first = Generator::new().generate(controller_cluster());
    let (network, mut placement, _) = first.diagram.into_parts();
    let victim = network.module_by_name("g0_pe0").unwrap();
    let bb = placement.bounding_box(&network).unwrap();
    let target = netart::geom::Point::new(bb.lower_left().x - 30, bb.upper_right().y + 10);
    // Keep only the victim placed; everything else re-places around it.
    let mut preplaced = netart::diagram::Placement::new(&network);
    preplaced.place_module(victim, target, netart::geom::Rotation::R0);
    placement = preplaced;
    let out = Generator::new().generate_with_preplaced(network, placement);
    assert_eq!(out.diagram.placement().module(victim).unwrap().position, target);
    let check = out.diagram.check();
    assert!(check.is_ok(), "{check}");
}

#[test]
fn random_networks_route_overwhelmingly() {
    let mut total_nets = 0;
    let mut total_routed = 0;
    for seed in 0..6 {
        let net = random_network(&RandomSpec::new(10, 14).with_seed(seed));
        let g = Generator::strings()
            .with_routing(RouteConfig::new().with_margin(5));
        let total = net.net_count();
        let out = g.generate(net);
        let check = out.diagram.check();
        assert!(check.is_ok(), "seed {seed}: {check}");
        total_nets += total;
        total_routed += out.report.routed.len();
    }
    assert!(
        total_routed * 100 >= total_nets * 95,
        "only {total_routed}/{total_nets} routed"
    );
}

#[test]
fn life_hand_placement_routes_like_the_paper() {
    // Figure 6.6: hand placement, 222 nets, almost everything routes.
    let net = life::network();
    let hand = life::hand_placement(&net);
    let out = Generator::new()
        .route_only(net, hand)
        .expect("hand placement is complete");
    let check = out.diagram.check();
    assert!(check.is_ok(), "{check}");
    let routed = out.report.routed.len();
    assert!(
        routed >= 215,
        "paper routed 220/222 on its hand placement; got {routed}/222"
    );
}

#[test]
fn metrics_and_svg_on_generated_diagram() {
    let out = Generator::strings().generate(controller_cluster());
    let m = out.diagram.metrics();
    assert_eq!(m.routed_nets, 24);
    assert!(m.total_length > 100);
    assert!(m.bounding_area > 0);
    let svg = netart::diagram::svg::render(&out.diagram);
    assert!(svg.starts_with("<svg"));
    // One line element per wire segment.
    let segs: usize = out.diagram.routes().map(|(_, p)| p.segments().len()).sum();
    assert_eq!(netart::diagram::svg::wire_segment_count(&svg), segs);
}

#[test]
fn escher_round_trip_preserves_generated_diagram() {
    let out = Generator::strings().generate(controller_cluster());
    let text = netart::diagram::escher::write_diagram("cluster", &out.diagram);
    let restored =
        netart::diagram::escher::parse_diagram(out.diagram.network().clone(), &text).unwrap();
    let m0 = out.diagram.metrics();
    let m1 = restored.metrics();
    assert_eq!(m0, m1, "metrics survive the ESCHER round trip");
    assert!(restored.check().is_ok());
}
