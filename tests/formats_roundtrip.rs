//! Round-trip tests for the Appendix A/B/D file formats across the
//! whole pipeline: write a network to its record files, read it back,
//! generate, write the diagram, read it back.

use netart::diagram::escher;
use netart::netlist::format;
use netart::Generator;
use netart_workloads::{controller_cluster, life, string_chain};

fn library_of(net: &netart::netlist::Network) -> netart::netlist::Library {
    net.library().clone()
}

#[test]
fn appendix_a_round_trip_on_all_workloads() {
    for net in [string_chain(6), controller_cluster(), life::network()] {
        let calls = format::write_call_file(&net);
        let io = format::write_io_file(&net);
        let nets = format::write_net_list_file(&net);
        let restored = format::parse_network(library_of(&net), &nets, &calls, Some(&io))
            .expect("round trip parses");
        assert_eq!(restored.module_count(), net.module_count());
        assert_eq!(restored.net_count(), net.net_count());
        assert_eq!(restored.system_term_count(), net.system_term_count());
        for n in net.nets() {
            let rn = restored.net_by_name(net.net(n).name()).expect("net survives");
            assert_eq!(
                restored.net(rn).pins().len(),
                net.net(n).pins().len(),
                "net {}",
                net.net(n).name()
            );
        }
    }
}

#[test]
fn parsed_network_generates_identically() {
    let net = controller_cluster();
    let calls = format::write_call_file(&net);
    let io = format::write_io_file(&net);
    let nets = format::write_net_list_file(&net);
    let reparsed = format::parse_network(library_of(&net), &nets, &calls, Some(&io)).unwrap();

    let a = Generator::strings().generate(net);
    let b = Generator::strings().generate(reparsed);
    assert_eq!(a.report.routed.len(), b.report.routed.len());
    assert_eq!(a.diagram.metrics(), b.diagram.metrics(), "fully deterministic");
}

#[test]
fn quinto_round_trip_for_every_library_template() {
    let net = life::network();
    for (_, tpl) in net.library().iter() {
        let text = format::quinto::write_module(tpl);
        let back = format::quinto::parse_module(&text).expect("quinto parses its own output");
        assert_eq!(&back, tpl, "template {}", tpl.name());
    }
}

#[test]
fn escher_file_reloads_into_equal_diagram() {
    let out = Generator::strings().generate(string_chain(6));
    let text = escher::write_diagram("fig6_1", &out.diagram);
    assert!(text.starts_with(escher::HEADER));
    let restored = escher::parse_diagram(out.diagram.network().clone(), &text).unwrap();
    for m in out.diagram.network().modules() {
        assert_eq!(
            out.diagram.placement().module(m),
            restored.placement().module(m)
        );
    }
    for n in out.diagram.network().nets() {
        let a = out.diagram.route(n).map(|p| p.length());
        let b = restored.route(n).map(|p| p.length());
        assert_eq!(a, b);
    }
}

#[test]
fn escher_reload_can_seed_rerouting() {
    // The paper's designer loop: dump the diagram, clear one net's
    // route in the file model, reroute only that net.
    let out = Generator::strings().generate(controller_cluster());
    let text = escher::write_diagram("cluster", &out.diagram);
    let mut diagram = escher::parse_diagram(out.diagram.network().clone(), &text).unwrap();
    let some_net = diagram.network().nets().next().unwrap();
    diagram.clear_route(some_net);
    let report = netart::route::Eureka::new(netart::route::RouteConfig::default())
        .route(&mut diagram);
    assert!(report.failed.is_empty(), "{report:?}");
    assert!(diagram.route(some_net).is_some());
    assert!(diagram.check().is_ok(), "{}", diagram.check());
}

mod escher_fixed_point {
    use super::*;
    use netart::netlist::doctor::{self, InputPolicy};
    use proptest::prelude::*;

    const MODULE_SRC: &str = "module inv 40 20\nin a 0 10\nout y 40 10\n";

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24 })]

        /// Emit → parse → emit is a fixed point, even for diagrams
        /// generated from defective inputs the doctor repaired under
        /// best-effort: duplicate instances, unknown templates (stub
        /// synthesis), unknown instances/terminals, pin conflicts and
        /// dangling nets.
        #[test]
        fn escher_emit_is_a_fixed_point_over_doctored_networks(
            extra_calls in proptest::collection::vec(
                (0u8..6, prop::sample::select(vec!["inv", "ghost"])),
                0..4,
            ),
            extra_pins in proptest::collection::vec(
                (0u8..3, 0u8..7, prop::sample::select(vec!["a", "y", "z"])),
                0..8,
            ),
        ) {
            let mut calls = String::from("u0 inv\nu1 inv\n");
            for (i, tpl) in &extra_calls {
                calls.push_str(&format!("u{i} {tpl}\n"));
            }
            let mut nets = String::from("n0 u0 y\nn0 u1 a\n");
            for (n, i, t) in &extra_pins {
                if *i == 6 {
                    nets.push_str(&format!("n{n} root {t}\n"));
                } else {
                    nets.push_str(&format!("n{n} u{i} {t}\n"));
                }
            }
            let io = "in in\nin out\n"; // duplicate system terminal

            let mut lib = netart::netlist::Library::new();
            let (tpl, _) = doctor::doctor_module(MODULE_SRC, InputPolicy::Strict)
                .expect("clean module");
            lib.add_template(tpl).expect("unique template");
            let (network, _report) =
                doctor::doctor_network(lib, &nets, &calls, Some(io), InputPolicy::BestEffort)
                    .expect("best-effort always yields a network");

            let out = Generator::strings().generate(network);
            let first = escher::write_diagram("prop", &out.diagram);
            let reparsed = escher::parse_diagram(out.diagram.network().clone(), &first)
                .expect("emitted diagram re-parses");
            let second = escher::write_diagram("prop", &reparsed);
            prop_assert_eq!(first, second);
        }
    }
}

#[test]
fn malformed_inputs_are_rejected_with_line_numbers() {
    let net = string_chain(2);
    let e = format::parse_network(
        library_of(&net),
        "n0 u0 y\nn0 u1 a\n",
        "u0 buf\nmalformed\n",
        None,
    )
    .unwrap_err();
    assert_eq!(e.line, 2);

    let e = escher::parse_diagram(net, "#WRONG-HEADER\n").unwrap_err();
    assert_eq!(e.line, 1);
}
