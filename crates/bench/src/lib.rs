//! Shared experiment harness for the `netart` benchmark suite.
//!
//! One runner per table row / figure of Koster & Stok (1989) §6, each
//! returning a [`Row`] with the quantities the paper reports (module
//! and net counts, placement and routing CPU time) plus the diagram
//! quality metrics the guidelines optimise. The Criterion benches in
//! `benches/` time the same runners; the `repro_report` binary prints
//! the full paper-versus-measured account used in `EXPERIMENTS.md`.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use netart::diagram::{Diagram, DiagramMetrics};
use netart::geom::{Point, Rotation};
use netart::netlist::doctor::{self, InputPolicy};
use netart::netlist::ingest::records_from_str;
use netart::netlist::{Library, Network};
use netart::obs::{Json, RunReport};
use netart::place::PlaceConfig;
use netart::route::RouteConfig;
use netart::Generator;
use netart_govern::MemBudget;
use netart_workloads::text::{self, TextWorkload};
use netart_workloads::{controller_cluster, life, string_chain};

/// One row of the reproduced table 6.1, with quality metrics attached.
#[derive(Debug, Clone)]
pub struct Row {
    /// Which paper figure this row reproduces.
    pub label: &'static str,
    /// Modules in the network.
    pub modules: usize,
    /// Nets in the network.
    pub nets: usize,
    /// Placement wall time (`None` for routing-only rows, like the
    /// paper's dashes).
    pub place_time: Option<Duration>,
    /// Routing wall time.
    pub route_time: Duration,
    /// Nets routed successfully.
    pub routed: usize,
    /// Diagram quality metrics.
    pub metrics: DiagramMetrics,
    /// The run's full machine-readable report: per-phase timings,
    /// per-net router effort, degradation context.
    pub report: RunReport,
}

impl Row {
    fn from_outcome(label: &'static str, outcome: &netart::Outcome, placed: bool) -> Row {
        Row {
            label,
            modules: outcome.diagram.network().module_count(),
            nets: outcome.diagram.network().net_count(),
            place_time: placed.then_some(outcome.place_time),
            route_time: outcome.route_time,
            routed: outcome.report.routed.len(),
            metrics: outcome.diagram.metrics(),
            report: outcome.run_report(label),
        }
    }
}

/// The rows' run reports as one JSON array — the per-phase timing
/// breakdown the `BENCH_*.json` files carry.
pub fn rows_json(rows: &[Row]) -> Json {
    Json::Arr(rows.iter().map(|r| r.report.to_json()).collect())
}

/// Writes `BENCH_<name>.json` at the repository root (next to the
/// workspace `Cargo.toml`), so bench invocations leave their
/// machine-readable traces in one predictable place. Returns the path
/// written.
///
/// # Errors
///
/// Any filesystem error from the write.
pub fn write_bench_json(name: &str, json: &Json) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json.render_pretty())?;
    Ok(path)
}

/// Figure 6.1: a string of six modules, one partition, one box.
pub fn fig6_1() -> (Row, Diagram) {
    let g = Generator::new().with_placing(PlaceConfig::strings().with_max_box_size(6));
    let outcome = g.generate(string_chain(6));
    (Row::from_outcome("fig 6.1", &outcome, true), outcome.diagram)
}

/// Figure 6.2: the 16-module network with `-p 1 -b 1`.
pub fn fig6_2() -> (Row, Diagram) {
    let outcome = Generator::new().generate(controller_cluster());
    (Row::from_outcome("fig 6.2", &outcome, true), outcome.diagram)
}

/// Figure 6.3: the same network with `-p 5 -b 1`.
pub fn fig6_3() -> (Row, Diagram) {
    let outcome = Generator::new()
        .with_placing(PlaceConfig::clusters())
        .generate(controller_cluster());
    (Row::from_outcome("fig 6.3", &outcome, true), outcome.diagram)
}

/// Figure 6.4: the same network with `-p 7 -b 5`.
pub fn fig6_4() -> (Row, Diagram) {
    let outcome = Generator::new()
        .with_placing(PlaceConfig::strings())
        .generate(controller_cluster());
    (Row::from_outcome("fig 6.4", &outcome, true), outcome.diagram)
}

/// Figure 6.5: the figure 6.2 placement with one module manually moved
/// to the top left, then rerouted (a routing-only run, like the
/// paper's dash in the placement column).
pub fn fig6_5() -> (Row, Diagram) {
    let base = Generator::new().generate(controller_cluster());
    let (network, mut placement, _) = base.diagram.into_parts();
    // "one module has been manually placed from the center to the top
    // left": pick the module nearest the centre.
    let bb = placement.bounding_box(&network).expect("placed");
    let centre = bb.center();
    let victim = network
        .modules()
        .min_by_key(|&m| placement.module_rect(&network, m).center().dist2(centre))
        .expect("non-empty");
    placement.place_module(
        victim,
        Point::new(bb.lower_left().x - 16, bb.upper_right().y + 6),
        Rotation::R0,
    );
    let outcome = Generator::new()
        .route_only(network, placement)
        .expect("placement is complete");
    (Row::from_outcome("fig 6.5", &outcome, false), outcome.diagram)
}

/// Figure 6.6: the LIFE network routed over the designer's hand
/// placement.
pub fn fig6_6() -> (Row, Diagram) {
    let network = life::network();
    let hand = life::hand_placement(&network);
    let outcome = Generator::new()
        .route_only(network, hand)
        .expect("hand placement is complete");
    (Row::from_outcome("fig 6.6", &outcome, false), outcome.diagram)
}

/// The placement configuration used for the automatic LIFE run: the
/// string preset with the Appendix E spacing options providing the
/// routing room the paper calls for.
pub fn life_auto_generator() -> Generator {
    Generator::new()
        .with_placing(
            PlaceConfig::strings()
                .with_module_spacing(2)
                .with_box_spacing(3)
                .with_part_spacing(5),
        )
        .with_routing(RouteConfig::new().with_margin(8))
}

/// Figure 6.7: the LIFE network generated fully automatically.
pub fn fig6_7() -> (Row, Diagram) {
    let outcome = life_auto_generator().generate(life::network());
    (Row::from_outcome("fig 6.7", &outcome, true), outcome.diagram)
}

/// Parses a generated text workload through the governed record path —
/// the same streaming doctor and memory budget the CLI threads — and
/// returns the built network.
///
/// # Panics
///
/// On any doctor rejection or budget exhaustion: generated workloads
/// are clean by construction, so a rejection here is a generator bug,
/// not input noise, and the benches should fail loudly.
pub fn governed_text_network(w: &TextWorkload, budget: &Arc<MemBudget>) -> Network {
    let mut lib = Library::new();
    for (_, qto) in &w.modules {
        let (template, _) =
            doctor::doctor_module_records(records_from_str(qto), InputPolicy::Strict)
                .expect("generated module description is clean");
        lib.add_template(template)
            .expect("generated module names are unique");
    }
    let (network, _) = doctor::doctor_network_records(
        lib,
        records_from_str(&w.net),
        records_from_str(&w.cal),
        (!w.io.is_empty()).then(|| records_from_str(&w.io)),
        InputPolicy::Strict,
        budget,
    )
    .expect("generated workload is clean and under budget");
    network
}

/// The big-N scaling baseline: a 25×40 systolic cell array — 1000
/// modules, an order of magnitude past table 6.1 — ingested under the
/// memory governor and pushed through the default pipeline. Pinning
/// its normalized run report guards the large-N behaviour (routed
/// counts, per-net effort, degradations) the small paper figures
/// cannot see.
pub fn cells_1k() -> (Row, Diagram) {
    let budget = Arc::new(MemBudget::unlimited());
    let network = governed_text_network(&text::cell_array(25, 40), &budget);
    let outcome = Generator::new().generate(network);
    (
        Row::from_outcome("cells 1k", &outcome, true),
        outcome.diagram,
    )
}

/// One gated workload: the `baselines/` file stem and the runner
/// producing its row.
pub type BaselineWorkload = (&'static str, fn() -> (Row, Diagram));

/// The workloads whose normalized run reports are committed under
/// `baselines/` and guarded by the CI perf gate: one per table 6.1
/// row plus the [`cells_1k`] big-N scaling workload, keyed by the
/// file stem the baseline is written to.
pub fn baseline_workloads() -> Vec<BaselineWorkload> {
    vec![
        ("fig6_1", fig6_1 as fn() -> (Row, Diagram)),
        ("fig6_2", fig6_2),
        ("fig6_3", fig6_3),
        ("fig6_4", fig6_4),
        ("fig6_5", fig6_5),
        ("fig6_6", fig6_6),
        ("fig6_7", fig6_7),
        ("cells_1k", cells_1k),
    ]
}

/// The committed baseline text for one row: its run report with
/// wall-clock stripped (see [`RunReport::normalized`]), so
/// regeneration is bit-identical across machines.
pub fn baseline_text(row: &Row) -> String {
    let mut text = row.report.normalized().to_json().render_pretty();
    text.push('\n');
    text
}

/// All seven rows of table 6.1.
pub fn table_6_1() -> Vec<Row> {
    vec![
        fig6_1().0,
        fig6_2().0,
        fig6_3().0,
        fig6_4().0,
        fig6_5().0,
        fig6_6().0,
        fig6_7().0,
    ]
}

/// Formats a duration like the paper's `m:ss` CPU figures, with
/// sub-second precision appended since modern hardware is far below a
/// second on most rows.
pub fn fmt_duration(d: Duration) -> String {
    let total = d.as_secs_f64();
    format!("{:>8.3}s", total)
}

/// Renders the rows as an aligned text table.
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "figure   modules  nets   placement   routing     routed  length  bends  crossovers\n",
    );
    for r in rows {
        let place = r
            .place_time
            .map(fmt_duration)
            .unwrap_or_else(|| "       -".to_owned());
        out.push_str(&format!(
            "{:<8} {:>7}  {:>4}  {place}  {}  {:>3}/{:<3}  {:>6}  {:>5}  {:>10}\n",
            r.label,
            r.modules,
            r.nets,
            fmt_duration(r.route_time),
            r.routed,
            r.nets,
            r.metrics.total_length,
            r.metrics.total_bends,
            r.metrics.crossovers,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rows_have_paper_sizes() {
        let (r, d) = fig6_1();
        assert_eq!((r.modules, r.nets), (6, 6));
        assert!(d.check().is_ok());
        let (r, d) = fig6_2();
        assert_eq!((r.modules, r.nets), (16, 24));
        assert!(d.check().is_ok());
        let (r, _) = fig6_5();
        assert!(r.place_time.is_none(), "routing-only row");
    }

    #[test]
    fn table_renders_all_rows() {
        // Only the cheap rows here; the full table runs in the report
        // binary and benches.
        let rows = vec![fig6_1().0, fig6_2().0, fig6_3().0, fig6_4().0, fig6_5().0];
        let table = render_table(&rows);
        assert_eq!(table.lines().count(), 6);
        for label in ["fig 6.1", "fig 6.5"] {
            assert!(table.contains(label), "{table}");
        }
    }
}
