//! Regenerates (or checks) the committed `baselines/*.json` files the
//! CI perf gate diffs run reports against.
//!
//! Each baseline is the normalized run report of one table 6.1
//! workload: wall-clock timings are zeroed and timing histograms
//! dropped, so the files are bit-identical across machines and only
//! deterministic counters, per-net router effort, degradations, and
//! quality metrics remain. Bless an intentional change by rerunning
//! this binary and committing the result (see `EXPERIMENTS.md`).
//!
//! Usage:
//!
//! ```text
//! baselines [--out-dir DIR] [--check] [--raw]
//! ```
//!
//! `--out-dir` defaults to the workspace `baselines/` directory.
//! `--check` compares instead of writing and exits 1 on any drift or
//! missing file, printing the offending stems. `--raw` writes the
//! *full* run reports (timings intact) instead of normalized
//! baselines — the "current" side the CI perf gate feeds to
//! `netart report diff` — and also drops `BENCH_table_6_1.json` at
//! the repository root for artifact upload.
//!
//! Built `--features alloc-profile`, each report additionally carries
//! per-phase `alloc_count`/`alloc_bytes`/`peak_bytes` (the
//! `EXPERIMENTS.md` memory table). The *committed* baselines are
//! regenerated without the feature, so their alloc members stay null;
//! run `--check` from a default build.

use std::path::PathBuf;
use std::process::ExitCode;

use netart_bench::{baseline_text, baseline_workloads, rows_json, write_bench_json};

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines");
    let mut check = false;
    let mut raw = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out-dir" => match argv.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("baselines: --out-dir needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => check = true,
            "--raw" => raw = true,
            other => {
                eprintln!("baselines: unknown argument `{other}`");
                eprintln!("usage: baselines [--out-dir DIR] [--check] [--raw]");
                return ExitCode::FAILURE;
            }
        }
    }

    if !check {
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("baselines: create {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
    }

    // With the profiler compiled in, keep the thread-local phase tag
    // in step with the pipeline's spans so allocations attribute to
    // place/route (parse/emit happen outside this harness's runners).
    #[cfg(feature = "alloc-profile")]
    let _ = tracing::set_global_default(netart_obs::PhaseTagSubscriber);

    let mut drifted: Vec<&str> = Vec::new();
    let mut rows = Vec::new();
    for (stem, run) in baseline_workloads() {
        let alloc_base = netart_obs::AllocSnapshot::capture();
        let (mut row, _) = run();
        netart_obs::attach_alloc_profile(&mut row.report, &alloc_base);
        let text = if raw {
            let mut t = row.report.to_json().render_pretty();
            t.push('\n');
            t
        } else {
            baseline_text(&row)
        };
        rows.push(row);
        let path = out_dir.join(format!("{stem}.json"));
        if check {
            match std::fs::read_to_string(&path) {
                Ok(committed) if committed == text => {
                    eprintln!("baselines: {stem} ok");
                }
                Ok(_) => {
                    eprintln!("baselines: {stem} DRIFTED from {}", path.display());
                    drifted.push(stem);
                }
                Err(e) => {
                    eprintln!("baselines: {stem} unreadable at {}: {e}", path.display());
                    drifted.push(stem);
                }
            }
        } else {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("baselines: write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("baselines: wrote {}", path.display());
        }
    }

    if raw && !check {
        match write_bench_json("table_6_1", &rows_json(&rows)) {
            Ok(path) => eprintln!("baselines: wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_table_6_1.json: {e}"),
        }
    }

    if drifted.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "baselines: drift in {} — rerun `cargo run --release -p netart-bench --bin baselines` to bless",
            drifted.join(", ")
        );
        ExitCode::FAILURE
    }
}
