//! Regenerates every table and figure of the paper's evaluation (§6)
//! plus the ablations, printing paper-versus-measured numbers. The
//! output of this binary is the source of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run -p netart-bench --bin repro_report --release
//! ```

use std::time::Instant;

use netart::geom::{Dir, Point, Rect, Segment};
use netart::netlist::NetId;
use netart::route::{hightower, lee, line_expansion, NetOrder, ObstacleKind, ObstacleMap, RouteConfig};
use netart::Generator;
use netart_bench::{fig6_1, fig6_2, fig6_3, fig6_4, fig6_5, fig6_6, fig6_7, render_table};
use netart_workloads::{life, random_network, RandomSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("netart reproduction report — Koster & Stok 1989, section 6");
    println!("===========================================================\n");

    table_6_1();
    figure_structures();
    claimpoint_ablation();
    net_order_ablation();
    router_comparison();
    channel_comparison();
    scaling();
}

fn table_6_1() {
    println!("Table 6.1 — timing figures");
    println!("--------------------------");
    println!("paper (HP9000s500, 1989):");
    println!("  fig 6.1:  6 modules,   6 nets, place 0:03, route 0:03");
    println!("  fig 6.2: 16 modules,  24 nets, place 0:06, route 0:10");
    println!("  fig 6.3: 16 modules,  24 nets, place 0:06, route 0:11");
    println!("  fig 6.4: 16 modules,  24 nets, place 0:04, route 0:09");
    println!("  fig 6.5: 16 modules,  24 nets, place    -, route 0:12");
    println!("  fig 6.6: 27 modules, 222 nets, place    -, route 1:32  (220/222 routed)");
    println!("  fig 6.7: 27 modules, 222 nets, place 0:27, route 11:36 (221/222 routed)");
    println!("\nmeasured:");
    let rows = netart_bench::table_6_1();
    println!("{}", render_table(&rows));
    match netart_bench::write_bench_json("table_6_1", &netart_bench::rows_json(&rows)) {
        Ok(path) => println!("per-phase timing breakdown written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_table_6_1.json: {e}"),
    }
    let hand = rows.iter().find(|r| r.label == "fig 6.6").expect("row");
    let auto = rows.iter().find(|r| r.label == "fig 6.7").expect("row");
    println!(
        "shape: routing the automatic LIFE placement is {:.1}x slower than the hand placement \
         (paper: 7.6x); placement itself stays negligible on both.\n",
        auto.route_time.as_secs_f64() / hand.route_time.as_secs_f64()
    );
}

fn figure_structures() {
    println!("Figures 6.1-6.7 — diagram structure");
    println!("-----------------------------------");
    for (label, (_, d)) in [
        ("fig 6.1", fig6_1()),
        ("fig 6.2", fig6_2()),
        ("fig 6.3", fig6_3()),
        ("fig 6.4", fig6_4()),
    ] {
        let s = d.placement().structure().expect("pablo structure");
        println!(
            "{label}: {} partitions, {} boxes, longest string {}, {} | check: {}",
            s.partition_count(),
            s.box_count(),
            s.longest_string(),
            d.metrics(),
            if d.check().is_ok() { "ok" } else { "VIOLATIONS" },
        );
    }
    for (label, (_, d)) in [("fig 6.5", fig6_5()), ("fig 6.6", fig6_6()), ("fig 6.7", fig6_7())] {
        println!(
            "{label}: {} | check: {}",
            d.metrics(),
            if d.check().is_ok() { "ok" } else { "VIOLATIONS" },
        );
    }
    println!();
}

fn claimpoint_ablation() {
    println!("§5.7 — claimpoint ablation (paper: ~75% fewer unroutable nets)");
    println!("---------------------------------------------------------------");
    let mut with_fail = 0usize;
    let mut without_fail = 0usize;
    let mut total = 0usize;
    // Dense random networks where terminal blocking actually bites.
    for seed in 0..12 {
        let spec = RandomSpec::new(14, 24).with_seed(seed).with_max_fanout(4);
        for (claims, acc) in [(true, &mut with_fail), (false, &mut without_fail)] {
            let mut route = RouteConfig::new().with_margin(3).without_retry();
            route.claimpoints = claims;
            let g = Generator::new()
                .with_placing(netart::place::PlaceConfig::strings())
                .with_routing(route);
            let out = g.generate(random_network(&spec));
            *acc += out.report.failed.len();
        }
        total += random_network(&spec).net_count();
    }
    // The LIFE hand placement, the paper's own §5.7 context.
    for (claims, acc) in [(true, &mut with_fail), (false, &mut without_fail)] {
        let network = life::network();
        total += network.net_count();
        let mut route = RouteConfig::new().without_retry();
        route.claimpoints = claims;
        let out = Generator::new()
            .with_routing(route)
            .route_only(network.clone(), life::hand_placement(&network))
            .expect("hand placement is complete");
        *acc += out.report.failed.len();
    }
    let reduction = if without_fail > 0 {
        100.0 * (without_fail as f64 - with_fail as f64) / without_fail as f64
    } else {
        0.0
    };
    println!(
        "over {total} nets: {without_fail} unroutable without claims, {with_fail} with claims \
         -> {reduction:.0}% reduction (retry pass disabled to isolate the mechanism)\n"
    );
}

fn net_order_ablation() {
    println!("§7 — net ordering ablation (future-work criterion)");
    println!("--------------------------------------------------");
    for order in [NetOrder::Definition, NetOrder::MostPinsFirst, NetOrder::FewestPinsFirst] {
        let network = life::network();
        let hand = life::hand_placement(&network);
        let t = Instant::now();
        let out = Generator::new()
            .with_routing(RouteConfig::new().with_order(order))
            .route_only(network, hand)
            .expect("hand placement is complete");
        println!(
            "  {order:?}: routed {}/222 in {:.3}s",
            out.report.routed.len(),
            t.elapsed().as_secs_f64()
        );
    }
    println!();
}

struct Maze {
    map: ObstacleMap,
    bounds: Rect,
    from: Point,
    to: Point,
}

fn random_maze(seed: u64) -> Option<Maze> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = rng.gen_range(24..48);
    let h = rng.gen_range(20..40);
    let bounds = Rect::new(Point::new(0, 0), w, h);
    let mut map = ObstacleMap::new();
    map.add_rect(&bounds, ObstacleKind::Module);
    let mut rects = Vec::new();
    for _ in 0..rng.gen_range(3..9) {
        let rw = rng.gen_range(2..9);
        let rh = rng.gen_range(2..9);
        let x = rng.gen_range(1..(w - rw).max(2));
        let y = rng.gen_range(1..(h - rh).max(2));
        let r = Rect::new(Point::new(x, y), rw, rh);
        map.add_rect(&r, ObstacleKind::Module);
        rects.push(r);
    }
    let mut used = Vec::new();
    for n in 0..rng.gen_range(0..4) {
        let track = rng.gen_range(2..h - 2);
        if used.contains(&track) {
            continue;
        }
        used.push(track);
        let lo = rng.gen_range(1..w / 2);
        let hi = rng.gen_range(w / 2..w - 1);
        map.add(
            Segment::horizontal(track, lo, hi),
            ObstacleKind::Net(NetId::from_index(100 + n)),
        );
    }
    let clear = |p: Point, map: &ObstacleMap, rects: &[Rect]| {
        bounds.contains_strictly(p)
            && !rects.iter().any(|r| r.contains(p))
            && !map.point_matches(p, |_| true)
    };
    let pick = |map: &ObstacleMap, rects: &[Rect], rng: &mut StdRng| {
        for _ in 0..200 {
            let p = Point::new(rng.gen_range(1..w), rng.gen_range(1..h));
            if clear(p, map, rects) {
                return Some(p);
            }
        }
        None
    };
    let from = pick(&map, &rects, &mut rng)?;
    let to = pick(&map, &rects, &mut rng)?;
    (from != to).then_some(Maze { map, bounds, from, to })
}

fn router_comparison() {
    println!("§5.2/§5.4 — router class comparison on 500 random mazes");
    println!("-------------------------------------------------------");
    let nid = NetId::from_index(0);
    let mut stats = [(0usize, 0u64, 0u64, 0f64); 3]; // solved, bends, length, time
    let mut attempted = 0;
    for seed in 0..500 {
        let Some(maze) = random_maze(seed) else { continue };
        attempted += 1;
        let runs: [Box<dyn Fn() -> Option<netart::NetPath>>; 3] = [
            Box::new(|| {
                line_expansion::route_two_points(
                    &maze.map,
                    (maze.from, &Dir::ALL),
                    (maze.to, &Dir::ALL),
                    nid,
                )
            }),
            Box::new(|| {
                lee::route_two_points(&maze.map, maze.bounds.inflate(-1), maze.from, maze.to, nid)
            }),
            Box::new(|| {
                hightower::route_two_points(&maze.map, maze.bounds.inflate(-1), maze.from, maze.to)
            }),
        ];
        for (i, run) in runs.iter().enumerate() {
            let t = Instant::now();
            let path = run();
            stats[i].3 += t.elapsed().as_secs_f64();
            if let Some(p) = path {
                stats[i].0 += 1;
                stats[i].1 += u64::from(p.bends());
                stats[i].2 += u64::from(p.length());
            }
        }
    }
    for (name, (solved, bends, length, time)) in
        ["line-expansion", "lee", "hightower"].iter().zip(stats)
    {
        println!(
            "  {name:<15} solved {solved:>3}/{attempted}  total bends {bends:>5}  total length {length:>6}  time {time:>7.3}s",
        );
    }
    println!(
        "shape: line expansion and Lee solve identical sets (guaranteed solution); \
         line expansion has the fewest bends, Lee the shortest wire, Hightower misses mazes.\n"
    );
}

fn channel_comparison() {
    println!("§5.2.4 — channel router on its home turf");
    println!("----------------------------------------");
    use netart::route::channel::{route_channel, ChannelPin};
    let mut rng = StdRng::seed_from_u64(11);
    let height = 14;
    let width = 120;
    let trials = 50;
    let mut le_time = 0.0f64;
    let mut ch_time = 0.0f64;
    let mut le_failed = 0usize;
    let mut total = 0usize;
    let mut tracks_used = 0usize;
    for _ in 0..trials {
        // A channel problem: 12 two-pin nets, one pin on each edge.
        let mut cols: Vec<i32> = (1..width).collect();
        let mut pins = Vec::new();
        for net in 0..12 {
            for top in [false, true] {
                let i = rng.gen_range(0..cols.len());
                pins.push(ChannelPin { column: cols.remove(i), net, top });
            }
        }
        total += 12;

        let t = Instant::now();
        let (_, tracks) = route_channel(&pins, height);
        ch_time += t.elapsed().as_secs_f64();
        tracks_used += tracks;

        // The general router solves the same problem net by net.
        let t = Instant::now();
        let mut map = ObstacleMap::new();
        map.add_rect(
            &Rect::new(Point::new(0, -1), width, height + 2),
            ObstacleKind::Module,
        );
        for net in 0..12 {
            let mine: Vec<&ChannelPin> = pins.iter().filter(|p| p.net == net).collect();
            let from = Point::new(mine[0].column, if mine[0].top { height } else { 0 });
            let to = Point::new(mine[1].column, if mine[1].top { height } else { 0 });
            let nid = NetId::from_index(net);
            match line_expansion::route_two_points(
                &map,
                (from, &[if mine[0].top { Dir::Down } else { Dir::Up }]),
                (to, &[if mine[1].top { Dir::Down } else { Dir::Up }]),
                nid,
            ) {
                Some(path) => {
                    for seg in path.segments() {
                        map.add(*seg, ObstacleKind::Net(nid));
                    }
                }
                None => le_failed += 1,
            }
        }
        le_time += t.elapsed().as_secs_f64();
    }
    println!(
        "  left-edge:      {total}/{total} routed in {ch_time:.4}s, mean {:.1} tracks (density-optimal)",
        tracks_used as f64 / trials as f64
    );
    println!(
        "  line-expansion: {}/{total} routed in {le_time:.4}s",
        total - le_failed
    );
    println!(
        "shape: on a predefined channel the special-purpose router is ~{:.0}x faster — and
         useless anywhere else, which is why §5.4 rejects it for the free-form diagram plane.
",
        le_time / ch_time.max(1e-9)
    );
}

fn scaling() {
    println!("§5.8 — routing cost growth with design size (complexity note)");
    println!("-------------------------------------------------------------");
    for (modules, nets) in [(8, 12), (16, 24), (24, 40), (32, 56), (48, 80)] {
        let spec = RandomSpec::new(modules, nets).with_seed(7).with_max_fanout(3);
        let network = random_network(&spec);
        let realised = network.net_count();
        let g = netart_bench::life_auto_generator();
        let out = g.generate(network);
        println!(
            "  {modules:>3} modules {realised:>3} nets: place {:>9.6}s route {:>9.6}s routed {}/{}",
            out.place_time.as_secs_f64(),
            out.route_time.as_secs_f64(),
            out.report.routed.len(),
            realised,
        );
    }
    println!();
}
