//! Regenerates figures 6.1–6.7 and benchmarks each regeneration,
//! printing the structural summary the figures show (partition/box
//! structure, routing completion, quality metrics) before timing it.

use criterion::{criterion_group, criterion_main, Criterion};

use netart_bench::{fig6_1, fig6_2, fig6_3, fig6_4, fig6_5, fig6_6, fig6_7, Row};

fn summarize(row: &Row, diagram: &netart::diagram::Diagram) {
    let structure = diagram
        .placement()
        .structure()
        .map(|s| {
            format!(
                "{} partitions, {} boxes, longest string {}",
                s.partition_count(),
                s.box_count(),
                s.longest_string()
            )
        })
        .unwrap_or_else(|| "hand/edited placement".to_owned());
    eprintln!(
        "{}: {structure}; routed {}/{}; {}; check {}",
        row.label,
        row.routed,
        row.nets,
        row.metrics,
        if diagram.check().is_ok() { "ok" } else { "VIOLATIONS" }
    );
}

/// A figure regenerator: builds the row and the finished diagram.
type FigureFn = fn() -> (Row, netart::diagram::Diagram);

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    let cases: [(&str, FigureFn); 7] = [
        ("fig6_1", fig6_1),
        ("fig6_2", fig6_2),
        ("fig6_3", fig6_3),
        ("fig6_4", fig6_4),
        ("fig6_5", fig6_5),
        ("fig6_6", fig6_6),
        ("fig6_7", fig6_7),
    ];
    for (name, f) in cases {
        let (row, diagram) = f();
        summarize(&row, &diagram);
        g.bench_function(name, |b| b.iter(f));
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
