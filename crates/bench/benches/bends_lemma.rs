//! The §4.6.4 lemma and placement baselines.
//!
//! The lemma: with a fixed level assignment, the string placement's
//! rotations and shifts admit connecting nets with a minimum number of
//! bends — straight wires when the terminals align. The bench verifies
//! the zero-bend property on generated strings and compares PABLO
//! against the three baseline placers (§4.2–4.3) on placement time and
//! resulting routability.

use criterion::{criterion_group, criterion_main, Criterion};

use netart::diagram::Diagram;
use netart::place::{baseline, Pablo, PlaceConfig};
use netart::route::{Eureka, RouteConfig};
use netart_workloads::{controller_cluster, string_chain};

fn route_quality(diagram: &mut Diagram) -> (usize, u64, u64) {
    let report = Eureka::new(RouteConfig::default()).route(diagram);
    let m = diagram.metrics();
    (report.routed.len(), m.total_bends, m.total_length)
}

fn bench_lemma(c: &mut Criterion) {
    // Lemma check: a routed chain has straight inter-module wires.
    let net = string_chain(8);
    let cfg = PlaceConfig::strings()
        .with_max_part_size(8)
        .with_max_box_size(8);
    let placement = Pablo::new(cfg).place(&net);
    let mut diagram = Diagram::new(net, placement);
    let (routed, bends, _) = route_quality(&mut diagram);
    eprintln!("lemma: chain of 8 routed {routed}/8 with {bends} total bends (expect 0–2)");
    assert!(bends <= 2, "lemma violated: {bends} bends");

    // Baselines on the 16-module cluster: placement time and the
    // routing quality each placement affords.
    let net = controller_cluster();
    for (name, placement) in [
        ("pablo_p7b5", Pablo::new(PlaceConfig::strings()).place(&net)),
        ("epitaxial", baseline::epitaxial::place(&net, 2)),
        ("mincut", baseline::mincut::place(&net, 2)),
        ("columnar", baseline::columnar::place(&net, 2)),
    ] {
        let mut diagram = Diagram::new(net.clone(), placement);
        let (routed, bends, length) = route_quality(&mut diagram);
        eprintln!(
            "{name}: routed {routed}/24, bends {bends}, length {length}, check {}",
            if diagram.check().is_ok() { "ok" } else { "VIOLATIONS" }
        );
    }

    // §4.2.1: the rejected improvement class, measured. Pairwise
    // exchange on top of the epitaxial placement: how much wire does it
    // save, and what does it cost relative to constructive placement?
    let mut improved = baseline::epitaxial::place(&net, 2);
    let report = baseline::exchange::improve(&net, &mut improved, 8);
    eprintln!(
        "exchange improvement: {} accepted of {} tried, wire estimate {} -> {} ({:.1}% gain)",
        report.accepted,
        report.tried,
        report.before,
        report.after,
        100.0 * (report.before - report.after) as f64 / report.before.max(1) as f64,
    );

    // §3.3: the exact optimum on a tiny instance versus the heuristic
    // under the same slot model.
    let tiny = string_chain(6);
    let slots = baseline::exact::grid_slots(6, 10);
    let optimal = baseline::exact::solve(&tiny, &slots).expect("enough slots");
    eprintln!(
        "exact assignment optimum for a 6-chain on a 3x2 grid: cost {}",
        optimal.cost
    );

    let mut g = c.benchmark_group("placement_algorithms");
    g.bench_function("pablo_p7b5", |b| {
        b.iter(|| Pablo::new(PlaceConfig::strings()).place(&net))
    });
    g.bench_function("epitaxial", |b| b.iter(|| baseline::epitaxial::place(&net, 2)));
    g.bench_function("mincut", |b| b.iter(|| baseline::mincut::place(&net, 2)));
    g.bench_function("columnar", |b| b.iter(|| baseline::columnar::place(&net, 2)));
    g.bench_function("exchange_improve", |b| {
        b.iter(|| {
            let mut p = baseline::epitaxial::place(&net, 2);
            baseline::exchange::improve(&net, &mut p, 8)
        })
    });
    g.bench_function("exact_6_modules", |b| {
        b.iter(|| baseline::exact::solve(&tiny, &slots))
    });
    g.finish();
}

criterion_group!(benches, bench_lemma);
criterion_main!(benches);
