//! Criterion timings for every row of the paper's table 6.1.
//!
//! Each benchmark runs the same generator pipeline as the row in the
//! reproduction report; absolute numbers land in `target/criterion`,
//! relative shape (figures 6.6 vs 6.7 in particular) is what the paper
//! established.

use criterion::{criterion_group, criterion_main, Criterion};

use netart::place::PlaceConfig;
use netart::Generator;
use netart_bench::life_auto_generator;
use netart_workloads::{controller_cluster, life, string_chain};

fn bench_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_6_1");
    g.sample_size(10);

    g.bench_function("fig6_1_chain", |b| {
        b.iter(|| {
            let gen = Generator::new()
                .with_placing(PlaceConfig::strings().with_max_box_size(6));
            gen.generate(string_chain(6))
        })
    });
    g.bench_function("fig6_2_cluster_p1b1", |b| {
        b.iter(|| Generator::new().generate(controller_cluster()))
    });
    g.bench_function("fig6_3_cluster_p5b1", |b| {
        b.iter(|| {
            Generator::new()
                .with_placing(PlaceConfig::clusters())
                .generate(controller_cluster())
        })
    });
    g.bench_function("fig6_4_cluster_p7b5", |b| {
        b.iter(|| {
            Generator::new()
                .with_placing(PlaceConfig::strings())
                .generate(controller_cluster())
        })
    });
    g.bench_function("fig6_6_life_hand_route", |b| {
        b.iter(|| {
            let network = life::network();
            let hand = life::hand_placement(&network);
            Generator::new()
                .route_only(network, hand)
                .expect("hand placement is complete")
        })
    });
    g.bench_function("fig6_7_life_auto_full", |b| {
        b.iter(|| life_auto_generator().generate(life::network()))
    });
    g.finish();

    // Placement alone (the paper's placement column).
    let mut g = c.benchmark_group("table_6_1_placement_only");
    g.bench_function("fig6_4_place", |b| {
        let net = controller_cluster();
        b.iter(|| netart::place::Pablo::new(PlaceConfig::strings()).place(&net))
    });
    g.bench_function("fig6_7_place", |b| {
        let net = life::network();
        b.iter(|| {
            netart::place::Pablo::new(
                PlaceConfig::strings()
                    .with_module_spacing(2)
                    .with_box_spacing(3)
                    .with_part_spacing(5),
            )
            .place(&net)
        })
    });
    g.finish();

    // One instrumented run per row: the per-phase timing breakdown
    // lands in BENCH_table_6_1.json at the repo root.
    let rows = netart_bench::table_6_1();
    match netart_bench::write_bench_json("table_6_1", &netart_bench::rows_json(&rows)) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_table_6_1.json: {e}"),
    }
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
