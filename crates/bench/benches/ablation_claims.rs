//! Ablation of the claimpoint extension (§5.7).
//!
//! The paper reports "a decrease of about 75% in the number of
//! unroutable nets" from claimpoints. The bench prints the measured
//! failure counts with and without claims (retry pass disabled to
//! isolate the mechanism) and times both configurations.

use criterion::{criterion_group, criterion_main, Criterion};

use netart::obs::Json;
use netart::place::PlaceConfig;
use netart::route::RouteConfig;
use netart::Generator;
use netart_workloads::{life, random_network, RandomSpec};

/// One instrumented LIFE hand-placement run with or without claims.
fn exemplar(claims: bool) -> netart::Outcome {
    let network = life::network();
    let mut route = RouteConfig::new().without_retry();
    route.claimpoints = claims;
    Generator::new()
        .with_routing(route)
        .route_only(network.clone(), life::hand_placement(&network))
        .expect("hand placement is complete")
}

fn failures(claims: bool) -> (usize, usize) {
    let mut failed = 0;
    let mut total = 0;
    for seed in 0..8 {
        let spec = RandomSpec::new(14, 24).with_seed(seed).with_max_fanout(4);
        let network = random_network(&spec);
        total += network.net_count();
        let mut route = RouteConfig::new().with_margin(3).without_retry();
        route.claimpoints = claims;
        let out = Generator::new()
            .with_placing(PlaceConfig::strings())
            .with_routing(route)
            .generate(network);
        failed += out.report.failed.len();
    }
    let network = life::network();
    total += network.net_count();
    let mut route = RouteConfig::new().without_retry();
    route.claimpoints = claims;
    let out = Generator::new()
        .with_routing(route)
        .route_only(network.clone(), life::hand_placement(&network))
        .expect("hand placement is complete");
    failed += out.report.failed.len();
    (failed, total)
}

fn bench_claims(c: &mut Criterion) {
    let (with, total) = failures(true);
    let (without, _) = failures(false);
    eprintln!(
        "claimpoints ablation over {total} nets: {without} unroutable without claims, \
         {with} with claims ({:.0}% reduction; paper: ~75%)",
        if without > 0 {
            100.0 * (without as f64 - with as f64) / without as f64
        } else {
            0.0
        }
    );

    // Per-phase breakdowns of one exemplar run per arm, plus the
    // headline counts, into BENCH_ablation_claims.json.
    let json = Json::obj()
        .with("total_nets", total)
        .with("unroutable_with_claims", with)
        .with("unroutable_without_claims", without)
        .with(
            "with_claims",
            exemplar(true).run_report("ablation_with_claims").to_json(),
        )
        .with(
            "without_claims",
            exemplar(false).run_report("ablation_without_claims").to_json(),
        );
    match netart_bench::write_bench_json("ablation_claims", &json) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_ablation_claims.json: {e}"),
    }

    let mut g = c.benchmark_group("claimpoints");
    g.sample_size(10);
    for (name, claims) in [("with_claims", true), ("without_claims", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let network = life::network();
                let mut route = RouteConfig::new().without_retry();
                route.claimpoints = claims;
                Generator::new()
                    .with_routing(route)
                    .route_only(network.clone(), life::hand_placement(&network))
                    .expect("hand placement is complete")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_claims);
criterion_main!(benches);
