//! The §5.8 complexity observation: routing cost grows with design
//! size and congestion (the number of candidate paths, i.e. bends,
//! explodes on bad placements). The bench sweeps random network sizes
//! through the full pipeline, then pushes big-N generated workloads —
//! 10³ modules routed, 10⁴–10⁵ parsed — through the memory-governed
//! ingestion path and records the points in `BENCH_scaling.json` at
//! the repository root.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netart::obs::Json;
use netart::Generator;
use netart_bench::{governed_text_network, life_auto_generator, write_bench_json};
use netart_govern::MemBudget;
use netart_workloads::text;
use netart_workloads::{random_network, RandomSpec};

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    for (modules, nets) in [(8, 12), (16, 24), (24, 40), (32, 56)] {
        let spec = RandomSpec::new(modules, nets).with_seed(7).with_max_fanout(3);
        // Summary line per size (completion should stay high).
        let network = random_network(&spec);
        let out = life_auto_generator().generate(network);
        eprintln!(
            "{modules} modules: routed {}/{} (place {:?}, route {:?})",
            out.report.routed.len(),
            out.report.routed.len() + out.report.failed.len(),
            out.place_time,
            out.route_time
        );
        g.bench_with_input(
            BenchmarkId::new("generate", modules),
            &spec,
            |b, spec| b.iter(|| life_auto_generator().generate(random_network(spec))),
        );
    }
    g.finish();
}

/// One measured point of the big-N sweep.
fn scaling_point(workload: &text::TextWorkload, route: bool) -> Json {
    let budget = Arc::new(MemBudget::unlimited());
    let t = Instant::now();
    let network = governed_text_network(workload, &budget);
    let parse_s = t.elapsed().as_secs_f64();
    let mut row = Json::obj();
    row.set("workload", Json::Str(workload.name.clone()));
    row.set("modules", Json::Uint(network.module_count() as u64));
    row.set("nets", Json::Uint(network.net_count() as u64));
    row.set("generated_bytes", Json::Uint(workload.total_bytes()));
    row.set("budget_charged_bytes", Json::Uint(budget.used()));
    row.set("parse_s", Json::Float(parse_s));
    if route {
        let t = Instant::now();
        let out = Generator::new().generate(network);
        row.set("route_s", Json::Float(t.elapsed().as_secs_f64()));
        row.set("routed", Json::Uint(out.report.routed.len() as u64));
        row.set(
            "failed",
            Json::Uint(out.report.failed.len() as u64),
        );
    } else {
        row.set("route_s", Json::Null);
    }
    row
}

/// Big-N governed-ingestion sweep. Criterion times the parse at 10³
/// and 10⁴ modules; the full-pipeline points (routing included, too
/// slow for repeated sampling past 10³) are measured once each and
/// written to `BENCH_scaling.json`.
fn bench_big_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_governed_parse");
    g.sample_size(10);
    for (rows, cols) in [(25, 40), (100, 100)] {
        let w = text::cell_array(rows, cols);
        let modules = w.module_count();
        g.bench_with_input(BenchmarkId::new("parse", modules), &w, |b, w| {
            b.iter(|| governed_text_network(w, &Arc::new(MemBudget::unlimited())))
        });
    }
    g.finish();

    let points = vec![
        scaling_point(&text::cell_array(10, 25), true),
        scaling_point(&text::cell_array(25, 40), true),
        scaling_point(&text::random_hierarchy(1000, 7), true),
        scaling_point(&text::cell_array(100, 100), false),
        scaling_point(&text::cell_array(316, 317), false),
    ];
    let mut json = Json::obj();
    json.set("rows", Json::Arr(points));
    match write_bench_json("scaling", &json) {
        Ok(path) => eprintln!("scaling: wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_scaling.json: {e}"),
    }
}

criterion_group!(benches, bench_scaling, bench_big_n);
criterion_main!(benches);
