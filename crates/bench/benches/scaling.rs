//! The §5.8 complexity observation: routing cost grows with design
//! size and congestion (the number of candidate paths, i.e. bends,
//! explodes on bad placements). The bench sweeps random network sizes
//! through the full pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netart_bench::life_auto_generator;
use netart_workloads::{random_network, RandomSpec};

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    for (modules, nets) in [(8, 12), (16, 24), (24, 40), (32, 56)] {
        let spec = RandomSpec::new(modules, nets).with_seed(7).with_max_fanout(3);
        // Summary line per size (completion should stay high).
        let network = random_network(&spec);
        let out = life_auto_generator().generate(network);
        eprintln!(
            "{modules} modules: routed {}/{} (place {:?}, route {:?})",
            out.report.routed.len(),
            out.report.routed.len() + out.report.failed.len(),
            out.place_time,
            out.route_time
        );
        g.bench_with_input(
            BenchmarkId::new("generate", modules),
            &spec,
            |b, spec| b.iter(|| life_auto_generator().generate(random_network(spec))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
