//! The §5.2/§5.4 router class comparison: line expansion versus the
//! Lee maze runner and the Hightower line router on a fixed set of
//! random mazes.
//!
//! Prints completion/bends/length aggregates (the qualitative claims:
//! Lee complete and length-optimal, line expansion complete and
//! bend-frugal, Hightower fast but incomplete), then times each router
//! over the full maze set.

use criterion::{criterion_group, criterion_main, Criterion};

use netart::geom::{Dir, Point, Rect, Segment};
use netart::netlist::NetId;
use netart::route::{hightower, lee, line_expansion, ObstacleKind, ObstacleMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Maze {
    map: ObstacleMap,
    bounds: Rect,
    from: Point,
    to: Point,
}

fn random_maze(seed: u64) -> Option<Maze> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = rng.gen_range(24..48);
    let h = rng.gen_range(20..40);
    let bounds = Rect::new(Point::new(0, 0), w, h);
    let mut map = ObstacleMap::new();
    map.add_rect(&bounds, ObstacleKind::Module);
    let mut rects = Vec::new();
    for _ in 0..rng.gen_range(3..9) {
        let rw = rng.gen_range(2..9);
        let rh = rng.gen_range(2..9);
        let x = rng.gen_range(1..(w - rw).max(2));
        let y = rng.gen_range(1..(h - rh).max(2));
        let r = Rect::new(Point::new(x, y), rw, rh);
        map.add_rect(&r, ObstacleKind::Module);
        rects.push(r);
    }
    let mut used = Vec::new();
    for n in 0..rng.gen_range(0..4) {
        let track = rng.gen_range(2..h - 2);
        if used.contains(&track) {
            continue;
        }
        used.push(track);
        let lo = rng.gen_range(1..w / 2);
        let hi = rng.gen_range(w / 2..w - 1);
        map.add(
            Segment::horizontal(track, lo, hi),
            ObstacleKind::Net(NetId::from_index(100 + n)),
        );
    }
    let clear = |p: Point| {
        bounds.contains_strictly(p)
            && !rects.iter().any(|r| r.contains(p))
            && !map.point_matches(p, |_| true)
    };
    let mut pick = || {
        for _ in 0..200 {
            let p = Point::new(rng.gen_range(1..w), rng.gen_range(1..h));
            if clear(p) {
                return Some(p);
            }
        }
        None
    };
    let from = pick()?;
    let to = pick()?;
    (from != to).then_some(Maze { map, bounds, from, to })
}

fn mazes() -> Vec<Maze> {
    (0..200).filter_map(random_maze).collect()
}

fn bench_routers(c: &mut Criterion) {
    let set = mazes();
    let nid = NetId::from_index(0);

    // Print the qualitative comparison first.
    let mut agg = [(0usize, 0u64, 0u64); 3];
    for m in &set {
        let results = [
            line_expansion::route_two_points(&m.map, (m.from, &Dir::ALL), (m.to, &Dir::ALL), nid),
            lee::route_two_points(&m.map, m.bounds.inflate(-1), m.from, m.to, nid),
            hightower::route_two_points(&m.map, m.bounds.inflate(-1), m.from, m.to),
        ];
        for (i, r) in results.iter().enumerate() {
            if let Some(p) = r {
                agg[i].0 += 1;
                agg[i].1 += u64::from(p.bends());
                agg[i].2 += u64::from(p.length());
            }
        }
    }
    for (name, (solved, bends, length)) in
        ["line_expansion", "lee", "hightower"].iter().zip(agg)
    {
        eprintln!(
            "{name}: solved {solved}/{} bends {bends} length {length}",
            set.len()
        );
    }

    let mut g = c.benchmark_group("router_comparison");
    g.sample_size(10);
    g.bench_function("line_expansion", |b| {
        b.iter(|| {
            set.iter()
                .filter_map(|m| {
                    line_expansion::route_two_points(
                        &m.map,
                        (m.from, &Dir::ALL),
                        (m.to, &Dir::ALL),
                        nid,
                    )
                })
                .count()
        })
    });
    g.bench_function("lee", |b| {
        b.iter(|| {
            set.iter()
                .filter_map(|m| {
                    lee::route_two_points(&m.map, m.bounds.inflate(-1), m.from, m.to, nid)
                })
                .count()
        })
    });
    g.bench_function("hightower", |b| {
        b.iter(|| {
            set.iter()
                .filter_map(|m| {
                    hightower::route_two_points(&m.map, m.bounds.inflate(-1), m.from, m.to)
                })
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_routers);
criterion_main!(benches);
