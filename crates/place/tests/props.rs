//! Property-based tests for the placement phase: on arbitrary random
//! networks, every algorithm upholds the §4.4 postconditions.

use proptest::prelude::*;

use netart_place::{baseline, form_boxes, partition, Pablo, PlaceConfig};
use netart_workloads::{random_network, RandomSpec};

fn spec_strategy() -> impl Strategy<Value = RandomSpec> {
    (2usize..14, 1usize..20, 2usize..4, 0usize..3, 0u64..1000).prop_map(
        |(modules, nets, fanout, terms, seed)| RandomSpec {
            modules,
            nets,
            max_fanout: fanout,
            system_terminals: terms,
            seed,
        },
    )
}

fn config_strategy() -> impl Strategy<Value = PlaceConfig> {
    (1usize..9, 1usize..7, 0i32..3, 0i32..3, 0i32..3).prop_map(|(p, b, e, i, s)| {
        PlaceConfig::new()
            .with_max_part_size(p)
            .with_max_box_size(b)
            .with_part_spacing(e)
            .with_box_spacing(i)
            .with_module_spacing(s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PABLO places everything, overlap-free, for any options.
    #[test]
    fn pablo_postconditions(spec in spec_strategy(), cfg in config_strategy()) {
        let net = random_network(&spec);
        let placement = Pablo::new(cfg).place(&net);
        prop_assert!(placement.is_complete());
        let violations = placement.overlap_violations(&net);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// Partitioning covers each module exactly once and respects the
    /// size limit.
    #[test]
    fn partitioning_is_a_partition(spec in spec_strategy(), size in 1usize..9) {
        let net = random_network(&spec);
        let cfg = PlaceConfig::new().with_max_part_size(size);
        let parts = partition(&net, net.modules(), &cfg);
        let mut seen: Vec<_> = parts.partitions.iter().flatten().copied().collect();
        seen.sort_unstable();
        let all: Vec<_> = net.modules().collect();
        prop_assert_eq!(seen, all);
        prop_assert!(parts.partitions.iter().all(|p| p.len() <= size));
    }

    /// Box formation covers its partition exactly once, strings respect
    /// the size limit and follow the driver relation.
    #[test]
    fn boxes_cover_partitions(spec in spec_strategy(), bsize in 1usize..7) {
        let net = random_network(&spec);
        let cfg = PlaceConfig::new().with_max_part_size(9).with_max_box_size(bsize);
        let parts = partition(&net, net.modules(), &cfg);
        for part in &parts.partitions {
            let boxes = form_boxes(&net, part, &cfg);
            let mut seen: Vec<_> = boxes.iter().flatten().copied().collect();
            seen.sort_unstable();
            let mut expect = part.clone();
            expect.sort_unstable();
            prop_assert_eq!(seen, expect);
            for b in &boxes {
                prop_assert!(b.len() <= bsize.max(1));
                for w in b.windows(2) {
                    prop_assert!(net.drives(w[0], w[1]).is_some());
                }
            }
        }
    }

    /// The baselines fulfil the same non-overlap postcondition.
    #[test]
    fn baselines_place_legally(spec in spec_strategy(), spacing in 0i32..3) {
        let net = random_network(&spec);
        for placement in [
            baseline::epitaxial::place(&net, spacing),
            baseline::mincut::place(&net, spacing),
            baseline::columnar::place(&net, spacing),
        ] {
            prop_assert!(placement.is_complete());
            let violations = placement.overlap_violations(&net);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
    }

    /// Placement is a pure function of its inputs.
    #[test]
    fn pablo_is_deterministic(spec in spec_strategy()) {
        let net = random_network(&spec);
        let a = Pablo::new(PlaceConfig::strings()).place(&net);
        let b = Pablo::new(PlaceConfig::strings()).place(&net);
        for m in net.modules() {
            prop_assert_eq!(a.module(m), b.module(m));
        }
        for st in net.system_terms() {
            prop_assert_eq!(a.system_term(st), b.system_term(st));
        }
    }
}
