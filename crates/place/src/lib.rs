//! PABLO — the placement phase of the `netart` schematic diagram
//! generator (§4 of Koster & Stok, 1989), plus the baseline placement
//! algorithms the paper discusses.
//!
//! The PABLO pipeline (§4.6) runs in six steps:
//!
//! 1. [`partition`] — greedy seeded clustering into functional parts
//!    (Rule 1 of §3.2),
//! 2. [`form_boxes`] — longest-path search for strings of
//!    driver→consumer connected modules inside each partition
//!    (left-to-right signal flow, Rule 3),
//! 3. module placement — each string laid out left to right with
//!    rotations that minimise bends (§4.6.4 and its lemma),
//! 4. box placement — centre-of-gravity packing of boxes inside their
//!    partition (§4.6.5),
//! 5. partition placement — the same one level up (§4.6.6),
//! 6. terminal placement — system terminals on a ring around the
//!    bounding box (§4.6.7, Rule 4).
//!
//! The [`Pablo`] facade runs all six and returns a
//! [`netart_diagram::Placement`]; [`PlaceConfig`] carries the Appendix E
//! options (`-p`, `-b`, `-c`, `-e`, `-i`, `-s`, `-g`).
//!
//! The [`baseline`] module holds the comparison algorithms of §4.2–4.3:
//! epitaxial growth, min-cut bipartitioning and logic-schematic column
//! placement.
//!
//! # Examples
//!
//! ```
//! use netart_place::{Pablo, PlaceConfig};
//! # use netart_netlist::{Library, NetworkBuilder, Template, TermType};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut lib = Library::new();
//! # let inv = lib.add_template(Template::new("inv", (4, 2))?
//! #     .with_terminal("a", (0, 1), TermType::In)?
//! #     .with_terminal("y", (4, 1), TermType::Out)?)?;
//! # let mut b = NetworkBuilder::new(lib);
//! # let u0 = b.add_instance("u0", inv)?;
//! # let u1 = b.add_instance("u1", inv)?;
//! # b.connect_pin("n", u0, "y")?;
//! # b.connect_pin("n", u1, "a")?;
//! # let network = b.finish()?;
//! let placer = Pablo::new(PlaceConfig::strings());
//! let placement = placer.place(&network);
//! assert!(placement.is_complete());
//! assert!(placement.overlap_violations(&network).is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod baseline;
mod boxes;
mod cluster;
mod config;
mod gravity;
mod module_place;
mod pablo;
mod partition;
mod terminal_place;

pub use boxes::{construct_roots, form_boxes};
pub use config::PlaceConfig;
pub use module_place::{layout_box, BoxLayout};
pub use pablo::Pablo;
pub use partition::{partition, Partitioning};
