//! Generic centre-of-gravity cluster placement.
//!
//! Box placement inside a partition (§4.6.5) and partition placement
//! (§4.6.6) run the very same procedure at two levels: pick the
//! heaviest cluster as the anchor, then repeatedly place the cluster
//! most connected to the placed ones at the free position minimising
//! the distance between the two gravity centres.

use netart_geom::{Point, Rect};
use netart_netlist::NetId;

use crate::gravity::{centroid, GravityField};

/// One rectangle to place, with the net-connected terminal points it
/// contains (in cluster-local coordinates).
#[derive(Debug, Clone)]
pub(crate) struct Cluster {
    /// Bounding size.
    pub size: (i32, i32),
    /// `(net, local position)` for every connected terminal inside.
    pub terms: Vec<(NetId, Point)>,
    /// Number of modules inside — the paper picks the largest cluster
    /// as the anchor.
    pub weight: usize,
}

impl Cluster {
    fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.terms.iter().map(|&(n, _)| n)
    }

    /// Number of distinct nets shared with a placed set's net
    /// collection.
    fn shared_net_count(&self, placed_nets: &[NetId]) -> usize {
        let mut nets: Vec<NetId> = self
            .nets()
            .filter(|n| placed_nets.binary_search(n).is_ok())
            .collect();
        nets.sort_unstable();
        nets.dedup();
        nets.len()
    }
}

/// Places all clusters; returns their origins, index-aligned with the
/// input.
///
/// `anchored` optionally pins one cluster at a fixed origin (used for a
/// preplaced part, Appendix E `-g`); otherwise the heaviest cluster
/// anchors at the origin.
pub(crate) fn place_clusters(
    clusters: &[Cluster],
    spacing: i32,
    anchored: Option<(usize, Point)>,
) -> Vec<Point> {
    assert!(!clusters.is_empty(), "nothing to place");
    let gravity_span = tracing::span!(
        tracing::Level::DEBUG,
        "pablo.gravity",
        clusters = clusters.len() as u64,
    );
    let _gravity_guard = gravity_span.enter();
    netart_fault::fire_hard(netart_fault::sites::PLACE_GRAVITY);
    let mut positions: Vec<Option<Point>> = vec![None; clusters.len()];
    let mut field = GravityField::new(spacing);

    let (first, first_pos) = anchored.unwrap_or_else(|| {
        // Heaviest cluster first; ties by lowest index.
        let first = (0..clusters.len())
            .max_by_key(|&i| (clusters[i].weight, usize::MAX - i))
            .expect("non-empty");
        (first, Point::ORIGIN)
    });
    positions[first] = Some(first_pos);
    field.occupy(Rect::new(first_pos, clusters[first].size.0, clusters[first].size.1));

    // All nets appearing in already-placed clusters, sorted for lookup.
    let mut placed_nets: Vec<NetId> = clusters[first].nets().collect();
    placed_nets.sort_unstable();
    placed_nets.dedup();

    for _ in 1..clusters.len() {
        let next = (0..clusters.len())
            .filter(|&i| positions[i].is_none())
            .max_by_key(|&i| {
                (
                    clusters[i].shared_net_count(&placed_nets),
                    clusters[i].weight,
                    usize::MAX - i,
                )
            })
            .expect("unplaced cluster remains");

        // Gravity pair over the shared nets.
        let shared: Vec<NetId> = clusters[next]
            .nets()
            .filter(|n| placed_nets.binary_search(n).is_ok())
            .collect();
        let is_shared = |n: NetId| shared.contains(&n);

        let g0 = centroid(
            &clusters[next]
                .terms
                .iter()
                .filter(|&&(n, _)| is_shared(n))
                .map(|&(_, p)| p)
                .collect::<Vec<_>>(),
        );
        let g1_points: Vec<Point> = positions
            .iter()
            .enumerate()
            .filter_map(|(i, pos)| pos.map(|p| (i, p)))
            .flat_map(|(i, pos)| {
                clusters[i]
                    .terms
                    .iter()
                    .filter(|&&(n, _)| is_shared(n))
                    .map(move |&(_, p)| pos + p)
            })
            .collect();
        let g1 = centroid(&g1_points);

        let desired = match (g0, g1) {
            (Some(g0), Some(g1)) => g1 - g0,
            // No shared nets: aim at the centre of what is placed.
            _ => {
                let b = field.bounding().expect("anchor placed");
                b.center()
                    - Point::new(clusters[next].size.0 / 2, clusters[next].size.1 / 2)
            }
        };
        let pos = field.place(clusters[next].size, desired);
        positions[next] = Some(pos);
        placed_nets.extend(clusters[next].nets());
        placed_nets.sort_unstable();
        placed_nets.dedup();
    }

    positions.into_iter().map(|p| p.expect("all placed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(size: (i32, i32), weight: usize, terms: &[(usize, (i32, i32))]) -> Cluster {
        Cluster {
            size,
            weight,
            terms: terms
                .iter()
                .map(|&(n, (x, y))| (NetId::from_index(n), Point::new(x, y)))
                .collect(),
        }
    }

    #[test]
    fn heaviest_anchors_at_origin() {
        let clusters = vec![
            c((4, 4), 1, &[(0, (4, 2))]),
            c((6, 6), 3, &[(0, (0, 3))]),
        ];
        let pos = place_clusters(&clusters, 0, None);
        assert_eq!(pos[1], Point::ORIGIN);
    }

    #[test]
    fn connected_clusters_placed_adjacent() {
        let clusters = vec![
            c((4, 4), 2, &[(0, (4, 2))]),          // net 0 exits on the right
            c((4, 4), 1, &[(0, (0, 2))]),          // net 0 enters on the left
            c((4, 4), 1, &[(1, (0, 0)), (0, (0, 3))]),
        ];
        let pos = place_clusters(&clusters, 0, None);
        // No overlaps.
        let rects: Vec<Rect> = pos
            .iter()
            .zip(&clusters)
            .map(|(&p, c)| Rect::new(p, c.size.0, c.size.1))
            .collect();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.overlaps_strictly(b), "{a} vs {b}");
            }
        }
        // Cluster 1's left terminal ends up near cluster 0's right one.
        let t0 = pos[0] + Point::new(4, 2);
        let t1 = pos[1] + Point::new(0, 2);
        assert!(t0.manhattan(t1) <= 6, "terminals {t0} and {t1} too far");
    }

    #[test]
    fn anchored_cluster_stays_fixed() {
        let clusters = vec![
            c((4, 4), 1, &[(0, (4, 2))]),
            c((4, 4), 5, &[(0, (0, 2))]),
        ];
        let pin = Point::new(100, 50);
        let pos = place_clusters(&clusters, 0, Some((0, pin)));
        assert_eq!(pos[0], pin);
        // The other cluster lands near the anchor despite being heavier.
        assert!(pos[1].manhattan(pin) < 30);
    }

    #[test]
    fn unconnected_cluster_still_lands_nearby() {
        let clusters = vec![
            c((8, 8), 4, &[(0, (4, 4))]),
            c((2, 2), 1, &[]), // no nets at all
        ];
        let pos = place_clusters(&clusters, 1, None);
        assert!(pos[1].manhattan(pos[0]) < 20, "{:?}", pos);
    }

    #[test]
    fn spacing_respected_between_clusters() {
        let clusters = vec![
            c((4, 4), 2, &[(0, (4, 2))]),
            c((4, 4), 1, &[(0, (0, 2))]),
        ];
        let pos = place_clusters(&clusters, 3, None);
        let a = Rect::new(pos[0], 4, 4);
        let b = Rect::new(pos[1], 4, 4);
        assert!(!a.inflate(3).overlaps_strictly(&b.inflate(3)), "{a} {b}");
    }

    #[test]
    fn many_clusters_all_disjoint() {
        let clusters: Vec<Cluster> = (0..10)
            .map(|i| c((3, 3), 1, &[(i % 3, (1, 1))]))
            .collect();
        let pos = place_clusters(&clusters, 1, None);
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let a = Rect::new(pos[i], 3, 3);
                let b = Rect::new(pos[j], 3, 3);
                assert!(!a.overlaps_strictly(&b));
            }
        }
    }
}
