//! Box formation: finding strings of connected modules inside a
//! partition (§4.6.3, `BOX_FORMATION` / `CONSTRUCT_ROOTS` /
//! `LONGEST_PATH`).
//!
//! A *box* is a string of modules m₀ → m₁ → … where each step follows a
//! net from an `out`/`inout` terminal of the predecessor to an
//! `in`/`inout` terminal of the successor. Placing the string left to
//! right realises the paper's Rule 3 (signal flow from left to right);
//! the position in the string is the module's *level*.

use netart_netlist::{ModuleId, Network, Pin};

use crate::PlaceConfig;

/// `CONSTRUCT_ROOTS`: the modules of a partition allowed to start a
/// string. A module qualifies when it
///
/// * connects to a module outside the partition, or
/// * connects to an `in`/`inout` **system** terminal, or
/// * reaches other modules through exactly one net (a natural string
///   end).
pub fn construct_roots(network: &Network, partition: &[ModuleId]) -> Vec<ModuleId> {
    partition
        .iter()
        .copied()
        .filter(|&m| {
            let external = network
                .connection_count_to_set(m, |o| !partition.contains(&o))
                > 0;
            let system_input = network.module_nets(m).iter().any(|&n| {
                network.net(n).pins().iter().any(|&p| match p {
                    Pin::System(st) => network.system_term(st).ty().accepts_input(),
                    Pin::Sub { .. } => false,
                })
            });
            let single_net = {
                let inter_module: Vec<_> = network
                    .module_nets(m)
                    .iter()
                    .filter(|&&n| network.net_modules(n).iter().any(|&o| o != m))
                    .collect();
                inter_module.len() == 1
            };
            external || system_input || single_net
        })
        .collect()
}

/// `LONGEST_PATH`: depth-first search for the longest driver→consumer
/// string starting with `path`, extending only into `available`
/// modules and never beyond `max_len`.
fn longest_path(
    network: &Network,
    path: &mut Vec<ModuleId>,
    available: &mut Vec<ModuleId>,
    max_len: usize,
) -> Vec<ModuleId> {
    let mut best = path.clone();
    if path.len() >= max_len {
        return best;
    }
    let last = *path.last().expect("path never empty");
    // Deterministic candidate order: by module id.
    let mut candidates: Vec<ModuleId> = available
        .iter()
        .copied()
        .filter(|&m| network.drives(last, m).is_some())
        .collect();
    candidates.sort_unstable();
    for m in candidates {
        let idx = available.iter().position(|&x| x == m).expect("candidate");
        available.swap_remove(idx);
        path.push(m);
        let sub = longest_path(network, path, available, max_len);
        if sub.len() > best.len() {
            best = sub;
        }
        path.pop();
        available.push(m);
    }
    best
}

/// `BOX_FORMATION` for one partition: repeatedly pick the longest
/// string from a root and remove its modules, until the partition is
/// exhausted. Returns the boxes in formation order.
///
/// When no designated root remains among the leftover modules, every
/// leftover module becomes a root candidate — the paper's pseudocode
/// would spin otherwise; this keeps the procedure total.
pub fn form_boxes(
    network: &Network,
    partition: &[ModuleId],
    config: &PlaceConfig,
) -> Vec<Vec<ModuleId>> {
    let mut remaining: Vec<ModuleId> = partition.to_vec();
    let mut roots = construct_roots(network, partition);
    let mut boxes = Vec::new();
    while !remaining.is_empty() {
        let mut candidates: Vec<ModuleId> = roots
            .iter()
            .copied()
            .filter(|r| remaining.contains(r))
            .collect();
        if candidates.is_empty() {
            candidates = remaining.clone();
        }
        candidates.sort_unstable();
        let mut best: Vec<ModuleId> = Vec::new();
        for r in candidates {
            let mut path = vec![r];
            let mut avail: Vec<ModuleId> =
                remaining.iter().copied().filter(|&m| m != r).collect();
            let found = longest_path(network, &mut path, &mut avail, config.max_box_size.max(1));
            if found.len() > best.len() {
                best = found;
            }
        }
        debug_assert!(!best.is_empty());
        remaining.retain(|m| !best.contains(m));
        roots.retain(|&r| r != best[0]);
        boxes.push(best);
    }
    boxes
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    /// A linear chain u0 -> u1 -> ... -> u(n-1), with a system input
    /// into u0.
    fn chain(n: usize) -> Network {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("buf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..n)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        let st = b.add_system_terminal("in", TermType::In).unwrap();
        b.connect("n_in", st).unwrap();
        b.connect_pin("n_in", ms[0], "a").unwrap();
        for w in ms.windows(2) {
            let name = format!("n_{}", w[0]);
            b.connect_pin(&name, w[0], "y").unwrap();
            b.connect_pin(&name, w[1], "a").unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn roots_of_a_chain() {
        let net = chain(4);
        let all: Vec<ModuleId> = net.modules().collect();
        let roots = construct_roots(&net, &all);
        // u0: system input (in) + single inter-module net -> root.
        // u3: single inter-module net -> root.
        // u1, u2: two nets each, no system terminal, no external -> not.
        assert_eq!(roots, vec![all[0], all[3]]);
    }

    #[test]
    fn chain_forms_one_box_in_signal_order() {
        let net = chain(5);
        let all: Vec<ModuleId> = net.modules().collect();
        let cfg = PlaceConfig::default().with_max_box_size(5);
        let boxes = form_boxes(&net, &all, &cfg);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0], all, "string follows driver order");
    }

    #[test]
    fn box_size_limit_splits_chain() {
        let net = chain(5);
        let all: Vec<ModuleId> = net.modules().collect();
        let cfg = PlaceConfig::default().with_max_box_size(2);
        let boxes = form_boxes(&net, &all, &cfg);
        assert!(boxes.iter().all(|b| b.len() <= 2), "{boxes:?}");
        let covered: usize = boxes.iter().map(Vec::len).sum();
        assert_eq!(covered, 5);
        // Strings still follow signal flow.
        for b in &boxes {
            for w in b.windows(2) {
                assert!(net.drives(w[0], w[1]).is_some());
            }
        }
    }

    #[test]
    fn box_size_one_gives_singletons() {
        let net = chain(3);
        let all: Vec<ModuleId> = net.modules().collect();
        let boxes = form_boxes(&net, &all, &PlaceConfig::default());
        assert_eq!(boxes.len(), 3);
        assert!(boxes.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn every_module_lands_in_exactly_one_box() {
        let net = chain(7);
        let all: Vec<ModuleId> = net.modules().collect();
        for size in [1, 2, 3, 7, 20] {
            let cfg = PlaceConfig::default().with_max_box_size(size);
            let boxes = form_boxes(&net, &all, &cfg);
            let mut covered: Vec<ModuleId> = boxes.iter().flatten().copied().collect();
            covered.sort_unstable();
            assert_eq!(covered, all, "size {size}");
        }
    }

    #[test]
    fn cycle_without_roots_still_terminates() {
        // A 3-cycle of modules with no system terminals and no external
        // connections: CONSTRUCT_ROOTS finds none, the fallback kicks in.
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("r", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..3)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        for i in 0..3 {
            let name = format!("n{i}");
            b.connect_pin(&name, ms[i], "y").unwrap();
            b.connect_pin(&name, ms[(i + 1) % 3], "a").unwrap();
        }
        let net = b.finish().unwrap();
        let all: Vec<ModuleId> = net.modules().collect();
        let roots = construct_roots(&net, &all);
        assert!(roots.is_empty(), "{roots:?}");
        let cfg = PlaceConfig::default().with_max_box_size(5);
        let boxes = form_boxes(&net, &all, &cfg);
        let covered: usize = boxes.iter().map(Vec::len).sum();
        assert_eq!(covered, 3);
        // The cycle cannot be one string of 3 plus repetition; it forms
        // one string covering all three (a cycle broken at one edge).
        assert_eq!(boxes[0].len(), 3);
    }

    #[test]
    fn forked_topology_prefers_longest_string() {
        // u0 -> u1 -> u2 and u0 -> u3 (a fork): the longest path wins
        // first, the leftover becomes its own box.
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("f", (4, 4))
                    .unwrap()
                    .with_terminal("a", (0, 2), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap()
                    .with_terminal("z", (4, 3), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..4)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        let st = b.add_system_terminal("in", TermType::In).unwrap();
        b.connect("nin", st).unwrap();
        b.connect_pin("nin", ms[0], "a").unwrap();
        b.connect_pin("n01", ms[0], "y").unwrap();
        b.connect_pin("n01", ms[1], "a").unwrap();
        b.connect_pin("n12", ms[1], "y").unwrap();
        b.connect_pin("n12", ms[2], "a").unwrap();
        b.connect_pin("n03", ms[0], "z").unwrap();
        b.connect_pin("n03", ms[3], "a").unwrap();
        let net = b.finish().unwrap();
        let all: Vec<ModuleId> = net.modules().collect();
        let cfg = PlaceConfig::default().with_max_box_size(5);
        let boxes = form_boxes(&net, &all, &cfg);
        assert_eq!(boxes[0], vec![all[0], all[1], all[2]]);
        assert_eq!(boxes[1], vec![all[3]]);
    }
}
