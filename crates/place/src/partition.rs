//! Partitioning the design into functional parts (§4.6.3).
//!
//! The process repeatedly selects a *seed* — the free module most
//! heavily connected to the remaining free modules — and grows a cluster
//! around it by absorbing the free module with the strongest affinity to
//! the cluster, until the partition size limit or the outgoing-net limit
//! is exceeded.

use netart_netlist::{ModuleId, Network};

use crate::PlaceConfig;

/// The result of partitioning: disjoint module sets covering all
/// requested modules, in formation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// The partitions, each a list of modules in absorption order
    /// (seed first).
    pub partitions: Vec<Vec<ModuleId>>,
}

impl Partitioning {
    /// Number of partitions formed.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// `true` when no partitions were formed.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The partition index a module belongs to.
    pub fn partition_of(&self, m: ModuleId) -> Option<usize> {
        self.partitions.iter().position(|p| p.contains(&m))
    }
}

/// `TAKE_A_SEED`: the free module with the most connections to the
/// other free modules; ties broken by fewest connections to modules
/// already absorbed into partitions, then by lowest id (the paper's
/// "arbitrary choice", made deterministic).
fn take_a_seed(network: &Network, free: &[ModuleId]) -> ModuleId {
    let is_free = |m: ModuleId| free.contains(&m);
    *free
        .iter()
        .min_by_key(|&&m| {
            let to_free = network.connection_count_to_set(m, is_free);
            let to_placed = network.connection_count_to_set(m, |o| !is_free(o));
            // max to_free, then min to_placed, then min id.
            (usize::MAX - to_free, to_placed, m)
        })
        .expect("take_a_seed requires at least one free module")
}

/// Number of nets leaving `partition` towards other modules of the
/// network (the paper's `connections` counter in `FORM_PARTITION`).
fn external_connections(network: &Network, partition: &[ModuleId]) -> usize {
    let mut nets: Vec<_> = partition
        .iter()
        .flat_map(|&m| network.module_nets(m).iter().copied())
        .collect();
    nets.sort_unstable();
    nets.dedup();
    nets.into_iter()
        .filter(|&n| {
            network
                .net_modules(n)
                .iter()
                .any(|m| !partition.contains(m))
        })
        .count()
}

/// `FORM_PARTITION`: grows a cluster around `seed` from the `free` pool
/// (which must not contain `seed`), removing absorbed modules from
/// `free`.
fn form_partition(
    network: &Network,
    free: &mut Vec<ModuleId>,
    seed: ModuleId,
    config: &PlaceConfig,
) -> Vec<ModuleId> {
    let mut partition = vec![seed];
    loop {
        if free.is_empty() || partition.len() >= config.max_part_size {
            break;
        }
        if external_connections(network, &partition) >= config.max_connections {
            break;
        }
        // Most connections into the partition; tie-break fewest to the
        // outside; then lowest id.
        let (idx, best) = free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &m)| {
                let inward = network.connection_count_to_set(m, |o| partition.contains(&o));
                let outward = network.connection_count_to_set(m, |o| !partition.contains(&o));
                (usize::MAX - inward, outward, m)
            })
            .map(|(i, &m)| (i, m))
            .expect("free checked non-empty");
        if config.stop_on_zero_affinity
            && network.connection_count_to_set(best, |o| partition.contains(&o)) == 0
        {
            break;
        }
        free.swap_remove(idx);
        partition.push(best);
    }
    partition
}

/// Partitions the given modules of a network into functional parts.
///
/// Every module of `modules` ends up in exactly one partition. The
/// order of `modules` does not influence the result beyond tie-breaking
/// by module id.
pub fn partition(
    network: &Network,
    modules: impl IntoIterator<Item = ModuleId>,
    config: &PlaceConfig,
) -> Partitioning {
    let mut free: Vec<ModuleId> = modules.into_iter().collect();
    free.sort_unstable();
    free.dedup();
    let mut partitions = Vec::new();
    while !free.is_empty() {
        let seed = take_a_seed(network, &free);
        free.retain(|&m| m != seed);
        partitions.push(form_partition(network, &mut free, seed, config));
    }
    Partitioning { partitions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    /// Two 3-module cliques joined by a single bridge net.
    fn two_cliques() -> Network {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("m", (2, 6))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("b", (0, 3), TermType::In)
                    .unwrap()
                    .with_terminal("c", (0, 5), TermType::In)
                    .unwrap()
                    .with_terminal("x", (2, 1), TermType::Out)
                    .unwrap()
                    .with_terminal("y", (2, 3), TermType::Out)
                    .unwrap()
                    .with_terminal("z", (2, 5), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..6)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        // clique 0: u0,u1,u2 fully pairwise connected
        let pairs = [(0, 1, "x", "a"), (1, 2, "y", "b"), (2, 0, "z", "c")];
        for (i, (s, d, o, t)) in pairs.iter().enumerate() {
            let name = format!("c0_{i}");
            b.connect_pin(&name, ms[*s], o).unwrap();
            b.connect_pin(&name, ms[*d], t).unwrap();
        }
        for (i, (s, d, o, t)) in pairs.iter().enumerate() {
            let name = format!("c1_{i}");
            b.connect_pin(&name, ms[s + 3], o).unwrap();
            b.connect_pin(&name, ms[d + 3], t).unwrap();
        }
        // bridge u2 -> u3
        b.connect_pin("bridge", ms[2], "x").unwrap();
        b.connect_pin("bridge", ms[3], "a").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn partition_size_one_yields_singletons() {
        let net = two_cliques();
        let p = partition(&net, net.modules(), &PlaceConfig::default());
        assert_eq!(p.len(), 6);
        assert!(p.partitions.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn cliques_stay_together() {
        let net = two_cliques();
        let cfg = PlaceConfig::default().with_max_part_size(3);
        let p = partition(&net, net.modules(), &cfg);
        assert_eq!(p.len(), 2, "{p:?}");
        for part in &p.partitions {
            assert_eq!(part.len(), 3);
            // All members of a partition belong to the same clique.
            let first_clique = part[0].index() / 3;
            assert!(part.iter().all(|m| m.index() / 3 == first_clique), "{p:?}");
        }
    }

    #[test]
    fn every_module_in_exactly_one_partition() {
        let net = two_cliques();
        for size in [1, 2, 3, 4, 10] {
            let cfg = PlaceConfig::default().with_max_part_size(size);
            let p = partition(&net, net.modules(), &cfg);
            let mut all: Vec<ModuleId> = p.partitions.iter().flatten().copied().collect();
            all.sort_unstable();
            let expected: Vec<ModuleId> = net.modules().collect();
            assert_eq!(all, expected, "size {size}");
        }
    }

    #[test]
    fn connection_limit_closes_partitions() {
        let net = two_cliques();
        // With the limit at 1 outgoing net, partitions close as soon as
        // they have any external connection, keeping them small.
        let cfg = PlaceConfig::default()
            .with_max_part_size(6)
            .with_max_connections(1);
        let p = partition(&net, net.modules(), &cfg);
        assert!(p.len() >= 2, "{p:?}");
    }

    #[test]
    fn partition_of_lookup() {
        let net = two_cliques();
        let cfg = PlaceConfig::default().with_max_part_size(3);
        let p = partition(&net, net.modules(), &cfg);
        for m in net.modules() {
            assert!(p.partition_of(m).is_some());
        }
        assert!(!p.is_empty());
    }

    #[test]
    fn subset_partitioning_ignores_other_modules() {
        let net = two_cliques();
        let subset: Vec<ModuleId> = net.modules().take(3).collect();
        let cfg = PlaceConfig::default().with_max_part_size(3);
        let p = partition(&net, subset.iter().copied(), &cfg);
        let placed: Vec<ModuleId> = p.partitions.iter().flatten().copied().collect();
        assert_eq!(placed.len(), 3);
        assert!(placed.iter().all(|m| subset.contains(m)));
    }

    #[test]
    fn zero_affinity_split_vs_paper_mode() {
        let net = two_cliques();
        // Big enough limit to hold everything.
        let strict = PlaceConfig::default().with_max_part_size(6);
        let p = partition(&net, net.modules(), &strict);
        // The bridge net gives the cliques affinity, so one partition.
        assert_eq!(p.len(), 1);

        let mut paper_mode = strict.clone();
        paper_mode.stop_on_zero_affinity = false;
        let p2 = partition(&net, net.modules(), &paper_mode);
        assert_eq!(p2.len(), 1);
    }
}
