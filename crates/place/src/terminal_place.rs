//! System terminal placement (§4.6.7).
//!
//! System terminals go on a ring one track outside the placement's
//! bounding box, each at the free ring position closest to the gravity
//! centre of the subsystem terminals on its net. With strings placed
//! left to right, input terminals naturally gravitate to the left edge
//! and outputs to the right (Rule 4).

use netart_geom::{Point, Rect};
use netart_netlist::{Network, Pin, SystemTermId};

use netart_diagram::Placement;

use crate::gravity::centroid;

/// All integer points of the ring one track outside `bb`.
fn ring_points(bb: Rect) -> Vec<Point> {
    let r = bb.inflate(1);
    let ll = r.lower_left();
    let ur = r.upper_right();
    let mut pts = Vec::new();
    for x in ll.x..=ur.x {
        pts.push(Point::new(x, ll.y));
        pts.push(Point::new(x, ur.y));
    }
    for y in (ll.y + 1)..ur.y {
        pts.push(Point::new(ll.x, y));
        pts.push(Point::new(ur.x, y));
    }
    pts
}

/// Places every unplaced system terminal of `network` on the ring
/// around the current placement's bounding box (`TERMINAL_PLACEMENT`).
///
/// Already-placed system terminals (a preplaced part) are left alone
/// but block their ring position.
///
/// # Panics
///
/// Panics when the ring is too small to host all terminals (only
/// possible for degenerate empty placements with many terminals).
pub fn place_system_terminals(network: &Network, placement: &mut Placement) {
    let bb = placement
        .bounding_box(network)
        .unwrap_or_else(|| Rect::new(Point::ORIGIN, 4, 4));
    let mut free = ring_points(bb);
    free.sort_unstable();
    free.dedup();
    // Positions already used by preplaced terminals are not free.
    let taken: Vec<Point> = network
        .system_terms()
        .filter_map(|st| placement.system_term(st))
        .collect();
    free.retain(|p| !taken.contains(p));

    for st in network.system_terms() {
        if placement.system_term(st).is_some() {
            continue;
        }
        let gravity = gravity_of(network, placement, st).unwrap_or_else(|| bb.center());
        let (idx, &best) = free
            .iter()
            .enumerate()
            .min_by_key(|&(_, p)| (p.dist2(gravity), *p))
            .expect("ring exhausted: no free position for a system terminal");
        placement.place_system_term(st, best);
        free.swap_remove(idx);
    }
}

/// `GRAVITY_TERMINAL`: centroid of the placed subsystem terminals on
/// the same net.
fn gravity_of(network: &Network, placement: &Placement, st: SystemTermId) -> Option<Point> {
    let net = network.system_term_net(st)?;
    let pts: Vec<Point> = network
        .net(net)
        .pins()
        .iter()
        .filter_map(|&pin| match pin {
            Pin::Sub { module, term } => {
                placement.module(module)?;
                Some(placement.terminal_position(network, module, term))
            }
            Pin::System(_) => None,
        })
        .collect();
    centroid(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_geom::Rotation;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn network() -> Network {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("buf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let input = b.add_system_terminal("in", TermType::In).unwrap();
        let output = b.add_system_terminal("out", TermType::Out).unwrap();
        b.connect("nin", input).unwrap();
        b.connect_pin("nin", u0, "a").unwrap();
        b.connect_pin("mid", u0, "y").unwrap();
        b.connect_pin("mid", u1, "a").unwrap();
        b.connect("nout", output).unwrap();
        b.connect_pin("nout", u1, "y").unwrap();
        b.finish().unwrap()
    }

    fn placed(network: &Network) -> Placement {
        let mut p = Placement::new(network);
        let ms: Vec<_> = network.modules().collect();
        p.place_module(ms[0], Point::new(0, 0), Rotation::R0);
        p.place_module(ms[1], Point::new(10, 0), Rotation::R0);
        p
    }

    #[test]
    fn ring_points_surround_the_box() {
        let pts = ring_points(Rect::new(Point::new(0, 0), 2, 2));
        // Ring of a 2x2 box inflated to 4x4: 4 sides with 5 points on
        // top/bottom plus 3 on each side.
        assert_eq!(pts.len(), 2 * 5 + 2 * 3);
        for p in &pts {
            let on_ring =
                p.x == -1 || p.x == 3 || p.y == -1 || p.y == 3;
            assert!(on_ring, "{p} not on ring");
        }
    }

    #[test]
    fn input_lands_left_output_lands_right() {
        let net = network();
        let mut p = placed(&net);
        place_system_terminals(&net, &mut p);
        let input = p.system_term(net.system_term_by_name("in").unwrap()).unwrap();
        let output = p.system_term(net.system_term_by_name("out").unwrap()).unwrap();
        // Signal flows left to right: the input terminal must end up on
        // the left of the output one (Rule 4).
        assert!(input.x < output.x, "in {input} vs out {output}");
        assert_eq!(input.x, -1, "input on the left ring edge");
        assert_eq!(output.x, 15, "output on the right ring edge");
    }

    #[test]
    fn terminals_do_not_collide() {
        let net = network();
        let mut p = placed(&net);
        place_system_terminals(&net, &mut p);
        let a = p.system_term(SystemTermId::from_index(0)).unwrap();
        let b = p.system_term(SystemTermId::from_index(1)).unwrap();
        assert_ne!(a, b);
        assert!(p.overlap_violations(&net).is_empty());
    }

    #[test]
    fn preplaced_terminal_is_kept() {
        let net = network();
        let mut p = placed(&net);
        let input = net.system_term_by_name("in").unwrap();
        p.place_system_term(input, Point::new(-5, -5));
        place_system_terminals(&net, &mut p);
        assert_eq!(p.system_term(input), Some(Point::new(-5, -5)));
        assert!(p.is_complete());
    }

    #[test]
    fn unconnected_terminal_still_gets_a_spot() {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("buf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        let _dangling = b.add_system_terminal("nc", TermType::In).unwrap();
        let net = b.finish().unwrap();
        let mut p = placed(&net);
        place_system_terminals(&net, &mut p);
        assert!(p.is_complete());
    }
}
