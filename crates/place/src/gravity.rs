//! Centre-of-gravity placement of rectangular clusters (§4.6.5/§4.6.6).
//!
//! `PLACE_BOX` and `PLACE_PARTITION` both solve the same sub-problem:
//! given already-placed rectangles, put a new rectangle at the free
//! position minimising the squared distance between two gravity centres.
//! [`GravityField`] implements that search. The paper quantifies over
//! *all* integer positions; we exploit that the quadratic objective over
//! the free region attains its minimum either at the unconstrained
//! optimum or on the boundary of an inflated obstacle, where it is found
//! by clamping — giving the same answer in O(#placed) candidates.

use netart_geom::{Point, Rect};

/// Incremental occupancy map for gravity placement.
#[derive(Debug, Clone)]
pub(crate) struct GravityField {
    placed: Vec<Rect>,
    spacing: i32,
}

impl GravityField {
    /// An empty field where every rectangle keeps `spacing` extra
    /// tracks around itself.
    pub(crate) fn new(spacing: i32) -> Self {
        GravityField {
            placed: Vec::new(),
            spacing: spacing.max(0),
        }
    }

    /// Marks a rectangle as occupied without searching (used for the
    /// first, anchor cluster and for preplaced parts).
    pub(crate) fn occupy(&mut self, rect: Rect) {
        self.placed.push(rect.inflate(self.spacing));
    }

    fn collides(&self, rect: &Rect) -> bool {
        self.placed.iter().any(|p| p.overlaps_strictly(rect))
    }

    fn effective(&self, origin: Point, size: (i32, i32)) -> Rect {
        Rect::new(
            origin - Point::new(self.spacing, self.spacing),
            size.0 + 2 * self.spacing,
            size.1 + 2 * self.spacing,
        )
    }

    /// Finds the free origin for a `size` rectangle closest (squared
    /// Euclidean) to `desired`, marks it occupied, and returns it.
    pub(crate) fn place(&mut self, size: (i32, i32), desired: Point) -> Point {
        let origin = self.best_position(size, desired);
        self.occupy(Rect::new(origin, size.0, size.1));
        origin
    }

    fn best_position(&self, size: (i32, i32), desired: Point) -> Point {
        if !self.collides(&self.effective(desired, size)) {
            return desired;
        }
        let (w, h) = (size.0 + 2 * self.spacing, size.1 + 2 * self.spacing);
        let mut best: Option<(i64, Point)> = None;
        let mut consider = |origin: Point| {
            let rect = self.effective(origin, size);
            if self.collides(&rect) {
                return;
            }
            let score = (origin.dist2(desired), origin);
            match &mut best {
                Some((s, b)) if (*s, *b) <= (score.0, origin) => {}
                _ => best = Some(score),
            }
        };
        for obstacle in &self.placed {
            let ll = obstacle.lower_left();
            let ur = obstacle.upper_right();
            // Touch from the left / right: the sliding coordinate's
            // optimum is the clamp of the desired coordinate; corners
            // cover configurations blocked by neighbours.
            for x in [ll.x - w, ur.x] {
                let x = x + self.spacing; // convert effective to true origin
                for y in [
                    desired.y.clamp(ll.y - h + self.spacing, ur.y + self.spacing),
                    ll.y - h + self.spacing,
                    ur.y + self.spacing,
                ] {
                    consider(Point::new(x, y));
                }
            }
            // Touch from below / above.
            for y in [ll.y - h, ur.y] {
                let y = y + self.spacing;
                for x in [
                    desired.x.clamp(ll.x - w + self.spacing, ur.x + self.spacing),
                    ll.x - w + self.spacing,
                    ur.x + self.spacing,
                ] {
                    consider(Point::new(x, y));
                }
            }
        }
        if let Some((_, origin)) = best {
            return origin;
        }
        // Dense corner cases (every touching position blocked by a
        // neighbour): fall back to the first free spot right of
        // everything, which always exists on the open plane.
        let hull = self
            .placed
            .iter()
            .skip(1)
            .fold(self.placed[0], |acc, r| acc.hull(r));
        Point::new(hull.upper_right().x + self.spacing, desired.y)
    }

    /// The bounding rectangle over everything placed (including
    /// spacing), if anything is placed.
    pub(crate) fn bounding(&self) -> Option<Rect> {
        let mut it = self.placed.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.hull(r)))
    }
}

/// Integer centroid of a set of points; `None` when empty.
pub(crate) fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as i64;
    let sx: i64 = points.iter().map(|p| i64::from(p.x)).sum();
    let sy: i64 = points.iter().map(|p| i64::from(p.y)).sum();
    Some(Point::new(
        (sx.div_euclid(n)) as i32,
        (sy.div_euclid(n)) as i32,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_desired_position_is_taken() {
        let mut f = GravityField::new(0);
        f.occupy(Rect::new(Point::new(0, 0), 4, 4));
        let p = f.place((2, 2), Point::new(10, 10));
        assert_eq!(p, Point::new(10, 10));
    }

    #[test]
    fn blocked_position_slides_to_touching() {
        let mut f = GravityField::new(0);
        f.occupy(Rect::new(Point::new(0, 0), 4, 4));
        // Desired right in the middle of the obstacle.
        let p = f.place((2, 2), Point::new(1, 1));
        let placed = Rect::new(p, 2, 2);
        assert!(!placed.overlaps_strictly(&Rect::new(Point::new(0, 0), 4, 4)));
        // The result touches the obstacle (as close as possible).
        assert!(placed.overlaps(&Rect::new(Point::new(0, 0), 4, 4)));
    }

    #[test]
    fn spacing_keeps_gap() {
        let mut f = GravityField::new(2);
        f.occupy(Rect::new(Point::new(0, 0), 4, 4));
        let p = f.place((2, 2), Point::new(1, 1));
        let placed = Rect::new(p, 2, 2);
        // Gap of at least 2 tracks on the approach axis... measured as
        // no strict overlap even after inflating both by 2.
        assert!(!placed
            .inflate(2)
            .overlaps_strictly(&Rect::new(Point::new(0, 0), 4, 4).inflate(2)));
    }

    #[test]
    fn successive_placements_do_not_overlap() {
        let mut f = GravityField::new(0);
        f.occupy(Rect::new(Point::new(0, 0), 6, 6));
        let mut rects = vec![Rect::new(Point::new(0, 0), 6, 6)];
        for _ in 0..12 {
            let p = f.place((5, 3), Point::new(3, 3));
            let r = Rect::new(p, 5, 3);
            for existing in &rects {
                assert!(!r.overlaps_strictly(existing), "{r} vs {existing}");
            }
            rects.push(r);
        }
    }

    #[test]
    fn placements_stay_near_gravity() {
        let mut f = GravityField::new(0);
        f.occupy(Rect::new(Point::new(0, 0), 4, 4));
        let p = f.place((2, 2), Point::new(5, 1));
        // Best free spot at the right edge of the obstacle.
        assert_eq!(p, Point::new(5, 1));
        let q = f.place((2, 2), Point::new(5, 1));
        // Next one can't take the same spot; it must touch either rect.
        assert_ne!(q, p);
        assert!(q.dist2(Point::new(5, 1)) <= 25, "{q} too far from gravity");
    }

    #[test]
    fn bounding_covers_all() {
        let mut f = GravityField::new(1);
        assert!(f.bounding().is_none());
        f.occupy(Rect::new(Point::new(0, 0), 2, 2));
        f.occupy(Rect::new(Point::new(10, 10), 2, 2));
        let b = f.bounding().unwrap();
        assert!(b.contains(Point::new(-1, -1)));
        assert!(b.contains(Point::new(13, 13)));
    }

    #[test]
    fn centroid_basics() {
        assert_eq!(centroid(&[]), None);
        assert_eq!(centroid(&[Point::new(2, 4)]), Some(Point::new(2, 4)));
        assert_eq!(
            centroid(&[Point::new(0, 0), Point::new(4, 2)]),
            Some(Point::new(2, 1))
        );
        assert_eq!(
            centroid(&[Point::new(-3, -3), Point::new(0, 0)]),
            Some(Point::new(-2, -2)) // floor division keeps determinism
        );
    }
}
