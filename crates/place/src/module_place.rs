//! Module placement inside a box (§4.6.4).
//!
//! The string's head is rotated so that its driving terminal faces
//! right; every successor is rotated so that its consuming terminal
//! faces left, then shifted vertically so that the connecting net needs
//! as few bends as possible (0 when the driver's terminal faces right,
//! 1 when it faces up or down, 2 when it faces left — the minimum by
//! the lemma of §4.6.4). White space proportional to the number of
//! connected terminals on each side keeps routing room around every
//! module.

use netart_geom::{Point, Rect, Rotation, Side};
use netart_netlist::{ModuleId, Network, Pin, TermIdx};

use crate::PlaceConfig;

/// The laid-out geometry of one box: module positions and rotations in
/// box-local coordinates (lower-left of the box bounding area at the
/// origin) and the box size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxLayout {
    entries: Vec<(ModuleId, Point, Rotation)>,
    size: (i32, i32),
}

impl BoxLayout {
    /// The `(module, box-local position, rotation)` triples, in string
    /// order.
    pub fn entries(&self) -> &[(ModuleId, Point, Rotation)] {
        &self.entries
    }

    /// The box bounding size including white space.
    pub fn size(&self) -> (i32, i32) {
        self.size
    }

    /// The box bounding rectangle at the origin.
    pub fn rect(&self) -> Rect {
        Rect::new(Point::ORIGIN, self.size.0, self.size.1)
    }

    /// Box-local position of a terminal of a module in this box.
    ///
    /// # Panics
    ///
    /// Panics when the module is not part of this box.
    pub fn terminal_pos(&self, network: &Network, m: ModuleId, term: TermIdx) -> Point {
        let &(_, pos, rot) = self
            .entries
            .iter()
            .find(|(e, _, _)| *e == m)
            .expect("module not in box");
        let tpl = network.template_of(m);
        pos + rot.apply_point(tpl.terminals()[term].offset(), tpl.size())
    }

    /// The modules of this box in string order.
    pub fn modules(&self) -> impl Iterator<Item = ModuleId> + '_ {
        self.entries.iter().map(|&(m, _, _)| m)
    }
}

/// Number of *connected* terminals on side `side` of module `m` under
/// rotation `rot` — the argument of the white-space function `f`.
fn connected_terms_on_side(network: &Network, m: ModuleId, rot: Rotation, side: Side) -> usize {
    let tpl = network.template_of(m);
    (0..tpl.terminal_count())
        .filter(|&t| {
            rot.apply_side(tpl.terminal_side(t)) == side
                && network.pin_net(Pin::Sub { module: m, term: t }).is_some()
        })
        .count()
}

/// The white-space function `f`: tracks added beside a module bounding
/// as a function of the connected terminals on that side (Appendix E:
/// "the number of connected terminals on that side plus one", plus the
/// user's `-s` extra).
fn f(config: &PlaceConfig, connected: usize) -> i32 {
    connected as i32 + 1 + config.module_spacing
}

/// Lays out one string of modules (`MODULE_PLACEMENT` /
/// `INIT_MODULE_PLACEMENT` / `PLACE_MODULE`).
///
/// # Panics
///
/// Panics when `string` is empty or consecutive modules lack a
/// driver→consumer net (boxes from [`crate::form_boxes`] always have
/// one).
pub fn layout_box(network: &Network, string: &[ModuleId], config: &PlaceConfig) -> BoxLayout {
    assert!(!string.is_empty(), "cannot lay out an empty box");
    let mut entries: Vec<(ModuleId, Point, Rotation)> = Vec::with_capacity(string.len());

    // Head module: rotate its driving terminal to the right (when it
    // has a successor).
    let head = string[0];
    let head_rot = if string.len() >= 2 {
        let (_, out_t, _) = network
            .drives(head, string[1])
            .expect("consecutive box modules are driver-connected");
        Rotation::mapping(network.template_of(head).terminal_side(out_t), Side::Right)
    } else {
        Rotation::R0
    };
    let head_size = head_rot.apply_size(network.template_of(head).size());
    let head_pos = Point::new(
        f(config, connected_terms_on_side(network, head, head_rot, Side::Left)),
        f(config, connected_terms_on_side(network, head, head_rot, Side::Down)),
    );
    entries.push((head, head_pos, head_rot));

    let mut right = head_pos.x
        + head_size.0
        + f(config, connected_terms_on_side(network, head, head_rot, Side::Right));
    let mut up = head_pos.y
        + head_size.1
        + f(config, connected_terms_on_side(network, head, head_rot, Side::Up));
    let left = 0;
    let mut down = 0;

    for w in string.windows(2) {
        let (prev, m) = (w[0], w[1]);
        let &(_, prev_pos, prev_rot) = entries.last().expect("head placed");
        let prev_tpl = network.template_of(prev);
        let (_, t_prev, t) = network
            .drives(prev, m)
            .expect("consecutive box modules are driver-connected");

        // Rotate m so the consuming terminal faces left.
        let tpl = network.template_of(m);
        let rot = Rotation::mapping(tpl.terminal_side(t), Side::Left);
        let size = rot.apply_size(tpl.size());
        let t_pos = rot.apply_point(tpl.terminals()[t].offset(), tpl.size());

        let side_prev = prev_rot.apply_side(prev_tpl.terminal_side(t_prev));
        let t_prev_pos = prev_rot.apply_point(prev_tpl.terminals()[t_prev].offset(), prev_tpl.size());
        let prev_h = prev_rot.apply_size(prev_tpl.size()).1;

        // Vertical shift minimising bends (see the lemma of §4.6.4).
        let y = match side_prev {
            Side::Right => prev_pos.y + t_prev_pos.y - t_pos.y,
            Side::Up => prev_pos.y + t_prev_pos.y - t_pos.y + 1,
            Side::Down => prev_pos.y - 1 - t_pos.y,
            Side::Left => {
                if prev_h - t_prev_pos.y > t_prev_pos.y {
                    prev_pos.y - 1 - t_pos.y
                } else {
                    prev_pos.y + prev_h + 1 - t_pos.y
                }
            }
        };
        let x = right + f(config, connected_terms_on_side(network, m, rot, Side::Left));
        entries.push((m, Point::new(x, y), rot));

        right = x + size.0 + f(config, connected_terms_on_side(network, m, rot, Side::Right));
        up = up.max(y + size.1 + f(config, connected_terms_on_side(network, m, rot, Side::Up)));
        down = down.min(y - f(config, connected_terms_on_side(network, m, rot, Side::Down)));
    }

    // Normalise: translate so the box's lower-left corner is (0, 0).
    let delta = Point::new(-left, -down);
    for (_, pos, _) in &mut entries {
        *pos += delta;
    }
    BoxLayout {
        entries,
        size: (right - left, up - down),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    /// Chain of `n` buffers with aligned left-in / right-out terminals.
    fn chain(n: usize) -> Network {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("buf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..n)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        for w in ms.windows(2) {
            let name = format!("n_{}", w[0]);
            b.connect_pin(&name, w[0], "y").unwrap();
            b.connect_pin(&name, w[1], "a").unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn aligned_chain_needs_no_rotation_and_no_bends() {
        let net = chain(3);
        let string: Vec<ModuleId> = net.modules().collect();
        let layout = layout_box(&net, &string, &PlaceConfig::default());
        assert_eq!(layout.entries().len(), 3);
        for (_, _, rot) in layout.entries() {
            assert_eq!(*rot, Rotation::R0);
        }
        // Connecting terminals sit on the same track: zero-bend wires.
        for w in string.windows(2) {
            let (n, o, i) = net.drives(w[0], w[1]).unwrap();
            let _ = n;
            let from = layout.terminal_pos(&net, w[0], o);
            let to = layout.terminal_pos(&net, w[1], i);
            assert_eq!(from.y, to.y, "terminals aligned for a straight wire");
            assert!(from.x < to.x, "signal flows left to right");
        }
    }

    #[test]
    fn modules_do_not_overlap_and_fit_in_box() {
        let net = chain(4);
        let string: Vec<ModuleId> = net.modules().collect();
        let layout = layout_box(&net, &string, &PlaceConfig::default());
        let rects: Vec<Rect> = layout
            .entries()
            .iter()
            .map(|&(m, pos, rot)| {
                let (w, h) = rot.apply_size(net.template_of(m).size());
                Rect::new(pos, w, h)
            })
            .collect();
        for (i, a) in rects.iter().enumerate() {
            assert!(layout.rect().contains(a.lower_left()), "{a} outside box");
            assert!(layout.rect().contains(a.upper_right()), "{a} outside box");
            for b in &rects[i + 1..] {
                assert!(!a.overlaps_strictly(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn whitespace_grows_with_connected_terminals() {
        let net = chain(2);
        let string: Vec<ModuleId> = net.modules().collect();
        let tight = layout_box(&net, &string, &PlaceConfig::default());
        let roomy = layout_box(&net, &string, &PlaceConfig::default().with_module_spacing(3));
        assert!(roomy.size().0 > tight.size().0);
        assert!(roomy.size().1 > tight.size().1);
    }

    #[test]
    fn head_with_top_output_is_rotated() {
        // Head's only output is on top; it must rotate so the output
        // faces right.
        let mut lib = Library::new();
        let src = lib
            .add_template(
                Template::new("src", (4, 2))
                    .unwrap()
                    .with_terminal("y", (2, 2), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let buf = lib
            .add_template(
                Template::new("buf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", src).unwrap();
        let u1 = b.add_instance("u1", buf).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        let net = b.finish().unwrap();
        let layout = layout_box(&net, &[u0, u1], &PlaceConfig::default());
        let (_, _, rot0) = layout.entries()[0];
        assert_eq!(rot0.apply_side(Side::Up), Side::Right);
        // u1's input already faces left: no rotation.
        assert_eq!(layout.entries()[1].2, Rotation::R0);
        // Terminals aligned (driver faces right after rotation).
        let from = layout.terminal_pos(&net, u0, 0);
        let to = layout.terminal_pos(&net, u1, 0);
        assert_eq!(from.y, to.y);
    }

    #[test]
    fn consumer_with_top_input_is_rotated() {
        let mut lib = Library::new();
        let src = lib
            .add_template(
                Template::new("src", (4, 2))
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let snk = lib
            .add_template(
                Template::new("snk", (4, 2))
                    .unwrap()
                    .with_terminal("a", (2, 2), TermType::In)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", src).unwrap();
        let u1 = b.add_instance("u1", snk).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        let net = b.finish().unwrap();
        let layout = layout_box(&net, &[u0, u1], &PlaceConfig::default());
        let (_, _, rot1) = layout.entries()[1];
        assert_eq!(rot1.apply_side(Side::Up), Side::Left);
        let from = layout.terminal_pos(&net, u0, 0);
        let to = layout.terminal_pos(&net, u1, 0);
        assert_eq!(from.y, to.y, "aligned after rotation");
    }

    #[test]
    fn single_module_box() {
        let net = chain(2);
        let m = net.modules().next().unwrap();
        let layout = layout_box(&net, &[m], &PlaceConfig::default());
        assert_eq!(layout.entries().len(), 1);
        assert_eq!(layout.entries()[0].2, Rotation::R0);
        let (w, h) = layout.size();
        assert!(w > 4 && h > 2, "white space around the module");
    }

    #[test]
    #[should_panic(expected = "empty box")]
    fn empty_box_panics() {
        let net = chain(2);
        let _ = layout_box(&net, &[], &PlaceConfig::default());
    }
}
