/// Placement options, mirroring the `pablo` command line of Appendix E.
///
/// | Field | Flag | Paper default |
/// |-------|------|---------------|
/// | `max_part_size` | `-p` | 1 |
/// | `max_box_size` | `-b` | 1 |
/// | `max_connections` | `-c` | ∞ |
/// | `part_spacing` | `-e` | 0 |
/// | `box_spacing` | `-i` | 0 |
/// | `module_spacing` | `-s` | 0 |
///
/// [`PlaceConfig::default`] uses the paper defaults (which reproduce
/// figure 6.2's per-module clustering); [`PlaceConfig::strings`] uses
/// the `-p 7 -b 5` setting of figure 6.4 that forms strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceConfig {
    /// Maximum number of modules per partition (`-p`).
    pub max_part_size: usize,
    /// Maximum length of a module string inside a partition (`-b`).
    pub max_box_size: usize,
    /// Maximum number of nets leaving a partition before it is closed
    /// (`-c`); `usize::MAX` means unlimited.
    pub max_connections: usize,
    /// Extra tracks around each partition (`-e`).
    pub part_spacing: i32,
    /// Extra tracks around each box (`-i`).
    pub box_spacing: i32,
    /// Extra tracks around each module (`-s`).
    pub module_spacing: i32,
    /// Stop growing a partition when no free module has any connection
    /// to it. The paper's `FORM_PARTITION` would keep absorbing
    /// unrelated modules up to the size limit; stopping instead keeps
    /// partitions functional (Rule 1). Disable to match the paper's
    /// pseudocode to the letter.
    pub stop_on_zero_affinity: bool,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        PlaceConfig {
            max_part_size: 1,
            max_box_size: 1,
            max_connections: usize::MAX,
            part_spacing: 0,
            box_spacing: 0,
            module_spacing: 0,
            stop_on_zero_affinity: true,
        }
    }
}

impl PlaceConfig {
    /// Paper defaults (`-p 1 -b 1`): every module its own partition, as
    /// in figure 6.2.
    pub fn new() -> Self {
        PlaceConfig::default()
    }

    /// The clustering setting of figure 6.3: `-p 5 -b 1`.
    pub fn clusters() -> Self {
        PlaceConfig {
            max_part_size: 5,
            ..PlaceConfig::default()
        }
    }

    /// The string-forming setting of figure 6.4: `-p 7 -b 5`.
    pub fn strings() -> Self {
        PlaceConfig {
            max_part_size: 7,
            max_box_size: 5,
            ..PlaceConfig::default()
        }
    }

    /// Sets the partition size limit (`-p`).
    pub fn with_max_part_size(mut self, n: usize) -> Self {
        self.max_part_size = n;
        self
    }

    /// Sets the box (string) size limit (`-b`).
    pub fn with_max_box_size(mut self, n: usize) -> Self {
        self.max_box_size = n;
        self
    }

    /// Sets the outgoing-net limit per partition (`-c`).
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Sets the extra spacing around partitions (`-e`).
    pub fn with_part_spacing(mut self, tracks: i32) -> Self {
        self.part_spacing = tracks;
        self
    }

    /// Sets the extra spacing around boxes (`-i`).
    pub fn with_box_spacing(mut self, tracks: i32) -> Self {
        self.box_spacing = tracks;
        self
    }

    /// Sets the extra spacing around modules (`-s`).
    pub fn with_module_spacing(mut self, tracks: i32) -> Self {
        self.module_spacing = tracks;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_appendix_e() {
        let c = PlaceConfig::default();
        assert_eq!(c.max_part_size, 1);
        assert_eq!(c.max_box_size, 1);
        assert_eq!(c.max_connections, usize::MAX);
        assert_eq!(c.part_spacing, 0);
        assert_eq!(c.box_spacing, 0);
        assert_eq!(c.module_spacing, 0);
        assert_eq!(PlaceConfig::new(), c);
    }

    #[test]
    fn figure_presets() {
        assert_eq!(PlaceConfig::clusters().max_part_size, 5);
        assert_eq!(PlaceConfig::clusters().max_box_size, 1);
        assert_eq!(PlaceConfig::strings().max_part_size, 7);
        assert_eq!(PlaceConfig::strings().max_box_size, 5);
    }

    #[test]
    fn builder_setters() {
        let c = PlaceConfig::new()
            .with_max_part_size(9)
            .with_max_box_size(4)
            .with_max_connections(12)
            .with_part_spacing(2)
            .with_box_spacing(1)
            .with_module_spacing(3);
        assert_eq!(c.max_part_size, 9);
        assert_eq!(c.max_box_size, 4);
        assert_eq!(c.max_connections, 12);
        assert_eq!(c.part_spacing, 2);
        assert_eq!(c.box_spacing, 1);
        assert_eq!(c.module_spacing, 3);
    }
}
