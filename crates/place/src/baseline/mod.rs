//! Baseline placement algorithms from the paper's survey.
//!
//! §4.2–4.3 of the paper discusses three classes of traditional
//! placement algorithms before settling on the epitaxial-growth-like
//! PABLO scheme. All three are implemented here so the choice can be
//! evaluated empirically:
//!
//! * [`epitaxial`] — constructive epitaxial growth placement on a cell
//!   grid (§4.2.2),
//! * [`mincut`] — recursive min-cut bipartitioning placement (§4.2.3,
//!   Lauther-style),
//! * [`columnar`] — the levelised column placement used for logic
//!   schematics (§4.3),
//! * [`exchange`] — the iterative pairwise-exchange improvement class
//!   (§4.2.1) the paper rejects for its greediness,
//! * [`exact`] — exact solution of the §3.3 assignment formulation for
//!   tiny instances, to measure the heuristics' optimality gap.
//!
//! The constructive placers produce a [`netart_diagram::Placement`]
//! with unrotated modules and system terminals on the bounding ring,
//! directly comparable with [`crate::Pablo`] output.

pub mod columnar;
pub mod epitaxial;
pub mod exact;
pub mod exchange;
pub mod mincut;
