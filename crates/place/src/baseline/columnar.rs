//! Logic-schematic column placement (§4.3).
//!
//! The highly standardised scheme used for logic diagrams: modules are
//! levelised into columns (column 0 holds the modules driven only from
//! outside, column *k+1* the consumers of column *k*), then the order
//! within each column is improved with barycenter sweeps to reduce net
//! crossings — the permutation heuristic the paper describes for
//! bipartite crossing minimisation.

use std::collections::HashMap;

use netart_geom::{Point, Rotation};
use netart_netlist::{ModuleId, Network};

use netart_diagram::Placement;

use crate::terminal_place::place_system_terminals;

/// Assigns each module its column (level): 0 for modules not driven by
/// any other module, else one more than the deepest driver. Cycles are
/// broken by capping relaxation at the module count.
pub fn levels(network: &Network) -> HashMap<ModuleId, usize> {
    let modules: Vec<ModuleId> = network.modules().collect();
    let mut level: HashMap<ModuleId, usize> = modules.iter().map(|&m| (m, 0)).collect();
    // Bellman-Ford style relaxation; bounded to stay total on cycles.
    for _ in 0..modules.len() {
        let mut changed = false;
        for &m in &modules {
            for &other in &modules {
                if other != m && network.drives(other, m).is_some() {
                    let want = level[&other] + 1;
                    if want > level[&m] && want <= modules.len() {
                        level.insert(m, want);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    level
}

/// Runs column placement over all modules.
///
/// `spacing` separates both columns and the modules within a column.
pub fn place(network: &Network, spacing: i32) -> Placement {
    let mut placement = Placement::new(network);
    let modules: Vec<ModuleId> = network.modules().collect();
    if modules.is_empty() {
        place_system_terminals(network, &mut placement);
        return placement;
    }

    let level = levels(network);
    let max_level = level.values().copied().max().unwrap_or(0);
    let mut columns: Vec<Vec<ModuleId>> = vec![Vec::new(); max_level + 1];
    for &m in &modules {
        columns[level[&m]].push(m);
    }
    for c in &mut columns {
        c.sort_unstable();
    }
    columns.retain(|c| !c.is_empty());

    // Barycenter sweeps: order each column by the mean index of its
    // neighbours in the adjacent column.
    for _ in 0..4 {
        for dir in [1i32, -1] {
            let indices: Vec<Vec<usize>> = (0..columns.len()).map(|i| (0..columns[i].len()).collect()).collect();
            let _ = indices;
            let range: Vec<usize> = if dir == 1 {
                (1..columns.len()).collect()
            } else {
                (0..columns.len().saturating_sub(1)).rev().collect()
            };
            for ci in range {
                let ref_ci = (ci as i32 - dir) as usize;
                let ref_index: HashMap<ModuleId, usize> = columns[ref_ci]
                    .iter()
                    .enumerate()
                    .map(|(i, &m)| (m, i))
                    .collect();
                let mut keyed: Vec<(f64, ModuleId)> = columns[ci]
                    .iter()
                    .map(|&m| {
                        let neigh: Vec<usize> = columns[ref_ci]
                            .iter()
                            .filter(|&&o| network.connection_count(m, o) > 0)
                            .map(|o| ref_index[o])
                            .collect();
                        let bary = if neigh.is_empty() {
                            f64::MAX // keep relative order at the end
                        } else {
                            neigh.iter().sum::<usize>() as f64 / neigh.len() as f64
                        };
                        (bary, m)
                    })
                    .collect();
                keyed.sort_by(|a, b| a.partial_cmp(b).expect("no NaN keys"));
                columns[ci] = keyed.into_iter().map(|(_, m)| m).collect();
            }
        }
    }

    // Geometry: columns left to right, modules stacked bottom-up.
    let gap = spacing + 2;
    let mut x = 0;
    for col in &columns {
        let width = col
            .iter()
            .map(|&m| network.template_of(m).size().0)
            .max()
            .expect("non-empty column");
        let mut y = 0;
        for &m in col {
            placement.place_module(m, Point::new(x, y), Rotation::R0);
            y += network.template_of(m).size().1 + gap;
        }
        x += width + gap;
    }

    place_system_terminals(network, &mut placement);
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    /// in -> u0 -> u1 -> u2, plus u3 also driven by u0.
    fn dag() -> Network {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("g", (4, 4))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("b", (0, 3), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 2), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..4)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        b.connect_pin("n0", ms[0], "y").unwrap();
        b.connect_pin("n0", ms[1], "a").unwrap();
        b.connect_pin("n0", ms[3], "a").unwrap();
        b.connect_pin("n1", ms[1], "y").unwrap();
        b.connect_pin("n1", ms[2], "a").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn levels_follow_signal_depth() {
        let net = dag();
        let lv = levels(&net);
        let ms: Vec<ModuleId> = net.modules().collect();
        assert_eq!(lv[&ms[0]], 0);
        assert_eq!(lv[&ms[1]], 1);
        assert_eq!(lv[&ms[2]], 2);
        assert_eq!(lv[&ms[3]], 1);
    }

    #[test]
    fn columns_run_left_to_right() {
        let net = dag();
        let placement = place(&net, 1);
        assert!(placement.is_complete());
        assert!(placement.overlap_violations(&net).is_empty());
        let ms: Vec<ModuleId> = net.modules().collect();
        let x = |m| placement.module(m).unwrap().position.x;
        assert!(x(ms[0]) < x(ms[1]));
        assert!(x(ms[1]) < x(ms[2]));
        assert_eq!(x(ms[1]), x(ms[3]), "same level, same column");
    }

    #[test]
    fn cycle_terminates() {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("g", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..3)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        for i in 0..3 {
            let name = format!("n{i}");
            b.connect_pin(&name, ms[i], "y").unwrap();
            b.connect_pin(&name, ms[(i + 1) % 3], "a").unwrap();
        }
        let net = b.finish().unwrap();
        let placement = place(&net, 0);
        assert!(placement.is_complete());
        assert!(placement.overlap_violations(&net).is_empty());
    }

    #[test]
    fn empty_network() {
        let lib = Library::new();
        let net = NetworkBuilder::new(lib).finish().unwrap();
        assert!(place(&net, 0).is_complete());
    }
}
