//! Epitaxial growth placement (§4.2.2).
//!
//! The classic constructive scheme: seed the placement with the most
//! connected module, then repeatedly take the unplaced module with the
//! most connections to the placed structure and put it on the free grid
//! cell minimising the total length of its connections.

use std::collections::HashMap;

use netart_geom::{Point, Rotation};
use netart_netlist::{ModuleId, Network};

use netart_diagram::Placement;

use crate::terminal_place::place_system_terminals;

/// Runs epitaxial growth placement over all modules.
///
/// `spacing` adds empty tracks between grid cells (routing room). The
/// resulting placement is complete and overlap-free.
pub fn place(network: &Network, spacing: i32) -> Placement {
    let mut placement = Placement::new(network);
    let modules: Vec<ModuleId> = network.modules().collect();
    if modules.is_empty() {
        place_system_terminals(network, &mut placement);
        return placement;
    }

    // Uniform cell size: the largest module footprint plus spacing.
    let (mut cw, mut ch) = (1, 1);
    for &m in &modules {
        let (w, h) = network.template_of(m).size();
        cw = cw.max(w + 2 + spacing);
        ch = ch.max(h + 2 + spacing);
    }

    let mut cells: HashMap<(i32, i32), ModuleId> = HashMap::new();
    let mut placed: Vec<ModuleId> = Vec::new();

    // Seed: the module most connected to the rest of the design.
    let seed = *modules
        .iter()
        .max_by_key(|&&m| {
            (
                network.connection_count_to_set(m, |_| true),
                std::cmp::Reverse(m),
            )
        })
        .expect("non-empty");
    occupy(network, &mut placement, &mut cells, seed, (0, 0), (cw, ch));
    placed.push(seed);

    let mut unplaced: Vec<ModuleId> = modules.iter().copied().filter(|&m| m != seed).collect();
    while !unplaced.is_empty() {
        // Most connected to the placed structure.
        let (idx, m) = unplaced
            .iter()
            .enumerate()
            .max_by_key(|&(_, &m)| {
                (
                    network.connection_count_to_set(m, |o| placed.contains(&o)),
                    std::cmp::Reverse(m),
                )
            })
            .map(|(i, &m)| (i, m))
            .expect("non-empty");
        unplaced.swap_remove(idx);

        // Candidate cells: every free cell in the occupied hull plus a
        // one-cell ring around it.
        let (min, max) = hull(&cells);
        let mut best: Option<(i64, (i32, i32))> = None;
        for cy in (min.1 - 1)..=(max.1 + 1) {
            for cx in (min.0 - 1)..=(max.0 + 1) {
                if cells.contains_key(&(cx, cy)) {
                    continue;
                }
                let cost = wire_cost(network, &placement, &placed, m, (cx, cy), (cw, ch));
                let key = (cost, (cx, cy));
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let (_, cell) = best.expect("ring always has free cells");
        occupy(network, &mut placement, &mut cells, m, cell, (cw, ch));
        placed.push(m);
    }

    place_system_terminals(network, &mut placement);
    placement
}

fn hull(cells: &HashMap<(i32, i32), ModuleId>) -> ((i32, i32), (i32, i32)) {
    let mut min = (i32::MAX, i32::MAX);
    let mut max = (i32::MIN, i32::MIN);
    for &(x, y) in cells.keys() {
        min = (min.0.min(x), min.1.min(y));
        max = (max.0.max(x), max.1.max(y));
    }
    (min, max)
}

fn cell_center(cell: (i32, i32), cell_size: (i32, i32)) -> Point {
    Point::new(
        cell.0 * cell_size.0 + cell_size.0 / 2,
        cell.1 * cell_size.1 + cell_size.1 / 2,
    )
}

fn occupy(
    network: &Network,
    placement: &mut Placement,
    cells: &mut HashMap<(i32, i32), ModuleId>,
    m: ModuleId,
    cell: (i32, i32),
    cell_size: (i32, i32),
) {
    cells.insert(cell, m);
    let (w, h) = network.template_of(m).size();
    let c = cell_center(cell, cell_size);
    placement.place_module(m, c - Point::new(w / 2, h / 2), Rotation::R0);
}

/// Connection-weighted Manhattan distance from a candidate cell to the
/// placed modules (the paper's "required length of all connections").
fn wire_cost(
    network: &Network,
    placement: &Placement,
    placed: &[ModuleId],
    m: ModuleId,
    cell: (i32, i32),
    cell_size: (i32, i32),
) -> i64 {
    let c = cell_center(cell, cell_size);
    placed
        .iter()
        .map(|&p| {
            let count = network.connection_count(m, p) as i64;
            if count == 0 {
                return 0;
            }
            let pc = placement.module_rect(network, p).center();
            count * i64::from(c.manhattan(pc))
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn star(n: usize) -> Network {
        let mut lib = Library::new();
        let hub_t = lib
            .add_template({
                let mut t = Template::new("hub", (4, 2 * n as i32 + 2)).unwrap();
                for i in 0..n {
                    t.add_terminal(format!("p{i}"), (4, 2 * i as i32 + 1), TermType::Out)
                        .unwrap();
                }
                t
            })
            .unwrap();
        let leaf_t = lib
            .add_template(
                Template::new("leaf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let hub = b.add_instance("hub", hub_t).unwrap();
        for i in 0..n {
            let leaf = b.add_instance(format!("leaf{i}"), leaf_t).unwrap();
            let net = format!("n{i}");
            b.connect_pin(&net, hub, &format!("p{i}")).unwrap();
            b.connect_pin(&net, leaf, "a").unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn star_places_hub_first_and_leaves_around_it() {
        let net = star(6);
        let placement = place(&net, 1);
        assert!(placement.is_complete());
        assert!(placement.overlap_violations(&net).is_empty());
        let hub = net.module_by_name("hub").unwrap();
        let hub_c = placement.module_rect(&net, hub).center();
        // Every leaf within two cells of the hub.
        for m in net.modules() {
            if m == hub {
                continue;
            }
            let c = placement.module_rect(&net, m).center();
            assert!(hub_c.manhattan(c) < 80, "leaf at {c} too far from hub {hub_c}");
        }
    }

    #[test]
    fn empty_network() {
        let lib = Library::new();
        let net = NetworkBuilder::new(lib).finish().unwrap();
        let placement = place(&net, 0);
        assert!(placement.is_complete());
    }

    #[test]
    fn more_spacing_spreads_placement() {
        let net = star(4);
        let tight = place(&net, 0);
        let roomy = place(&net, 6);
        let a = tight.bounding_box(&net).unwrap();
        let b = roomy.bounding_box(&net).unwrap();
        assert!(b.width() > a.width() || b.height() > a.height());
    }

    #[test]
    fn deterministic() {
        let net = star(5);
        let a = place(&net, 1);
        let b = place(&net, 1);
        for m in net.modules() {
            assert_eq!(a.module(m), b.module(m));
        }
    }
}
