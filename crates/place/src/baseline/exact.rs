//! Exact solution of the §3.3 assignment formulation, for tiny
//! instances.
//!
//! §3.3 formalises placement as assigning modules to locations,
//! minimising total two-point wire length, and notes the problem "is
//! already likely to be NP-complete — in practice, only an approximate
//! solution can be found". This module solves the formulation exactly
//! by branch-and-bound over slot permutations, practical up to ~9
//! modules, so the heuristics' optimality gap can be *measured* instead
//! of assumed.
//!
//! The model matches the paper's: locations are the cells of a given
//! grid, each holding at most one module, and the objective is the sum
//! over two-point connections of the Manhattan distance between the
//! assigned cell centres, weighted by the number of connecting nets.

use netart_geom::{Point, Rotation};
use netart_netlist::{ModuleId, Network};

use netart_diagram::Placement;

/// An exact assignment: which slot (index into the slot list) each
/// module got, plus the optimal cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactAssignment {
    /// `slot_of[i]` is the slot index of the i-th module (in
    /// [`Network::modules`] order).
    pub slot_of: Vec<usize>,
    /// The minimal total weighted Manhattan wire length.
    pub cost: u64,
}

/// Hard limit: beyond this the search space explodes (the paper's
/// point).
pub const MAX_MODULES: usize = 10;

/// Pairwise connection weights (number of nets joining each module
/// pair).
fn weights(network: &Network) -> Vec<Vec<u64>> {
    let n = network.module_count();
    let mut w = vec![vec![0u64; n]; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in (i + 1)..n {
            let c = network.connection_count(
                ModuleId::from_index(i),
                ModuleId::from_index(j),
            ) as u64;
            w[i][j] = c;
            w[j][i] = c;
        }
    }
    w
}

/// Finds the optimal assignment of all modules to `slots` (cell centre
/// points), minimising the §3.3 objective.
///
/// Returns `None` when there are more modules than slots.
///
/// # Panics
///
/// Panics when the network has more than [`MAX_MODULES`] modules — the
/// search is factorial and anything larger is the heuristics' job.
pub fn solve(network: &Network, slots: &[Point]) -> Option<ExactAssignment> {
    let n = network.module_count();
    assert!(
        n <= MAX_MODULES,
        "exact placement is factorial; {n} modules exceed the {MAX_MODULES}-module limit"
    );
    if n > slots.len() {
        return None;
    }
    if n == 0 {
        return Some(ExactAssignment { slot_of: Vec::new(), cost: 0 });
    }
    let w = weights(network);
    let dist = |a: usize, b: usize| u64::from(slots[a].manhattan(slots[b]));

    let mut best_cost = u64::MAX;
    let mut best: Vec<usize> = Vec::new();
    let mut assignment: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; slots.len()];

    // Branch and bound over modules in order; partial cost only ever
    // grows, so prune when it already exceeds the incumbent.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        module: usize,
        n: usize,
        w: &[Vec<u64>],
        dist: &impl Fn(usize, usize) -> u64,
        slots_len: usize,
        assignment: &mut Vec<usize>,
        used: &mut [bool],
        partial: u64,
        best_cost: &mut u64,
        best: &mut Vec<usize>,
    ) {
        if module == n {
            if partial < *best_cost {
                *best_cost = partial;
                *best = assignment.clone();
            }
            return;
        }
        for slot in 0..slots_len {
            if used[slot] {
                continue;
            }
            let mut added = 0u64;
            for (placed, &s) in assignment.iter().enumerate() {
                let weight = w[module][placed];
                if weight > 0 {
                    added += weight * dist(slot, s);
                }
            }
            let cost = partial + added;
            if cost >= *best_cost {
                continue;
            }
            used[slot] = true;
            assignment.push(slot);
            recurse(module + 1, n, w, dist, slots_len, assignment, used, cost, best_cost, best);
            assignment.pop();
            used[slot] = false;
        }
    }
    recurse(
        0,
        n,
        &w,
        &dist,
        slots.len(),
        &mut assignment,
        &mut used,
        0,
        &mut best_cost,
        &mut best,
    );

    Some(ExactAssignment { slot_of: best, cost: best_cost })
}

/// The §3.3 objective of an arbitrary placement against the same slot
/// model: weighted Manhattan distance between module centres.
pub fn placement_cost(network: &Network, placement: &Placement) -> u64 {
    let n = network.module_count();
    let w = weights(network);
    let centers: Vec<Point> = network
        .modules()
        .map(|m| placement.module_rect(network, m).center())
        .collect();
    let mut total = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            if w[i][j] > 0 {
                total += w[i][j] * u64::from(centers[i].manhattan(centers[j]));
            }
        }
    }
    total
}

/// Materialises an exact assignment as a placement, one module per
/// slot, anchored at the slot centre.
pub fn realize(network: &Network, slots: &[Point], assignment: &ExactAssignment) -> Placement {
    let mut p = Placement::new(network);
    for (i, m) in network.modules().enumerate() {
        let c = slots[assignment.slot_of[i]];
        let (w, h) = network.template_of(m).size();
        p.place_module(m, c - Point::new(w / 2, h / 2), Rotation::R0);
    }
    p
}

/// A rectangular grid of slot centres with the given pitch, big enough
/// for `count` slots.
pub fn grid_slots(count: usize, pitch: i32) -> Vec<Point> {
    let cols = (count as f64).sqrt().ceil() as usize;
    (0..count)
        .map(|i| {
            Point::new(
                (i % cols) as i32 * pitch + pitch / 2,
                (i / cols) as i32 * pitch + pitch / 2,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn chain(n: usize) -> Network {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("buf", (2, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (2, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..n)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        for w in ms.windows(2) {
            let name = format!("n{}", w[0].index());
            b.connect_pin(&name, w[0], "y").unwrap();
            b.connect_pin(&name, w[1], "a").unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn chain_on_a_row_is_optimal_in_order() {
        let net = chain(5);
        // Five slots on a row: optimal keeps chain order (any direction).
        let slots: Vec<Point> = (0..5).map(|i| Point::new(10 * i, 0)).collect();
        let sol = solve(&net, &slots).unwrap();
        // Cost: 4 links x 10.
        assert_eq!(sol.cost, 40);
        let positions: Vec<usize> = sol.slot_of.clone();
        let mut diffs: Vec<i32> = positions
            .windows(2)
            .map(|w| slots[w[1]].x - slots[w[0]].x)
            .collect();
        diffs.dedup();
        assert_eq!(diffs.len(), 1, "monotone order: {positions:?}");
    }

    #[test]
    fn exact_beats_or_matches_any_shuffle() {
        let net = chain(4);
        let slots = grid_slots(4, 8);
        let sol = solve(&net, &slots).unwrap();
        // Compare against every permutation by brute force.
        let idx = [0usize, 1, 2, 3];
        let mut best = u64::MAX;
        permute(&idx, &mut Vec::new(), &mut |perm| {
            let mut cost = 0;
            for w in 0..3usize {
                cost += u64::from(slots[perm[w]].manhattan(slots[perm[w + 1]]));
            }
            best = best.min(cost);
        });
        assert_eq!(sol.cost, best);
    }

    fn permute(rest: &[usize], acc: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if rest.is_empty() {
            f(acc);
            return;
        }
        for (i, &x) in rest.iter().enumerate() {
            let mut r = rest.to_vec();
            r.remove(i);
            acc.push(x);
            permute(&r, acc, f);
            acc.pop();
        }
    }

    #[test]
    fn too_few_slots_is_none() {
        let net = chain(4);
        assert!(solve(&net, &grid_slots(3, 8)).is_none());
    }

    #[test]
    #[should_panic(expected = "factorial")]
    fn too_many_modules_panics() {
        let net = chain(11);
        let _ = solve(&net, &grid_slots(11, 8));
    }

    #[test]
    fn realize_produces_legal_placement() {
        let net = chain(4);
        let slots = grid_slots(4, 10);
        let sol = solve(&net, &slots).unwrap();
        let p = realize(&net, &slots, &sol);
        assert!(p.overlap_violations(&net).is_empty());
        // The realised placement evaluates to the reported cost.
        assert_eq!(placement_cost(&net, &p), sol.cost);
    }

    #[test]
    fn optimum_lower_bounds_every_assignment() {
        // The paper's point quantified: on the same slot model, no
        // assignment beats the exact optimum — and naive ones are
        // measurably worse.
        let net = chain(6);
        let slots = grid_slots(6, 10);
        let sol = solve(&net, &slots).unwrap();
        // Identity, reversed and an interleaved shuffle.
        for order in [
            vec![0usize, 1, 2, 3, 4, 5],
            vec![5, 4, 3, 2, 1, 0],
            vec![0, 3, 1, 4, 2, 5],
        ] {
            let candidate = ExactAssignment { slot_of: order, cost: 0 };
            let p = realize(&net, &slots, &candidate);
            assert!(placement_cost(&net, &p) >= sol.cost);
        }
        // The interleaved shuffle is strictly worse.
        let shuffled = ExactAssignment { slot_of: vec![0, 3, 1, 4, 2, 5], cost: 0 };
        let p = realize(&net, &slots, &shuffled);
        assert!(placement_cost(&net, &p) > sol.cost);
    }
}
