//! Iterative improvement by pairwise exchange (§4.2.1).
//!
//! The paper dismisses the whole class: "they deal with local changes
//! such as the pair wise exchange of modules. Typically, there are a
//! large number of such trials, so this results in very greedy
//! algorithms … They easily get stuck in a local minimum. Their
//! greediness is unacceptable for generating diagrams automatically."
//!
//! This module implements the classic scheme anyway so the claim can be
//! measured: repeatedly try swapping the positions (and rotations) of
//! equal-footprint module pairs, keep a swap when it lowers the total
//! estimated wire length, stop at a fixed-point or a round limit. The
//! ablation bench quantifies both halves of the paper's judgement — the
//! wire-length gain is real but modest, and the cost per improvement is
//! orders of magnitude above constructive placement.

use netart_netlist::{ModuleId, Network, Pin};

use netart_diagram::Placement;

/// Total estimated wire length: the half-perimeter of each net's pin
/// bounding box (the standard placement estimate; the paper's "required
/// length of all connections").
pub fn estimated_wire_length(network: &Network, placement: &Placement) -> u64 {
    let mut total = 0u64;
    for n in network.nets() {
        let mut min_x = i32::MAX;
        let mut max_x = i32::MIN;
        let mut min_y = i32::MAX;
        let mut max_y = i32::MIN;
        let mut any = false;
        for &pin in network.net(n).pins() {
            let placed = match pin {
                Pin::Sub { module, .. } => placement.module(module).is_some(),
                Pin::System(st) => placement.system_term(st).is_some(),
            };
            if !placed {
                continue;
            }
            let p = placement.pin_position(network, pin);
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
            any = true;
        }
        if any {
            total += (max_x - min_x) as u64 + (max_y - min_y) as u64;
        }
    }
    total
}

/// Outcome of an improvement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeReport {
    /// Swaps that were kept.
    pub accepted: usize,
    /// Swaps that were tried.
    pub tried: usize,
    /// Estimated wire length before.
    pub before: u64,
    /// Estimated wire length after.
    pub after: u64,
}

/// Improves a placement in place by greedy pairwise exchange.
///
/// Only modules with identical *placed* footprints are exchanged (the
/// swap then never creates an overlap). Runs until a full round accepts
/// nothing or `max_rounds` is hit. Returns the acceptance statistics.
pub fn improve(network: &Network, placement: &mut Placement, max_rounds: usize) -> ExchangeReport {
    let modules: Vec<ModuleId> = network
        .modules()
        .filter(|&m| placement.module(m).is_some())
        .collect();
    let before = estimated_wire_length(network, placement);
    let mut current = before;
    let mut accepted = 0;
    let mut tried = 0;

    for _ in 0..max_rounds {
        let mut improved = false;
        for i in 0..modules.len() {
            for j in (i + 1)..modules.len() {
                let (a, b) = (modules[i], modules[j]);
                let pa = placement.module(a).expect("placed");
                let pb = placement.module(b).expect("placed");
                let size_a = pa.rotation.apply_size(network.template_of(a).size());
                let size_b = pb.rotation.apply_size(network.template_of(b).size());
                if size_a != size_b {
                    continue;
                }
                tried += 1;
                placement.place_module(a, pb.position, pb.rotation);
                placement.place_module(b, pa.position, pa.rotation);
                let cost = estimated_wire_length(network, placement);
                if cost < current {
                    current = cost;
                    accepted += 1;
                    improved = true;
                } else {
                    // Revert.
                    placement.place_module(a, pa.position, pa.rotation);
                    placement.place_module(b, pb.position, pb.rotation);
                }
            }
        }
        if !improved {
            break;
        }
    }
    ExchangeReport {
        accepted,
        tried,
        before,
        after: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_geom::{Point, Rotation};
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    /// A chain whose initial placement deliberately shuffles the order:
    /// pairwise exchange can unshuffle it.
    fn shuffled_chain() -> (Network, Placement) {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("buf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..4)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        for w in ms.windows(2) {
            let name = format!("n{}", w[0].index());
            b.connect_pin(&name, w[0], "y").unwrap();
            b.connect_pin(&name, w[1], "a").unwrap();
        }
        let network = b.finish().unwrap();
        let mut p = Placement::new(&network);
        // Chain order u0-u1-u2-u3 placed as u0, u2, u1, u3.
        let slots = [0, 2, 1, 3];
        for (i, &m) in ms.iter().enumerate() {
            p.place_module(m, Point::new(8 * slots[i], 0), Rotation::R0);
        }
        (network, p)
    }

    #[test]
    fn unshuffles_a_chain() {
        let (network, mut p) = shuffled_chain();
        let report = improve(&network, &mut p, 10);
        assert!(report.accepted >= 1, "{report:?}");
        assert!(report.after < report.before, "{report:?}");
        // The optimum for the chain: neighbours adjacent.
        let ms: Vec<ModuleId> = network.modules().collect();
        let xs: Vec<i32> = ms
            .iter()
            .map(|&m| p.module(m).unwrap().position.x)
            .collect();
        assert!(xs.windows(2).all(|w| w[1] > w[0]), "order restored: {xs:?}");
        assert!(p.overlap_violations(&network).is_empty());
    }

    #[test]
    fn fixed_point_accepts_nothing() {
        let (network, mut p) = shuffled_chain();
        improve(&network, &mut p, 10);
        let again = improve(&network, &mut p, 10);
        assert_eq!(again.accepted, 0);
        assert_eq!(again.before, again.after);
    }

    #[test]
    fn zero_rounds_is_identity() {
        let (network, mut p) = shuffled_chain();
        let before: Vec<_> = network.modules().map(|m| p.module(m)).collect();
        let report = improve(&network, &mut p, 0);
        assert_eq!(report.accepted, 0);
        let after: Vec<_> = network.modules().map(|m| p.module(m)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn wire_length_estimate_counts_hpwl() {
        let (network, p) = shuffled_chain();
        // Pins: u0.y=(4,1) u2.a=... compute one net directly.
        let w = estimated_wire_length(&network, &p);
        assert!(w > 0);
        // Moving everything to one column reduces x-extent to zero:
        let mut stacked = Placement::new(&network);
        for (i, m) in network.modules().enumerate() {
            stacked.place_module(m, Point::new(0, 4 * i as i32), Rotation::R0);
        }
        let w2 = estimated_wire_length(&network, &stacked);
        assert!(w2 < w, "{w2} vs {w}");
    }
}
