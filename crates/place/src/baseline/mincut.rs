//! Min-cut bipartitioning placement (§4.2.3).
//!
//! Lauther-style top-down placement: recursively bisect the module set,
//! minimising the number of nets cut while keeping the module areas of
//! the two halves balanced, and split the placement region
//! proportionally. Alternating cut directions yield a slicing
//! structure. A simple move-based improvement pass reduces the cut at
//! every level.

use netart_geom::{Point, Rect, Rotation};
use netart_netlist::{ModuleId, Network};

use netart_diagram::Placement;

use crate::terminal_place::place_system_terminals;

/// Runs min-cut placement over all modules.
///
/// `spacing` reserves empty tracks around each module within its
/// region.
pub fn place(network: &Network, spacing: i32) -> Placement {
    let mut placement = Placement::new(network);
    let modules: Vec<ModuleId> = network.modules().collect();
    if modules.is_empty() {
        place_system_terminals(network, &mut placement);
        return placement;
    }

    // Region sized to the total footprint with slack.
    let total_area: i64 = modules.iter().map(|&m| area(network, m, spacing)).sum();
    let side = ((total_area as f64).sqrt() * 1.6).ceil() as i32 + 2;
    let region = Rect::new(Point::ORIGIN, side, side);
    bisect(network, &mut placement, modules, region, true, spacing);

    place_system_terminals(network, &mut placement);
    placement
}

fn area(network: &Network, m: ModuleId, spacing: i32) -> i64 {
    let (w, h) = network.template_of(m).size();
    i64::from(w + 2 + spacing) * i64::from(h + 2 + spacing)
}

/// Number of nets with modules on both sides (the cut count).
fn cut_count(network: &Network, a: &[ModuleId], b: &[ModuleId]) -> usize {
    network
        .nets()
        .filter(|&n| {
            let ms = network.net_modules(n);
            ms.iter().any(|m| a.contains(m)) && ms.iter().any(|m| b.contains(m))
        })
        .count()
}

fn bisect(
    network: &Network,
    placement: &mut Placement,
    mut modules: Vec<ModuleId>,
    region: Rect,
    vertical_cut: bool,
    spacing: i32,
) {
    if modules.len() == 1 {
        let m = modules[0];
        let (w, h) = network.template_of(m).size();
        let c = region.center();
        // Clamp inside the region so crowded leaves never spill out.
        let x = (c.x - w / 2)
            .clamp(region.lower_left().x, (region.upper_right().x - w).max(region.lower_left().x));
        let y = (c.y - h / 2)
            .clamp(region.lower_left().y, (region.upper_right().y - h).max(region.lower_left().y));
        placement.place_module(m, Point::new(x, y), Rotation::R0);
        return;
    }

    // Initial balanced split by id order.
    modules.sort_unstable();
    let mid = modules.len() / 2;
    let mut a: Vec<ModuleId> = modules[..mid].to_vec();
    let mut b: Vec<ModuleId> = modules[mid..].to_vec();

    // Improvement: greedy single-module moves and swaps while the cut
    // decreases and balance stays within one module of even.
    let mut improved = true;
    while improved {
        improved = false;
        let current = cut_count(network, &a, &b);
        // Try swaps (keeps balance exactly).
        'outer: for i in 0..a.len() {
            for j in 0..b.len() {
                std::mem::swap(&mut a[i], &mut b[j]);
                if cut_count(network, &a, &b) < current {
                    improved = true;
                    break 'outer;
                }
                std::mem::swap(&mut a[i], &mut b[j]);
            }
        }
    }

    // Split the region proportional to the areas of the halves.
    let area_a: i64 = a.iter().map(|&m| area(network, m, spacing)).sum();
    let area_b: i64 = b.iter().map(|&m| area(network, m, spacing)).sum();
    let frac = area_a as f64 / (area_a + area_b).max(1) as f64;
    let ll = region.lower_left();
    let (ra, rb) = if vertical_cut {
        let w_a = ((region.width() as f64) * frac).round() as i32;
        let w_a = w_a.clamp(1, (region.width() - 1).max(1));
        (
            Rect::new(ll, w_a, region.height()),
            Rect::new(Point::new(ll.x + w_a, ll.y), region.width() - w_a, region.height()),
        )
    } else {
        let h_a = ((region.height() as f64) * frac).round() as i32;
        let h_a = h_a.clamp(1, (region.height() - 1).max(1));
        (
            Rect::new(ll, region.width(), h_a),
            Rect::new(Point::new(ll.x, ll.y + h_a), region.width(), region.height() - h_a),
        )
    };
    bisect(network, placement, a, ra, !vertical_cut, spacing);
    bisect(network, placement, b, rb, !vertical_cut, spacing);
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    /// Two cliques of 4 connected by one net: min-cut should keep each
    /// clique on one side.
    fn cliques() -> Network {
        let mut lib = Library::new();
        let t = lib
            .add_template({
                let mut t = Template::new("m", (2, 8)).unwrap();
                for i in 0..4 {
                    t.add_terminal(format!("i{i}"), (0, 2 * i + 1), TermType::In)
                        .unwrap();
                    t.add_terminal(format!("o{i}"), (2, 2 * i + 1), TermType::Out)
                        .unwrap();
                }
                t
            })
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..8)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        let mut net_no = 0;
        for base in [0, 4] {
            for i in 0..4usize {
                for j in (i + 1)..4 {
                    let name = format!("n{net_no}");
                    net_no += 1;
                    b.connect_pin(&name, ms[base + i], &format!("o{j}")).unwrap();
                    b.connect_pin(&name, ms[base + j], &format!("i{i}")).unwrap();
                }
            }
        }
        b.connect_pin("bridge", ms[0], "o0").unwrap();
        b.connect_pin("bridge", ms[4], "i3").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn placement_is_complete_and_disjoint() {
        let net = cliques();
        let placement = place(&net, 1);
        assert!(placement.is_complete());
        assert!(placement.overlap_violations(&net).is_empty());
    }

    #[test]
    fn cliques_end_up_spatially_separated() {
        let net = cliques();
        let placement = place(&net, 1);
        let center = |ms: &[usize]| {
            let pts: Vec<Point> = ms
                .iter()
                .map(|&i| placement.module_rect(&net, ModuleId::from_index(i)).center())
                .collect();
            let n = pts.len() as i64;
            Point::new(
                (pts.iter().map(|p| i64::from(p.x)).sum::<i64>() / n) as i32,
                (pts.iter().map(|p| i64::from(p.y)).sum::<i64>() / n) as i32,
            )
        };
        let c0 = center(&[0, 1, 2, 3]);
        let c1 = center(&[4, 5, 6, 7]);
        // The cliques' centroids are clearly apart.
        assert!(c0.manhattan(c1) >= 8, "{c0} vs {c1}");
    }

    #[test]
    fn first_cut_separates_cliques() {
        let net = cliques();
        let a: Vec<ModuleId> = (0..4).map(ModuleId::from_index).collect();
        let b: Vec<ModuleId> = (4..8).map(ModuleId::from_index).collect();
        assert_eq!(cut_count(&net, &a, &b), 1); // only the bridge
        let mixed_a: Vec<ModuleId> = [0, 1, 4, 5].map(ModuleId::from_index).to_vec();
        let mixed_b: Vec<ModuleId> = [2, 3, 6, 7].map(ModuleId::from_index).to_vec();
        assert!(cut_count(&net, &mixed_a, &mixed_b) > 1);
    }

    #[test]
    fn empty_network() {
        let lib = Library::new();
        let net = NetworkBuilder::new(lib).finish().unwrap();
        assert!(place(&net, 0).is_complete());
    }

    #[test]
    fn single_module() {
        let mut lib = Library::new();
        let t = lib.add_template(Template::new("m", (4, 4)).unwrap()).unwrap();
        let mut b = NetworkBuilder::new(lib);
        b.add_instance("u", t).unwrap();
        let net = b.finish().unwrap();
        let placement = place(&net, 0);
        assert!(placement.is_complete());
    }
}
