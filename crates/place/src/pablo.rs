//! The PABLO placement facade (§4.6, Appendix E).

use netart_geom::{Point, Rect, Rotation};
use netart_netlist::{ModuleId, Network, NetId, Pin};
use tracing::{debug, span, Level};

use netart_diagram::{Placement, PlacementStructure};

use crate::cluster::{place_clusters, Cluster};
use crate::module_place::layout_box;
use crate::terminal_place::place_system_terminals;
use crate::{form_boxes, partition, PlaceConfig};

/// One partition after box placement: module geometry in
/// partition-local coordinates plus the data needed to place the
/// partition itself.
struct PartitionLayout {
    modules: Vec<(ModuleId, Point, Rotation)>,
    size: (i32, i32),
    terms: Vec<(NetId, Point)>,
    boxes: Vec<Vec<ModuleId>>,
}

/// The placement phase of the generator: the `pablo` program of
/// Appendix E.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Default)]
pub struct Pablo {
    config: PlaceConfig,
}

impl Pablo {
    /// A placer with the given options.
    pub fn new(config: PlaceConfig) -> Self {
        Pablo { config }
    }

    /// The options in use.
    pub fn config(&self) -> &PlaceConfig {
        &self.config
    }

    /// Places all modules and system terminals of a network.
    pub fn place(&self, network: &Network) -> Placement {
        self.place_with_preplaced(network, Placement::new(network))
    }

    /// Places the modules and terminals *not yet placed* in `preplaced`
    /// around the preplaced part, which is kept untouched and forms a
    /// partition of its own (the `-g` option of Appendix E).
    pub fn place_with_preplaced(&self, network: &Network, preplaced: Placement) -> Placement {
        let cfg = &self.config;
        let fixed: Vec<ModuleId> = network
            .modules()
            .filter(|&m| preplaced.module(m).is_some())
            .collect();
        let free: Vec<ModuleId> = network
            .modules()
            .filter(|&m| preplaced.module(m).is_none())
            .collect();

        // 1. Partition the free modules; 2. form boxes; 3.+4. lay out
        // modules in boxes and boxes in partitions.
        let parts = {
            let s = span!(Level::DEBUG, "pablo.partition", free = free.len() as u64);
            let _g = s.enter();
            netart_fault::fire_hard(netart_fault::sites::PLACE_PARTITION);
            partition(network, free.iter().copied(), cfg)
        };
        debug!(
            "partitioned",
            free = free.len() as u64,
            fixed = fixed.len() as u64,
            partitions = parts.partitions.len() as u64,
        );
        let mut layouts: Vec<PartitionLayout> = {
            let s = span!(
                Level::DEBUG,
                "pablo.module_place",
                partitions = parts.partitions.len() as u64,
            );
            let _g = s.enter();
            netart_fault::fire_hard(netart_fault::sites::PLACE_MODULE);
            parts
                .partitions
                .iter()
                .map(|p| self.layout_partition(network, p))
                .collect()
        };

        // The preplaced part, if any, becomes an anchored partition.
        let mut structure_boxes: Vec<Vec<Vec<ModuleId>>> = Vec::new();
        let mut anchored = None;
        if !fixed.is_empty() {
            let hull = fixed
                .iter()
                .map(|&m| preplaced.module_rect(network, m))
                .reduce(|a, b| a.hull(&b))
                .expect("non-empty fixed set");
            let origin = hull.lower_left();
            let modules = fixed
                .iter()
                .map(|&m| {
                    let placed = preplaced.module(m).expect("fixed is placed");
                    (m, placed.position - origin, placed.rotation)
                })
                .collect();
            let layout = PartitionLayout {
                terms: partition_terms(network, &fixed, &{
                    // Build a lookup of local positions for the fixed part.
                    fixed
                        .iter()
                        .map(|&m| {
                            let placed = preplaced.module(m).expect("fixed is placed");
                            (m, placed.position - origin, placed.rotation)
                        })
                        .collect::<Vec<_>>()
                }),
                modules,
                size: (hull.width(), hull.height()),
                boxes: vec![fixed.clone()],
            };
            anchored = Some((layouts.len(), origin));
            layouts.push(layout);
        }

        let mut placement = preplaced;
        if !layouts.is_empty() {
            // 5. Place the partitions.
            let s = span!(Level::DEBUG, "pablo.cluster", clusters = layouts.len() as u64);
            let _g = s.enter();
            netart_fault::fire_hard(netart_fault::sites::PLACE_CLUSTER);
            let clusters: Vec<Cluster> = layouts
                .iter()
                .map(|l| Cluster {
                    size: l.size,
                    terms: l.terms.clone(),
                    weight: l.modules.len(),
                })
                .collect();
            let positions = place_clusters(&clusters, cfg.part_spacing, anchored);

            for (layout, pos) in layouts.iter().zip(&positions) {
                for &(m, local, rot) in &layout.modules {
                    placement.place_module(m, *pos + local, rot);
                }
                structure_boxes.push(layout.boxes.clone());
            }
        }
        placement.set_structure(PlacementStructure {
            partitions: structure_boxes,
        });

        // 6. System terminals around the bounding box.
        {
            let s = span!(Level::DEBUG, "pablo.terminal_place");
            let _g = s.enter();
            netart_fault::fire_hard(netart_fault::sites::PLACE_TERMINAL);
            place_system_terminals(network, &mut placement);
        }
        placement
    }

    /// Boxes of one partition laid out and placed relative to each
    /// other; the result is normalised to a (0, 0) lower-left corner.
    fn layout_partition(&self, network: &Network, part: &[ModuleId]) -> PartitionLayout {
        let cfg = &self.config;
        let boxes = form_boxes(network, part, cfg);
        let box_layouts: Vec<_> = boxes
            .iter()
            .map(|b| layout_box(network, b, cfg))
            .collect();

        let clusters: Vec<Cluster> = box_layouts
            .iter()
            .map(|l| Cluster {
                size: l.size(),
                weight: l.entries().len(),
                terms: l
                    .entries()
                    .iter()
                    .flat_map(|&(m, _, _)| {
                        let tpl = network.template_of(m);
                        (0..tpl.terminal_count()).filter_map(move |t| {
                            network
                                .pin_net(Pin::Sub { module: m, term: t })
                                .map(|n| (n, l.terminal_pos(network, m, t)))
                        })
                    })
                    .collect(),
            })
            .collect();
        let positions = place_clusters(&clusters, cfg.box_spacing, None);

        // Normalise to a (0,0) lower-left corner.
        let hull = positions
            .iter()
            .zip(&box_layouts)
            .map(|(&p, l)| Rect::new(p, l.size().0, l.size().1))
            .reduce(|a, b| a.hull(&b))
            .expect("partition has at least one box");
        let delta = Point::ORIGIN - hull.lower_left();

        let mut modules = Vec::new();
        for (layout, &box_pos) in box_layouts.iter().zip(&positions) {
            for &(m, local, rot) in layout.entries() {
                modules.push((m, box_pos + delta + local, rot));
            }
        }
        let terms = partition_terms(network, part, &modules);
        PartitionLayout {
            modules,
            size: (hull.width(), hull.height()),
            terms,
            boxes,
        }
    }
}

/// Connected terminal points of a module set, given the modules' local
/// geometry.
fn partition_terms(
    network: &Network,
    part: &[ModuleId],
    modules: &[(ModuleId, Point, Rotation)],
) -> Vec<(NetId, Point)> {
    let mut terms = Vec::new();
    for &m in part {
        let &(_, pos, rot) = modules
            .iter()
            .find(|(x, _, _)| *x == m)
            .expect("module laid out");
        let tpl = network.template_of(m);
        for t in 0..tpl.terminal_count() {
            if let Some(n) = network.pin_net(Pin::Sub { module: m, term: t }) {
                let local = rot.apply_point(tpl.terminals()[t].offset(), tpl.size());
                terms.push((n, pos + local));
            }
        }
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn chain_network(n: usize) -> Network {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("buf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..n)
            .map(|i| b.add_instance(format!("u{i}"), t).unwrap())
            .collect();
        let input = b.add_system_terminal("in", TermType::In).unwrap();
        let output = b.add_system_terminal("out", TermType::Out).unwrap();
        b.connect("nin", input).unwrap();
        b.connect_pin("nin", ms[0], "a").unwrap();
        for w in ms.windows(2) {
            let name = format!("n_{}", w[0]);
            b.connect_pin(&name, w[0], "y").unwrap();
            b.connect_pin(&name, w[1], "a").unwrap();
        }
        b.connect("nout", output).unwrap();
        b.connect_pin("nout", ms[n - 1], "y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn complete_and_overlap_free_for_all_presets() {
        let net = chain_network(6);
        for cfg in [
            PlaceConfig::default(),
            PlaceConfig::clusters(),
            PlaceConfig::strings(),
            PlaceConfig::strings().with_module_spacing(2).with_box_spacing(1),
        ] {
            let placement = Pablo::new(cfg.clone()).place(&net);
            assert!(placement.is_complete(), "{cfg:?}");
            assert_eq!(placement.overlap_violations(&net), Vec::<String>::new(), "{cfg:?}");
        }
    }

    #[test]
    fn strings_preset_forms_one_box_chain() {
        let net = chain_network(5);
        let cfg = PlaceConfig::default()
            .with_max_part_size(7)
            .with_max_box_size(5);
        let placement = Pablo::new(cfg).place(&net);
        let s = placement.structure().unwrap();
        assert_eq!(s.partition_count(), 1);
        assert_eq!(s.box_count(), 1);
        assert_eq!(s.longest_string(), 5);
        // Signal flow left to right along the string.
        let string = &s.partitions[0][0];
        for w in string.windows(2) {
            let a = placement.module(w[0]).unwrap().position;
            let b = placement.module(w[1]).unwrap().position;
            assert!(a.x < b.x, "left-to-right violated: {a} !< {b}");
        }
    }

    #[test]
    fn default_preset_gives_singleton_partitions() {
        let net = chain_network(5);
        let placement = Pablo::new(PlaceConfig::default()).place(&net);
        let s = placement.structure().unwrap();
        assert_eq!(s.partition_count(), 5);
        assert_eq!(s.longest_string(), 1);
    }

    #[test]
    fn system_terminals_follow_signal_flow() {
        let net = chain_network(5);
        let placement = Pablo::new(PlaceConfig::strings()).place(&net);
        let input = placement
            .system_term(net.system_term_by_name("in").unwrap())
            .unwrap();
        let output = placement
            .system_term(net.system_term_by_name("out").unwrap())
            .unwrap();
        assert!(input.x < output.x, "in {input} vs out {output}");
    }

    #[test]
    fn preplaced_part_is_untouched() {
        let net = chain_network(4);
        let ms: Vec<ModuleId> = net.modules().collect();
        let mut pre = Placement::new(&net);
        pre.place_module(ms[0], Point::new(50, 50), Rotation::R0);
        pre.place_module(ms[1], Point::new(60, 50), Rotation::R90);
        let placement = Pablo::new(PlaceConfig::strings()).place_with_preplaced(&net, pre);
        assert!(placement.is_complete());
        assert_eq!(placement.module(ms[0]).unwrap().position, Point::new(50, 50));
        assert_eq!(placement.module(ms[1]).unwrap().position, Point::new(60, 50));
        assert_eq!(placement.module(ms[1]).unwrap().rotation, Rotation::R90);
        assert!(placement.overlap_violations(&net).is_empty());
        // The free modules land near the preplaced cluster.
        for &m in &ms[2..] {
            let p = placement.module(m).unwrap().position;
            assert!(p.manhattan(Point::new(55, 50)) < 120, "{p} too far");
        }
    }

    #[test]
    fn all_modules_preplaced_only_places_terminals() {
        let net = chain_network(3);
        let ms: Vec<ModuleId> = net.modules().collect();
        let mut pre = Placement::new(&net);
        for (i, &m) in ms.iter().enumerate() {
            pre.place_module(m, Point::new(10 * i as i32, 0), Rotation::R0);
        }
        let placement = Pablo::new(PlaceConfig::default()).place_with_preplaced(&net, pre);
        assert!(placement.is_complete());
        for (i, &m) in ms.iter().enumerate() {
            assert_eq!(placement.module(m).unwrap().position, Point::new(10 * i as i32, 0));
        }
    }

    #[test]
    fn empty_network_places_nothing() {
        let lib = Library::new();
        let b = NetworkBuilder::new(lib);
        let net = b.finish().unwrap();
        let placement = Pablo::new(PlaceConfig::default()).place(&net);
        assert!(placement.is_complete());
        assert!(placement.bounding_box(&net).is_none());
    }
}
