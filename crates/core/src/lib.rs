//! `netart` — automatic schematic diagram generation from netlists.
//!
//! A Rust reproduction of **Koster & Stok, "From Network to Artwork:
//! Automatic Schematic Diagram Generation"** (EUT Report 89-E-219,
//! Eindhoven University of Technology, 1989): given a plain netlist,
//! produce a readable schematic diagram — module placement plus
//! rectilinear wire routing — following the hand-drawing guidelines the
//! paper distils (functional clustering, left-to-right signal flow,
//! inputs left / outputs right, few bends and crossovers).
//!
//! The pipeline mirrors the paper's two programs:
//!
//! * **PABLO** (placement, §4): seeded partitioning into functional
//!   parts, longest-path strings of driver→consumer modules, module
//!   rotation for bend-minimal connections, centre-of-gravity box and
//!   partition packing, system terminals on the bounding ring.
//! * **EUREKA** (routing, §5): a line-expansion router that guarantees
//!   a connection whenever one exists, minimises bends first, then
//!   crossovers, then length, with claimpoints (§5.7) protecting
//!   terminal exits.
//!
//! [`Generator`] glues the two together; the individual phases live in
//! [`netart_place`](../netart_place/index.html) and
//! [`netart_route`](../netart_route/index.html), the data model in
//! [`netart_netlist`](../netart_netlist/index.html) and
//! [`netart_diagram`](../netart_diagram/index.html) (all re-exported
//! here under [`place`], [`route`], [`netlist`], [`diagram`],
//! [`geom`]).
//!
//! # Quickstart
//!
//! ```
//! use netart::{Generator, netlist::{Library, NetworkBuilder, Template, TermType}};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-gate network...
//! let mut lib = Library::new();
//! let inv = lib.add_template(Template::new("inv", (4, 2))?
//!     .with_terminal("a", (0, 1), TermType::In)?
//!     .with_terminal("y", (4, 1), TermType::Out)?)?;
//! let mut b = NetworkBuilder::new(lib);
//! let u0 = b.add_instance("u0", inv)?;
//! let u1 = b.add_instance("u1", inv)?;
//! b.connect_pin("n", u0, "y")?;
//! b.connect_pin("n", u1, "a")?;
//! let network = b.finish()?;
//!
//! // ...becomes artwork.
//! let outcome = Generator::new().generate(network);
//! assert!(outcome.report.failed.is_empty());
//! assert!(outcome.diagram.check().is_ok());
//! let svg = netart::diagram::svg::render(&outcome.diagram);
//! assert!(svg.starts_with("<svg"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use netart_diagram::{Diagram, Placement};
use netart_geom::{Point, Rotation};
use netart_netlist::{NetId, Network};
use netart_obs::{
    DegradationReport, Metrics, MetricsSnapshot, NetReport, NetworkReport, QualityReport,
    RunReport,
};
use netart_place::{Pablo, PlaceConfig};
use netart_route::{Eureka, RouteConfig, RouteReport, SalvageStep};
use tracing::{error, info, span, warn, Level};

/// Re-export of the geometry substrate.
pub use netart_geom as geom;

/// Re-export of the network model and file formats.
pub use netart_netlist as netlist;

/// Re-export of the diagram model, metrics and writers.
pub use netart_diagram as diagram;

/// Re-export of the placement phase.
pub use netart_place as place;

/// Re-export of the routing phase.
pub use netart_route as route;

/// Re-export of the observability layer (metrics, run reports,
/// tracing subscribers).
pub use netart_obs as obs;

pub use netart_diagram::{DiagramMetrics, NetPath};
pub use netart_place::PlaceConfig as Placing;
pub use netart_route::RouteConfig as Routing;

/// A hard failure of the pipeline: the run could not produce a usable
/// diagram at all. Soft failures — individual nets degraded or lost —
/// are reported as [`Degradation`]s on a successful [`Outcome`]
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The placement handed to [`Generator::route_only`] leaves modules
    /// or system terminals unplaced, so routing cannot start.
    IncompletePlacement,
    /// The routing phase panicked (a bug, not a property of the input);
    /// the payload is the panic message.
    RoutingPanicked(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::IncompletePlacement => {
                write!(f, "placement is incomplete: every module and system terminal must be placed before routing")
            }
            PipelineError::RoutingPanicked(msg) => {
                write!(f, "routing phase panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A soft failure recorded on an [`Outcome`]: the run finished, but
/// some part of the result is degraded relative to a clean run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// The placer panicked; a plain fallback grid placement was used
    /// instead. The payload is the panic message.
    PlacementRecovered(String),
    /// The router panicked; the diagram keeps its placement but has no
    /// routes. The payload is the panic message.
    RoutingAborted(String),
    /// A net needed the salvage cascade. `routed` tells whether the
    /// salvage produced a real route (rip-up retry or Lee fallback) or
    /// only a ghost-wire placeholder.
    NetSalvaged {
        /// The net that failed its regular routing passes.
        net: NetId,
        /// The cascade step that settled it.
        step: SalvageStep,
        /// `true` for a real (if suboptimal) route, `false` for a
        /// ghost wire.
        routed: bool,
    },
    /// A net could not be routed and salvage was disabled, so it has
    /// neither a route nor a ghost wire.
    NetUnrouted(NetId),
}

/// Everything a generator run produces: the finished diagram, the
/// routing report, the phase timings (the quantities of the paper's
/// table 6.1), and any [`Degradation`]s the run had to accept.
#[derive(Debug)]
pub struct Outcome {
    /// The generated schematic diagram.
    pub diagram: Diagram,
    /// Which nets routed and which failed.
    pub report: RouteReport,
    /// Wall-clock time of the placement phase.
    pub place_time: Duration,
    /// Wall-clock time of the routing phase.
    pub route_time: Duration,
    /// Everything that went wrong without stopping the run, in the
    /// order it happened. Empty on a clean run.
    pub degradations: Vec<Degradation>,
    /// The run's frozen metrics registry: deterministic counters
    /// (routing effort, quality) plus wall-clock histograms.
    pub metrics: MetricsSnapshot,
}

impl Outcome {
    /// `true` when the run needed no fallbacks at all: every net routed
    /// by the regular passes and no phase misbehaved.
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty()
    }

    /// Freezes the run into its machine-readable [`RunReport`]:
    /// network size, `place`/`route` phase timings, per-net router
    /// effort, per-degradation context, §4.4 quality metrics and the
    /// metrics snapshot. Callers (the CLIs, the bench harness) may add
    /// their own phases around the pipeline's with
    /// [`RunReport::push_phase_front`] / [`RunReport::push_phase`].
    pub fn run_report(&self, tool: &str) -> RunReport {
        let network = self.diagram.network();
        let q = self.diagram.metrics();
        let mut report = RunReport {
            tool: tool.to_owned(),
            network: NetworkReport {
                modules: network.modules().count(),
                nets: network.nets().count(),
                system_terminals: network.system_terms().count(),
            },
            quality: QualityReport {
                routed_nets: q.routed_nets,
                unrouted_nets: q.unrouted_nets,
                total_length: q.total_length,
                total_bends: q.total_bends,
                crossovers: q.crossovers,
                branch_points: q.branch_points,
                bounding_area: q.bounding_area,
                completion: q.completion(),
            },
            metrics: self.metrics.clone(),
            is_clean: self.is_clean(),
            ..RunReport::default()
        };
        if self.place_time > Duration::ZERO {
            report.push_phase("place", duration_ns(self.place_time));
        }
        report.push_phase("route", duration_ns(self.route_time));
        for s in &self.report.net_stats {
            report.nets.push(NetReport {
                net: network.net(s.net).name().to_owned(),
                routed: s.routed,
                prerouted: s.prerouted,
                nodes_expanded: s.nodes_expanded,
                over_budget: s.over_budget,
                retried: s.retried,
                salvage: s.salvage.map(|step| step.as_str().to_owned()),
                ripup_victims: s.ripup_victims,
            });
        }
        for d in &self.degradations {
            report.degradations.push(self.degradation_report(d));
        }
        report.attach_phase_quantiles();
        report
    }

    /// One degradation with the context the report schema wants: the
    /// net's name and, where the router recorded them, the budget state
    /// and search effort at the point of failure.
    fn degradation_report(&self, d: &Degradation) -> DegradationReport {
        let network = self.diagram.network();
        let stats_of = |net: NetId| self.report.net_stats.iter().find(|s| s.net == net);
        match d {
            Degradation::PlacementRecovered(msg) => DegradationReport {
                kind: "placement_recovered".into(),
                net: None,
                stage: None,
                routed: None,
                over_budget: None,
                nodes_expanded: None,
                detail: Some(msg.clone()),
            },
            Degradation::RoutingAborted(msg) => DegradationReport {
                kind: "routing_aborted".into(),
                net: None,
                stage: None,
                routed: None,
                over_budget: None,
                nodes_expanded: None,
                detail: Some(msg.clone()),
            },
            Degradation::NetSalvaged { net, step, routed } => {
                let record = self.report.salvaged.iter().find(|s| s.net == *net);
                DegradationReport {
                    kind: "net_salvaged".into(),
                    net: Some(network.net(*net).name().to_owned()),
                    stage: Some(step.as_str().to_owned()),
                    routed: Some(*routed),
                    over_budget: record.map(|r| r.over_budget),
                    nodes_expanded: stats_of(*net).map(|s| s.nodes_expanded),
                    detail: None,
                }
            }
            Degradation::NetUnrouted(net) => DegradationReport {
                kind: "net_unrouted".into(),
                net: Some(network.net(*net).name().to_owned()),
                stage: None,
                routed: Some(false),
                over_budget: stats_of(*net).map(|s| s.over_budget),
                nodes_expanded: stats_of(*net).map(|s| s.nodes_expanded),
                detail: None,
            },
        }
    }
}

/// Nanoseconds of a duration, saturating at `u64::MAX`.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Degradations implied by a routing report: one entry per salvaged
/// net, one per net that stayed unrouted without even a ghost.
fn route_degradations(network: &Network, report: &RouteReport) -> Vec<Degradation> {
    let mut out: Vec<Degradation> = report
        .salvaged
        .iter()
        .map(|s| Degradation::NetSalvaged {
            net: s.net,
            step: s.step,
            routed: !matches!(s.step, SalvageStep::GhostWire),
        })
        .collect();
    for &n in &report.failed {
        if !report.salvaged.iter().any(|s| s.net == n) {
            let stats = report.net_stats.iter().find(|s| s.net == n);
            warn!(
                "net unrouted",
                net = network.net(n).name(),
                over_budget = stats.is_some_and(|s| s.over_budget),
                nodes = stats.map_or(0, |s| s.nodes_expanded),
            );
            out.push(Degradation::NetUnrouted(n));
        }
    }
    out
}

/// Fills the run's metrics registry from the finished diagram and
/// routing report. Counters get only deterministic quantities; the
/// wall-clock phase times go into histograms.
fn fill_metrics(
    metrics: &mut Metrics,
    diagram: &Diagram,
    report: &RouteReport,
    degradations: &[Degradation],
    place_time: Duration,
    route_time: Duration,
) {
    metrics.set("route.nets_routed", report.routed.len() as u64);
    metrics.set("route.nets_failed", report.failed.len() as u64);
    metrics.set("route.nets_salvaged", report.salvaged.len() as u64);
    metrics.set(
        "route.nodes_expanded",
        report.net_stats.iter().map(|s| s.nodes_expanded).sum(),
    );
    metrics.set(
        "route.over_budget_nets",
        report.net_stats.iter().filter(|s| s.over_budget).count() as u64,
    );
    metrics.set(
        "route.retried_nets",
        report.net_stats.iter().filter(|s| s.retried).count() as u64,
    );
    metrics.set(
        "route.prerouted_nets",
        report.net_stats.iter().filter(|s| s.prerouted).count() as u64,
    );
    metrics.set(
        "route.ripup_victims",
        report.net_stats.iter().map(|s| u64::from(s.ripup_victims)).sum(),
    );
    metrics.set(
        "route.ghost_wires",
        report
            .salvaged
            .iter()
            .filter(|s| s.step == SalvageStep::GhostWire)
            .count() as u64,
    );
    metrics.set(
        "route.lee_fallbacks",
        report
            .salvaged
            .iter()
            .filter(|s| s.step == SalvageStep::LeeFallback)
            .count() as u64,
    );
    metrics.set("degradations", degradations.len() as u64);
    metrics.set(
        "place.fallback",
        degradations
            .iter()
            .filter(|d| matches!(d, Degradation::PlacementRecovered(_)))
            .count() as u64,
    );
    metrics.set(
        "route.aborted",
        degradations
            .iter()
            .filter(|d| matches!(d, Degradation::RoutingAborted(_)))
            .count() as u64,
    );
    let q = diagram.metrics();
    metrics.set("quality.routed_nets", q.routed_nets as u64);
    metrics.set("quality.unrouted_nets", q.unrouted_nets as u64);
    metrics.set("quality.total_length", q.total_length);
    metrics.set("quality.total_bends", q.total_bends);
    metrics.set("quality.crossovers", q.crossovers);
    metrics.set("quality.branch_points", q.branch_points);
    metrics.set("quality.bounding_area", q.bounding_area);
    if place_time > Duration::ZERO {
        metrics.observe("phase.place_ns", duration_ns(place_time));
    }
    metrics.observe("phase.route_ns", duration_ns(route_time));
    for s in &report.net_stats {
        metrics.observe("route.net_nodes", s.nodes_expanded);
    }
}

/// Renders a caught panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The placement of last resort: every unplaced module on a plain grid
/// (row-major, square-ish), every unplaced system terminal along the
/// left edge. Ugly but complete, so routing can still run.
fn fallback_grid_placement(network: &Network, mut placement: Placement) -> Placement {
    let unplaced: Vec<_> = network
        .modules()
        .filter(|&m| placement.module(m).is_none())
        .collect();
    if !unplaced.is_empty() {
        let cols = (unplaced.len() as f64).sqrt().ceil() as usize;
        let cell_w = unplaced
            .iter()
            .map(|&m| network.template_of(m).size().0)
            .max()
            .unwrap_or(4)
            + 6;
        let cell_h = unplaced
            .iter()
            .map(|&m| network.template_of(m).size().1)
            .max()
            .unwrap_or(2)
            + 6;
        // Clear of anything already placed.
        let origin = placement
            .bounding_box(network)
            .map_or(Point::ORIGIN, |bb| {
                Point::new(bb.lower_left().x, bb.upper_right().y + cell_h)
            });
        for (i, &m) in unplaced.iter().enumerate() {
            let (col, row) = (i % cols, i / cols);
            let p = origin
                + Point::new(col as i32 * cell_w, row as i32 * cell_h);
            placement.place_module(m, p, Rotation::R0);
        }
    }
    let edge = placement
        .bounding_box(network)
        .map_or(Point::ORIGIN, |bb| bb.lower_left() + Point::new(-4, 0));
    let mut y = edge.y;
    for st in network.system_terms() {
        if placement.system_term(st).is_none() {
            placement.place_system_term(st, Point::new(edge.x, y));
            y += 4;
        }
    }
    placement
}

/// The automatic schematic diagram generator of figure 3.2: placement
/// followed by routing, each configurable through the options of
/// Appendices E and F.
///
/// # Examples
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone, Default)]
pub struct Generator {
    place: PlaceConfig,
    route: RouteConfig,
}

impl Generator {
    /// A generator with default options (`-p 1 -b 1`, claimpoints on).
    pub fn new() -> Self {
        Generator::default()
    }

    /// A generator with the string-forming placement of figure 6.4
    /// (`-p 7 -b 5`) — the preset that produces the most readable
    /// diagrams on typical networks.
    pub fn strings() -> Self {
        Generator::new().with_placing(PlaceConfig::strings())
    }

    /// Replaces the placement options.
    pub fn with_placing(mut self, config: PlaceConfig) -> Self {
        self.place = config;
        self
    }

    /// Replaces the routing options.
    pub fn with_routing(mut self, config: RouteConfig) -> Self {
        self.route = config;
        self
    }

    /// The placement options.
    pub fn placing(&self) -> &PlaceConfig {
        &self.place
    }

    /// The routing options.
    pub fn routing(&self) -> &RouteConfig {
        &self.route
    }

    /// Runs the full pipeline on a network.
    pub fn generate(&self, network: Network) -> Outcome {
        let empty = Placement::new(&network);
        self.generate_with_preplaced(network, empty)
    }

    /// Runs the pipeline around a preplaced (and possibly prerouted)
    /// part: the `-g` mechanism of Appendix E. Preplaced modules and
    /// terminals keep their positions; everything else is placed around
    /// them, then all nets are routed.
    ///
    /// Each phase runs isolated: a panic inside the placer falls back
    /// to a plain grid placement, a panic inside the router leaves the
    /// diagram placed but unrouted. Either is recorded as a
    /// [`Degradation`] on the returned [`Outcome`] rather than
    /// propagated.
    pub fn generate_with_preplaced(&self, network: Network, preplaced: Placement) -> Outcome {
        let mut degradations = Vec::new();
        let mut metrics = Metrics::new();

        let t0 = Instant::now();
        let placement = {
            let s = span!(
                Level::INFO,
                "netart.place",
                modules = network.modules().count() as u64,
            );
            let _g = s.enter();
            match panic::catch_unwind(AssertUnwindSafe(|| {
                Pablo::new(self.place.clone()).place_with_preplaced(&network, preplaced.clone())
            })) {
                Ok(p) => p,
                Err(payload) => {
                    let msg = panic_message(payload);
                    error!("placement panicked, using fallback grid", detail = msg.as_str());
                    degradations.push(Degradation::PlacementRecovered(msg));
                    fallback_grid_placement(&network, preplaced)
                }
            }
        };
        let place_time = t0.elapsed();

        let mut diagram = Diagram::new(network, placement);
        let t1 = Instant::now();
        let report = {
            let s = span!(
                Level::INFO,
                "netart.route",
                nets = diagram.network().nets().count() as u64,
            );
            let _g = s.enter();
            match panic::catch_unwind(AssertUnwindSafe(|| {
                let mut scratch = diagram.clone();
                let report = Eureka::new(self.route.clone()).route(&mut scratch);
                (scratch, report)
            })) {
                Ok((routed, report)) => {
                    diagram = routed;
                    report
                }
                Err(payload) => {
                    let msg = panic_message(payload);
                    error!("routing panicked, diagram left unrouted", detail = msg.as_str());
                    degradations.push(Degradation::RoutingAborted(msg));
                    RouteReport {
                        failed: diagram.network().nets().collect(),
                        ..RouteReport::default()
                    }
                }
            }
        };
        let route_time = t1.elapsed();
        degradations.extend(route_degradations(diagram.network(), &report));
        fill_metrics(
            &mut metrics,
            &diagram,
            &report,
            &degradations,
            place_time,
            route_time,
        );
        info!(
            "pipeline finished",
            routed = report.routed.len() as u64,
            failed = report.failed.len() as u64,
            degradations = degradations.len() as u64,
        );

        Outcome {
            diagram,
            report,
            place_time,
            route_time,
            degradations,
            metrics: metrics.snapshot(),
        }
    }

    /// Routes an existing placement without running the placer: the
    /// paper's `eureka`-only flow used for figure 6.6 (hand placement)
    /// and figure 6.5 (edited placement).
    ///
    /// # Errors
    ///
    /// [`PipelineError::IncompletePlacement`] when modules or system
    /// terminals are missing positions, and
    /// [`PipelineError::RoutingPanicked`] if the router hits a bug —
    /// this entry point surfaces hard failures instead of degrading,
    /// because a hand placement is worth fixing, not papering over.
    pub fn route_only(
        &self,
        network: Network,
        placement: Placement,
    ) -> Result<Outcome, PipelineError> {
        let diagram = Diagram::new(network, placement);
        self.route_diagram(diagram)
    }

    /// Routes an existing diagram — placement and any preroutes kept —
    /// without running the placer. [`Generator::route_only`] is this
    /// with a freshly built diagram; tools that parsed a diagram file
    /// (placement plus partial routes) call this directly so prerouted
    /// nets survive.
    ///
    /// # Errors
    ///
    /// Same contract as [`Generator::route_only`].
    pub fn route_diagram(&self, mut diagram: Diagram) -> Result<Outcome, PipelineError> {
        if !diagram.placement().is_complete() {
            return Err(PipelineError::IncompletePlacement);
        }
        let mut metrics = Metrics::new();
        let t1 = Instant::now();
        let report = {
            let s = span!(
                Level::INFO,
                "netart.route",
                nets = diagram.network().nets().count() as u64,
            );
            let _g = s.enter();
            panic::catch_unwind(AssertUnwindSafe(|| {
                Eureka::new(self.route.clone()).route(&mut diagram)
            }))
            .map_err(|payload| PipelineError::RoutingPanicked(panic_message(payload)))?
        };
        let route_time = t1.elapsed();
        let degradations = route_degradations(diagram.network(), &report);
        fill_metrics(
            &mut metrics,
            &diagram,
            &report,
            &degradations,
            Duration::ZERO,
            route_time,
        );
        Ok(Outcome {
            diagram,
            report,
            place_time: Duration::ZERO,
            route_time,
            degradations,
            metrics: metrics.snapshot(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> Network {
        netart_workloads::string_chain(4)
    }

    #[test]
    fn generate_produces_clean_diagram() {
        let outcome = Generator::strings().generate(network());
        assert!(outcome.report.failed.is_empty(), "{:?}", outcome.report);
        let check = outcome.diagram.check();
        assert!(check.is_ok(), "{check}");
        let m = outcome.diagram.metrics();
        assert_eq!(m.unrouted_nets, 0);
        assert!(m.total_length > 0);
    }

    #[test]
    fn default_and_strings_configs_differ() {
        let a = Generator::new();
        let b = Generator::strings();
        assert_ne!(a.placing(), b.placing());
        assert_eq!(a.routing(), b.routing());
    }

    #[test]
    fn route_only_respects_placement() {
        let net = network();
        let placement = netart_place::Pablo::new(PlaceConfig::strings()).place(&net);
        let snapshot: Vec<_> = net.modules().map(|m| placement.module(m)).collect();
        let outcome = Generator::new().route_only(net, placement).unwrap();
        assert_eq!(outcome.place_time, Duration::ZERO);
        for (m, before) in outcome.diagram.network().modules().zip(snapshot) {
            assert_eq!(outcome.diagram.placement().module(m), before);
        }
    }

    #[test]
    fn route_only_rejects_incomplete_placement() {
        let net = network();
        let empty = Placement::new(&net);
        let err = Generator::new().route_only(net, empty).unwrap_err();
        assert_eq!(err, PipelineError::IncompletePlacement);
        assert!(err.to_string().contains("incomplete"));
    }

    #[test]
    fn clean_run_has_no_degradations() {
        let outcome = Generator::strings().generate(network());
        assert!(outcome.is_clean(), "{:?}", outcome.degradations);
    }

    #[test]
    fn fallback_grid_placement_is_complete() {
        let net = netart_workloads::controller_cluster();
        let placement = fallback_grid_placement(&net, Placement::new(&net));
        assert!(placement.is_complete());
        // And routable enough to produce a diagram without panicking.
        let mut diagram = Diagram::new(net, placement);
        let _ = Eureka::new(RouteConfig::default()).route(&mut diagram);
    }

    #[test]
    fn salvaged_nets_surface_as_degradations() {
        let net = network();
        assert!(net.nets().count() >= 3, "test needs three nets");
        let report = RouteReport {
            routed: vec![NetId::from_index(0)],
            failed: vec![NetId::from_index(1), NetId::from_index(2)],
            salvaged: vec![netart_route::SalvageRecord {
                net: NetId::from_index(1),
                step: SalvageStep::GhostWire,
                over_budget: true,
                nodes_spent: 12,
                ripup_victims: 0,
            }],
            net_stats: Vec::new(),
        };
        let degradations = route_degradations(&net, &report);
        assert_eq!(degradations.len(), 2);
        assert!(matches!(
            degradations[0],
            Degradation::NetSalvaged { step: SalvageStep::GhostWire, routed: false, .. }
        ));
        assert!(matches!(degradations[1], Degradation::NetUnrouted(n) if n.index() == 2));
    }

    #[test]
    fn builder_setters() {
        let g = Generator::new()
            .with_placing(PlaceConfig::clusters())
            .with_routing(RouteConfig::new().without_claimpoints());
        assert_eq!(g.placing().max_part_size, 5);
        assert!(!g.routing().claimpoints);
    }
}
