//! `netart` — automatic schematic diagram generation from netlists.
//!
//! A Rust reproduction of **Koster & Stok, "From Network to Artwork:
//! Automatic Schematic Diagram Generation"** (EUT Report 89-E-219,
//! Eindhoven University of Technology, 1989): given a plain netlist,
//! produce a readable schematic diagram — module placement plus
//! rectilinear wire routing — following the hand-drawing guidelines the
//! paper distils (functional clustering, left-to-right signal flow,
//! inputs left / outputs right, few bends and crossovers).
//!
//! The pipeline mirrors the paper's two programs:
//!
//! * **PABLO** (placement, §4): seeded partitioning into functional
//!   parts, longest-path strings of driver→consumer modules, module
//!   rotation for bend-minimal connections, centre-of-gravity box and
//!   partition packing, system terminals on the bounding ring.
//! * **EUREKA** (routing, §5): a line-expansion router that guarantees
//!   a connection whenever one exists, minimises bends first, then
//!   crossovers, then length, with claimpoints (§5.7) protecting
//!   terminal exits.
//!
//! [`Generator`] glues the two together; the individual phases live in
//! [`netart_place`](../netart_place/index.html) and
//! [`netart_route`](../netart_route/index.html), the data model in
//! [`netart_netlist`](../netart_netlist/index.html) and
//! [`netart_diagram`](../netart_diagram/index.html) (all re-exported
//! here under [`place`], [`route`], [`netlist`], [`diagram`],
//! [`geom`]).
//!
//! # Quickstart
//!
//! ```
//! use netart::{Generator, netlist::{Library, NetworkBuilder, Template, TermType}};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-gate network...
//! let mut lib = Library::new();
//! let inv = lib.add_template(Template::new("inv", (4, 2))?
//!     .with_terminal("a", (0, 1), TermType::In)?
//!     .with_terminal("y", (4, 1), TermType::Out)?)?;
//! let mut b = NetworkBuilder::new(lib);
//! let u0 = b.add_instance("u0", inv)?;
//! let u1 = b.add_instance("u1", inv)?;
//! b.connect_pin("n", u0, "y")?;
//! b.connect_pin("n", u1, "a")?;
//! let network = b.finish()?;
//!
//! // ...becomes artwork.
//! let outcome = Generator::new().generate(network);
//! assert!(outcome.report.failed.is_empty());
//! assert!(outcome.diagram.check().is_ok());
//! let svg = netart::diagram::svg::render(&outcome.diagram);
//! assert!(svg.starts_with("<svg"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use netart_diagram::{Diagram, Placement};
use netart_netlist::Network;
use netart_place::{Pablo, PlaceConfig};
use netart_route::{Eureka, RouteConfig, RouteReport};

/// Re-export of the geometry substrate.
pub use netart_geom as geom;

/// Re-export of the network model and file formats.
pub use netart_netlist as netlist;

/// Re-export of the diagram model, metrics and writers.
pub use netart_diagram as diagram;

/// Re-export of the placement phase.
pub use netart_place as place;

/// Re-export of the routing phase.
pub use netart_route as route;

pub use netart_diagram::{DiagramMetrics, NetPath};
pub use netart_place::PlaceConfig as Placing;
pub use netart_route::RouteConfig as Routing;

/// Everything a generator run produces: the finished diagram, the
/// routing report, and the phase timings (the quantities of the
/// paper's table 6.1).
#[derive(Debug)]
pub struct Outcome {
    /// The generated schematic diagram.
    pub diagram: Diagram,
    /// Which nets routed and which failed.
    pub report: RouteReport,
    /// Wall-clock time of the placement phase.
    pub place_time: Duration,
    /// Wall-clock time of the routing phase.
    pub route_time: Duration,
}

/// The automatic schematic diagram generator of figure 3.2: placement
/// followed by routing, each configurable through the options of
/// Appendices E and F.
///
/// # Examples
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone, Default)]
pub struct Generator {
    place: PlaceConfig,
    route: RouteConfig,
}

impl Generator {
    /// A generator with default options (`-p 1 -b 1`, claimpoints on).
    pub fn new() -> Self {
        Generator::default()
    }

    /// A generator with the string-forming placement of figure 6.4
    /// (`-p 7 -b 5`) — the preset that produces the most readable
    /// diagrams on typical networks.
    pub fn strings() -> Self {
        Generator::new().with_placing(PlaceConfig::strings())
    }

    /// Replaces the placement options.
    pub fn with_placing(mut self, config: PlaceConfig) -> Self {
        self.place = config;
        self
    }

    /// Replaces the routing options.
    pub fn with_routing(mut self, config: RouteConfig) -> Self {
        self.route = config;
        self
    }

    /// The placement options.
    pub fn placing(&self) -> &PlaceConfig {
        &self.place
    }

    /// The routing options.
    pub fn routing(&self) -> &RouteConfig {
        &self.route
    }

    /// Runs the full pipeline on a network.
    pub fn generate(&self, network: Network) -> Outcome {
        let empty = Placement::new(&network);
        self.generate_with_preplaced(network, empty)
    }

    /// Runs the pipeline around a preplaced (and possibly prerouted)
    /// part: the `-g` mechanism of Appendix E. Preplaced modules and
    /// terminals keep their positions; everything else is placed around
    /// them, then all nets are routed.
    pub fn generate_with_preplaced(&self, network: Network, preplaced: Placement) -> Outcome {
        let t0 = Instant::now();
        let placement = Pablo::new(self.place.clone()).place_with_preplaced(&network, preplaced);
        let place_time = t0.elapsed();

        let mut diagram = Diagram::new(network, placement);
        let t1 = Instant::now();
        let report = Eureka::new(self.route.clone()).route(&mut diagram);
        let route_time = t1.elapsed();

        Outcome {
            diagram,
            report,
            place_time,
            route_time,
        }
    }

    /// Routes an existing placement without running the placer: the
    /// paper's `eureka`-only flow used for figure 6.6 (hand placement)
    /// and figure 6.5 (edited placement).
    ///
    /// # Panics
    ///
    /// Panics when the placement is incomplete.
    pub fn route_only(&self, network: Network, placement: Placement) -> Outcome {
        let mut diagram = Diagram::new(network, placement);
        let t1 = Instant::now();
        let report = Eureka::new(self.route.clone()).route(&mut diagram);
        let route_time = t1.elapsed();
        Outcome {
            diagram,
            report,
            place_time: Duration::ZERO,
            route_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> Network {
        netart_workloads::string_chain(4)
    }

    #[test]
    fn generate_produces_clean_diagram() {
        let outcome = Generator::strings().generate(network());
        assert!(outcome.report.failed.is_empty(), "{:?}", outcome.report);
        let check = outcome.diagram.check();
        assert!(check.is_ok(), "{check}");
        let m = outcome.diagram.metrics();
        assert_eq!(m.unrouted_nets, 0);
        assert!(m.total_length > 0);
    }

    #[test]
    fn default_and_strings_configs_differ() {
        let a = Generator::new();
        let b = Generator::strings();
        assert_ne!(a.placing(), b.placing());
        assert_eq!(a.routing(), b.routing());
    }

    #[test]
    fn route_only_respects_placement() {
        let net = network();
        let placement = netart_place::Pablo::new(PlaceConfig::strings()).place(&net);
        let snapshot: Vec<_> = net.modules().map(|m| placement.module(m)).collect();
        let outcome = Generator::new().route_only(net, placement);
        assert_eq!(outcome.place_time, Duration::ZERO);
        for (m, before) in outcome.diagram.network().modules().zip(snapshot) {
            assert_eq!(outcome.diagram.placement().module(m), before);
        }
    }

    #[test]
    fn builder_setters() {
        let g = Generator::new()
            .with_placing(PlaceConfig::clusters())
            .with_routing(RouteConfig::new().without_claimpoints());
        assert_eq!(g.placing().max_part_size, 5);
        assert!(!g.routing().claimpoints);
    }
}
