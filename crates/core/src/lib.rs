//! `netart` — automatic schematic diagram generation from netlists.
//!
//! A Rust reproduction of **Koster & Stok, "From Network to Artwork:
//! Automatic Schematic Diagram Generation"** (EUT Report 89-E-219,
//! Eindhoven University of Technology, 1989): given a plain netlist,
//! produce a readable schematic diagram — module placement plus
//! rectilinear wire routing — following the hand-drawing guidelines the
//! paper distils (functional clustering, left-to-right signal flow,
//! inputs left / outputs right, few bends and crossovers).
//!
//! The pipeline mirrors the paper's two programs:
//!
//! * **PABLO** (placement, §4): seeded partitioning into functional
//!   parts, longest-path strings of driver→consumer modules, module
//!   rotation for bend-minimal connections, centre-of-gravity box and
//!   partition packing, system terminals on the bounding ring.
//! * **EUREKA** (routing, §5): a line-expansion router that guarantees
//!   a connection whenever one exists, minimises bends first, then
//!   crossovers, then length, with claimpoints (§5.7) protecting
//!   terminal exits.
//!
//! [`Generator`] glues the two together; the individual phases live in
//! [`netart_place`](../netart_place/index.html) and
//! [`netart_route`](../netart_route/index.html), the data model in
//! [`netart_netlist`](../netart_netlist/index.html) and
//! [`netart_diagram`](../netart_diagram/index.html) (all re-exported
//! here under [`place`], [`route`], [`netlist`], [`diagram`],
//! [`geom`]).
//!
//! # Quickstart
//!
//! ```
//! use netart::{Generator, netlist::{Library, NetworkBuilder, Template, TermType}};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-gate network...
//! let mut lib = Library::new();
//! let inv = lib.add_template(Template::new("inv", (4, 2))?
//!     .with_terminal("a", (0, 1), TermType::In)?
//!     .with_terminal("y", (4, 1), TermType::Out)?)?;
//! let mut b = NetworkBuilder::new(lib);
//! let u0 = b.add_instance("u0", inv)?;
//! let u1 = b.add_instance("u1", inv)?;
//! b.connect_pin("n", u0, "y")?;
//! b.connect_pin("n", u1, "a")?;
//! let network = b.finish()?;
//!
//! // ...becomes artwork.
//! let outcome = Generator::new().generate(network);
//! assert!(outcome.report.failed.is_empty());
//! assert!(outcome.diagram.check().is_ok());
//! let svg = netart::diagram::svg::render(&outcome.diagram);
//! assert!(svg.starts_with("<svg"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use netart_diagram::{Diagram, Placement};
use netart_geom::{Point, Rotation};
use netart_netlist::{NetId, Network};
use netart_place::{Pablo, PlaceConfig};
use netart_route::{Eureka, RouteConfig, RouteReport, SalvageStep};

/// Re-export of the geometry substrate.
pub use netart_geom as geom;

/// Re-export of the network model and file formats.
pub use netart_netlist as netlist;

/// Re-export of the diagram model, metrics and writers.
pub use netart_diagram as diagram;

/// Re-export of the placement phase.
pub use netart_place as place;

/// Re-export of the routing phase.
pub use netart_route as route;

pub use netart_diagram::{DiagramMetrics, NetPath};
pub use netart_place::PlaceConfig as Placing;
pub use netart_route::RouteConfig as Routing;

/// A hard failure of the pipeline: the run could not produce a usable
/// diagram at all. Soft failures — individual nets degraded or lost —
/// are reported as [`Degradation`]s on a successful [`Outcome`]
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The placement handed to [`Generator::route_only`] leaves modules
    /// or system terminals unplaced, so routing cannot start.
    IncompletePlacement,
    /// The routing phase panicked (a bug, not a property of the input);
    /// the payload is the panic message.
    RoutingPanicked(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::IncompletePlacement => {
                write!(f, "placement is incomplete: every module and system terminal must be placed before routing")
            }
            PipelineError::RoutingPanicked(msg) => {
                write!(f, "routing phase panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A soft failure recorded on an [`Outcome`]: the run finished, but
/// some part of the result is degraded relative to a clean run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// The placer panicked; a plain fallback grid placement was used
    /// instead. The payload is the panic message.
    PlacementRecovered(String),
    /// The router panicked; the diagram keeps its placement but has no
    /// routes. The payload is the panic message.
    RoutingAborted(String),
    /// A net needed the salvage cascade. `routed` tells whether the
    /// salvage produced a real route (rip-up retry or Lee fallback) or
    /// only a ghost-wire placeholder.
    NetSalvaged {
        /// The net that failed its regular routing passes.
        net: NetId,
        /// The cascade step that settled it.
        step: SalvageStep,
        /// `true` for a real (if suboptimal) route, `false` for a
        /// ghost wire.
        routed: bool,
    },
    /// A net could not be routed and salvage was disabled, so it has
    /// neither a route nor a ghost wire.
    NetUnrouted(NetId),
}

/// Everything a generator run produces: the finished diagram, the
/// routing report, the phase timings (the quantities of the paper's
/// table 6.1), and any [`Degradation`]s the run had to accept.
#[derive(Debug)]
pub struct Outcome {
    /// The generated schematic diagram.
    pub diagram: Diagram,
    /// Which nets routed and which failed.
    pub report: RouteReport,
    /// Wall-clock time of the placement phase.
    pub place_time: Duration,
    /// Wall-clock time of the routing phase.
    pub route_time: Duration,
    /// Everything that went wrong without stopping the run, in the
    /// order it happened. Empty on a clean run.
    pub degradations: Vec<Degradation>,
}

impl Outcome {
    /// `true` when the run needed no fallbacks at all: every net routed
    /// by the regular passes and no phase misbehaved.
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty()
    }
}

/// Degradations implied by a routing report: one entry per salvaged
/// net, one per net that stayed unrouted without even a ghost.
fn route_degradations(report: &RouteReport) -> Vec<Degradation> {
    let mut out: Vec<Degradation> = report
        .salvaged
        .iter()
        .map(|s| Degradation::NetSalvaged {
            net: s.net,
            step: s.step,
            routed: !matches!(s.step, SalvageStep::GhostWire),
        })
        .collect();
    for &n in &report.failed {
        if !report.salvaged.iter().any(|s| s.net == n) {
            out.push(Degradation::NetUnrouted(n));
        }
    }
    out
}

/// Renders a caught panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The placement of last resort: every unplaced module on a plain grid
/// (row-major, square-ish), every unplaced system terminal along the
/// left edge. Ugly but complete, so routing can still run.
fn fallback_grid_placement(network: &Network, mut placement: Placement) -> Placement {
    let unplaced: Vec<_> = network
        .modules()
        .filter(|&m| placement.module(m).is_none())
        .collect();
    if !unplaced.is_empty() {
        let cols = (unplaced.len() as f64).sqrt().ceil() as usize;
        let cell_w = unplaced
            .iter()
            .map(|&m| network.template_of(m).size().0)
            .max()
            .unwrap_or(4)
            + 6;
        let cell_h = unplaced
            .iter()
            .map(|&m| network.template_of(m).size().1)
            .max()
            .unwrap_or(2)
            + 6;
        // Clear of anything already placed.
        let origin = placement
            .bounding_box(network)
            .map_or(Point::ORIGIN, |bb| {
                Point::new(bb.lower_left().x, bb.upper_right().y + cell_h)
            });
        for (i, &m) in unplaced.iter().enumerate() {
            let (col, row) = (i % cols, i / cols);
            let p = origin
                + Point::new(col as i32 * cell_w, row as i32 * cell_h);
            placement.place_module(m, p, Rotation::R0);
        }
    }
    let edge = placement
        .bounding_box(network)
        .map_or(Point::ORIGIN, |bb| bb.lower_left() + Point::new(-4, 0));
    let mut y = edge.y;
    for st in network.system_terms() {
        if placement.system_term(st).is_none() {
            placement.place_system_term(st, Point::new(edge.x, y));
            y += 4;
        }
    }
    placement
}

/// The automatic schematic diagram generator of figure 3.2: placement
/// followed by routing, each configurable through the options of
/// Appendices E and F.
///
/// # Examples
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone, Default)]
pub struct Generator {
    place: PlaceConfig,
    route: RouteConfig,
}

impl Generator {
    /// A generator with default options (`-p 1 -b 1`, claimpoints on).
    pub fn new() -> Self {
        Generator::default()
    }

    /// A generator with the string-forming placement of figure 6.4
    /// (`-p 7 -b 5`) — the preset that produces the most readable
    /// diagrams on typical networks.
    pub fn strings() -> Self {
        Generator::new().with_placing(PlaceConfig::strings())
    }

    /// Replaces the placement options.
    pub fn with_placing(mut self, config: PlaceConfig) -> Self {
        self.place = config;
        self
    }

    /// Replaces the routing options.
    pub fn with_routing(mut self, config: RouteConfig) -> Self {
        self.route = config;
        self
    }

    /// The placement options.
    pub fn placing(&self) -> &PlaceConfig {
        &self.place
    }

    /// The routing options.
    pub fn routing(&self) -> &RouteConfig {
        &self.route
    }

    /// Runs the full pipeline on a network.
    pub fn generate(&self, network: Network) -> Outcome {
        let empty = Placement::new(&network);
        self.generate_with_preplaced(network, empty)
    }

    /// Runs the pipeline around a preplaced (and possibly prerouted)
    /// part: the `-g` mechanism of Appendix E. Preplaced modules and
    /// terminals keep their positions; everything else is placed around
    /// them, then all nets are routed.
    ///
    /// Each phase runs isolated: a panic inside the placer falls back
    /// to a plain grid placement, a panic inside the router leaves the
    /// diagram placed but unrouted. Either is recorded as a
    /// [`Degradation`] on the returned [`Outcome`] rather than
    /// propagated.
    pub fn generate_with_preplaced(&self, network: Network, preplaced: Placement) -> Outcome {
        let mut degradations = Vec::new();

        let t0 = Instant::now();
        let placement = match panic::catch_unwind(AssertUnwindSafe(|| {
            Pablo::new(self.place.clone()).place_with_preplaced(&network, preplaced.clone())
        })) {
            Ok(p) => p,
            Err(payload) => {
                degradations.push(Degradation::PlacementRecovered(panic_message(payload)));
                fallback_grid_placement(&network, preplaced)
            }
        };
        let place_time = t0.elapsed();

        let mut diagram = Diagram::new(network, placement);
        let t1 = Instant::now();
        let report = match panic::catch_unwind(AssertUnwindSafe(|| {
            let mut scratch = diagram.clone();
            let report = Eureka::new(self.route.clone()).route(&mut scratch);
            (scratch, report)
        })) {
            Ok((routed, report)) => {
                diagram = routed;
                report
            }
            Err(payload) => {
                degradations.push(Degradation::RoutingAborted(panic_message(payload)));
                RouteReport {
                    failed: diagram.network().nets().collect(),
                    ..RouteReport::default()
                }
            }
        };
        let route_time = t1.elapsed();
        degradations.extend(route_degradations(&report));

        Outcome {
            diagram,
            report,
            place_time,
            route_time,
            degradations,
        }
    }

    /// Routes an existing placement without running the placer: the
    /// paper's `eureka`-only flow used for figure 6.6 (hand placement)
    /// and figure 6.5 (edited placement).
    ///
    /// # Errors
    ///
    /// [`PipelineError::IncompletePlacement`] when modules or system
    /// terminals are missing positions, and
    /// [`PipelineError::RoutingPanicked`] if the router hits a bug —
    /// this entry point surfaces hard failures instead of degrading,
    /// because a hand placement is worth fixing, not papering over.
    pub fn route_only(
        &self,
        network: Network,
        placement: Placement,
    ) -> Result<Outcome, PipelineError> {
        if !placement.is_complete() {
            return Err(PipelineError::IncompletePlacement);
        }
        let mut diagram = Diagram::new(network, placement);
        let t1 = Instant::now();
        let report = panic::catch_unwind(AssertUnwindSafe(|| {
            Eureka::new(self.route.clone()).route(&mut diagram)
        }))
        .map_err(|payload| PipelineError::RoutingPanicked(panic_message(payload)))?;
        let route_time = t1.elapsed();
        let degradations = route_degradations(&report);
        Ok(Outcome {
            diagram,
            report,
            place_time: Duration::ZERO,
            route_time,
            degradations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> Network {
        netart_workloads::string_chain(4)
    }

    #[test]
    fn generate_produces_clean_diagram() {
        let outcome = Generator::strings().generate(network());
        assert!(outcome.report.failed.is_empty(), "{:?}", outcome.report);
        let check = outcome.diagram.check();
        assert!(check.is_ok(), "{check}");
        let m = outcome.diagram.metrics();
        assert_eq!(m.unrouted_nets, 0);
        assert!(m.total_length > 0);
    }

    #[test]
    fn default_and_strings_configs_differ() {
        let a = Generator::new();
        let b = Generator::strings();
        assert_ne!(a.placing(), b.placing());
        assert_eq!(a.routing(), b.routing());
    }

    #[test]
    fn route_only_respects_placement() {
        let net = network();
        let placement = netart_place::Pablo::new(PlaceConfig::strings()).place(&net);
        let snapshot: Vec<_> = net.modules().map(|m| placement.module(m)).collect();
        let outcome = Generator::new().route_only(net, placement).unwrap();
        assert_eq!(outcome.place_time, Duration::ZERO);
        for (m, before) in outcome.diagram.network().modules().zip(snapshot) {
            assert_eq!(outcome.diagram.placement().module(m), before);
        }
    }

    #[test]
    fn route_only_rejects_incomplete_placement() {
        let net = network();
        let empty = Placement::new(&net);
        let err = Generator::new().route_only(net, empty).unwrap_err();
        assert_eq!(err, PipelineError::IncompletePlacement);
        assert!(err.to_string().contains("incomplete"));
    }

    #[test]
    fn clean_run_has_no_degradations() {
        let outcome = Generator::strings().generate(network());
        assert!(outcome.is_clean(), "{:?}", outcome.degradations);
    }

    #[test]
    fn fallback_grid_placement_is_complete() {
        let net = netart_workloads::controller_cluster();
        let placement = fallback_grid_placement(&net, Placement::new(&net));
        assert!(placement.is_complete());
        // And routable enough to produce a diagram without panicking.
        let mut diagram = Diagram::new(net, placement);
        let _ = Eureka::new(RouteConfig::default()).route(&mut diagram);
    }

    #[test]
    fn salvaged_nets_surface_as_degradations() {
        let report = RouteReport {
            routed: vec![NetId::from_index(0)],
            failed: vec![NetId::from_index(1), NetId::from_index(2)],
            salvaged: vec![netart_route::SalvageRecord {
                net: NetId::from_index(1),
                step: SalvageStep::GhostWire,
                over_budget: true,
            }],
        };
        let degradations = route_degradations(&report);
        assert_eq!(degradations.len(), 2);
        assert!(matches!(
            degradations[0],
            Degradation::NetSalvaged { step: SalvageStep::GhostWire, routed: false, .. }
        ));
        assert!(matches!(degradations[1], Degradation::NetUnrouted(n) if n.index() == 2));
    }

    #[test]
    fn builder_setters() {
        let g = Generator::new()
            .with_placing(PlaceConfig::clusters())
            .with_routing(RouteConfig::new().without_claimpoints());
        assert_eq!(g.placing().max_part_size, 5);
        assert!(!g.routing().claimpoints);
    }
}
