use std::collections::HashMap;
use std::sync::Arc;

use netart_govern::MemBudget;

use crate::{
    BuildError, Library, ModuleId, NetId, SystemTermId, Template, TemplateId, TermIdx, TermType,
};

/// Estimated bookkeeping bytes per hash-map entry, on top of the
/// key/value payload (bucket slot, hash, growth slack).
const MAP_ENTRY_OVERHEAD: u64 = 48;

/// A module instance: a named occurrence of a library template (the
/// *call-file* records of Appendix A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    name: String,
    template: TemplateId,
}

impl Instance {
    /// Instance name, unique within the network.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library template this instance refers to.
    pub fn template(&self) -> TemplateId {
        self.template
    }
}

/// A system terminal: a connection point of the whole diagram to the
/// outside world (the *io-file* records of Appendix A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemTerminal {
    name: String,
    ty: TermType,
}

impl SystemTerminal {
    /// Terminal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Electrical direction, from the outside's point of view.
    pub fn ty(&self) -> TermType {
        self.ty
    }
}

/// One connection point of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pin {
    /// A subsystem terminal: terminal `term` of module `module`.
    Sub {
        /// The module carrying the terminal.
        module: ModuleId,
        /// Index of the terminal within the module's template.
        term: TermIdx,
    },
    /// A system terminal of the diagram.
    System(SystemTermId),
}

/// A net: a named set of pins that must be electrically connected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    name: String,
    pins: Vec<Pin>,
}

impl Net {
    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pins this net connects, in connection order.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }
}

/// An immutable, validated network: the nine-tuple representation of
/// §4.6.2 (modules `M`, nets `N`, system terminals `ST`, subsystem
/// terminals `T`, and the `terms`/`type`/`position-terminal`/`net`/`size`
/// functions) together with its module [`Library`].
///
/// Build one with [`NetworkBuilder`] or parse the Appendix A files via
/// [`crate::format`].
#[derive(Debug, Clone)]
pub struct Network {
    library: Library,
    instances: Vec<Instance>,
    nets: Vec<Net>,
    system_terms: Vec<SystemTerminal>,
    /// For each module, the nets it touches (each net listed once),
    /// sorted.
    module_nets: Vec<Vec<NetId>>,
    /// For each net, the modules it touches (each module once), sorted.
    net_modules: Vec<Vec<ModuleId>>,
    /// net of each system terminal, if connected.
    system_term_net: Vec<Option<NetId>>,
}

impl Network {
    /// The module library backing this network.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Number of module instances.
    pub fn module_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of system terminals.
    pub fn system_term_count(&self) -> usize {
        self.system_terms.len()
    }

    /// Iterates over all module ids.
    pub fn modules(&self) -> impl Iterator<Item = ModuleId> + '_ {
        (0..self.instances.len()).map(ModuleId::from_index)
    }

    /// Iterates over all net ids.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// Iterates over all system terminal ids.
    pub fn system_terms(&self) -> impl Iterator<Item = SystemTermId> + '_ {
        (0..self.system_terms.len()).map(SystemTermId::from_index)
    }

    /// The instance record of a module.
    ///
    /// # Panics
    ///
    /// Panics when the id does not come from this network. The same
    /// applies to all id-taking accessors below.
    pub fn instance(&self, m: ModuleId) -> &Instance {
        &self.instances[m.index()]
    }

    /// Shortcut: the template of a module instance.
    pub fn template_of(&self, m: ModuleId) -> &Template {
        self.library.template(self.instances[m.index()].template)
    }

    /// The net record.
    pub fn net(&self, n: NetId) -> &Net {
        &self.nets[n.index()]
    }

    /// The system terminal record.
    pub fn system_term(&self, st: SystemTermId) -> &SystemTerminal {
        &self.system_terms[st.index()]
    }

    /// The net a system terminal is connected to, if any.
    pub fn system_term_net(&self, st: SystemTermId) -> Option<NetId> {
        self.system_term_net[st.index()]
    }

    /// Looks up a module by instance name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.instances
            .iter()
            .position(|i| i.name == name)
            .map(ModuleId::from_index)
    }

    /// Looks up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets.iter().position(|n| n.name == name).map(NetId::from_index)
    }

    /// Looks up a system terminal by name.
    pub fn system_term_by_name(&self, name: &str) -> Option<SystemTermId> {
        self.system_terms
            .iter()
            .position(|t| t.name == name)
            .map(SystemTermId::from_index)
    }

    /// The nets touching a module, each listed once, in id order.
    pub fn module_nets(&self, m: ModuleId) -> &[NetId] {
        &self.module_nets[m.index()]
    }

    /// The modules touched by a net, each listed once, in id order.
    pub fn net_modules(&self, n: NetId) -> &[ModuleId] {
        &self.net_modules[n.index()]
    }

    /// The paper's `connected` relation: `true` when net `n` has a
    /// terminal on both `a` and `b`.
    pub fn connected(&self, a: ModuleId, b: ModuleId, n: NetId) -> bool {
        let ms = &self.net_modules[n.index()];
        ms.binary_search(&a).is_ok() && ms.binary_search(&b).is_ok()
    }

    /// Number of nets connecting `a` and `b` (`a != b`): the counting
    /// quantifier `(N n : ... : (a,b) connected(n))` used throughout the
    /// placement heuristics.
    pub fn connection_count(&self, a: ModuleId, b: ModuleId) -> usize {
        let (na, nb) = (&self.module_nets[a.index()], &self.module_nets[b.index()]);
        let (small, large) = if na.len() <= nb.len() { (na, nb) } else { (nb, na) };
        small
            .iter()
            .filter(|n| large.binary_search(n).is_ok())
            .count()
    }

    /// Number of nets connecting module `m` to any module in `others`
    /// (each net counted once).
    pub fn connection_count_to_set(
        &self,
        m: ModuleId,
        others: impl Fn(ModuleId) -> bool,
    ) -> usize {
        self.module_nets[m.index()]
            .iter()
            .filter(|&&n| {
                self.net_modules[n.index()]
                    .iter()
                    .any(|&o| o != m && others(o))
            })
            .count()
    }

    /// `true` when there is a net driving from an out/inout terminal of
    /// `from` into an in/inout terminal of `to`.
    ///
    /// This is the successor relation of the longest-path search in box
    /// formation (§4.6.3), and returns the connecting net and terminal
    /// indices when it holds.
    pub fn drives(&self, from: ModuleId, to: ModuleId) -> Option<(NetId, TermIdx, TermIdx)> {
        if from == to {
            return None;
        }
        for &n in &self.module_nets[from.index()] {
            if !self.connected(from, to, n) {
                continue;
            }
            let mut out_term = None;
            let mut in_term = None;
            for pin in self.nets[n.index()].pins() {
                if let Pin::Sub { module, term } = *pin {
                    let ty = self.template_of(module).terminals()[term].ty();
                    if module == from && ty.drives_output() && out_term.is_none() {
                        out_term = Some(term);
                    }
                    if module == to && ty.accepts_input() && in_term.is_none() {
                        in_term = Some(term);
                    }
                }
            }
            if let (Some(o), Some(i)) = (out_term, in_term) {
                return Some((n, o, i));
            }
        }
        None
    }

    /// The net a pin is connected to, if any (the paper's `net`
    /// relation).
    pub fn pin_net(&self, pin: Pin) -> Option<NetId> {
        match pin {
            Pin::Sub { module, .. } => self.module_nets[module.index()]
                .iter()
                .copied()
                .find(|&n| self.nets[n.index()].pins.contains(&pin)),
            Pin::System(st) => self.system_term_net[st.index()],
        }
    }

    /// The type of a pin's terminal.
    pub fn pin_type(&self, pin: Pin) -> TermType {
        match pin {
            Pin::Sub { module, term } => self.template_of(module).terminals()[term].ty(),
            Pin::System(st) => self.system_terms[st.index()].ty,
        }
    }

    /// Human-readable pin description for diagnostics.
    pub fn pin_name(&self, pin: Pin) -> String {
        match pin {
            Pin::Sub { module, term } => format!(
                "{}.{}",
                self.instances[module.index()].name,
                self.template_of(module).terminals()[term].name()
            ),
            Pin::System(st) => self.system_terms[st.index()].name.clone(),
        }
    }
}

/// Incremental construction of a [`Network`].
///
/// See the crate-level example. All `connect*` calls are keyed by net
/// *name*; nets come into existence on first mention, mirroring the
/// net-list file of Appendix A where a net is just a name shared between
/// records.
///
/// Growth is allocation-checked: attach a [`MemBudget`] with
/// [`NetworkBuilder::with_budget`] and every instance, terminal, net
/// and pin charges its bytes before being stored. A refused charge
/// surfaces as [`BuildError::ResourceExhausted`] with exact byte
/// counts; without a budget the builder never refuses.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    library: Library,
    budget: Arc<MemBudget>,
    instances: Vec<Instance>,
    instance_names: HashMap<String, ModuleId>,
    system_terms: Vec<SystemTerminal>,
    system_names: HashMap<String, SystemTermId>,
    nets: Vec<Net>,
    net_names: HashMap<String, NetId>,
    pin_net: HashMap<Pin, NetId>,
}

impl NetworkBuilder {
    /// Starts building a network over the given module library.
    pub fn new(library: Library) -> Self {
        NetworkBuilder {
            library,
            budget: Arc::new(MemBudget::unlimited()),
            instances: Vec::new(),
            instance_names: HashMap::new(),
            system_terms: Vec::new(),
            system_names: HashMap::new(),
            nets: Vec::new(),
            net_names: HashMap::new(),
            pin_net: HashMap::new(),
        }
    }

    /// Governs all further growth by `budget`.
    pub fn with_budget(mut self, budget: Arc<MemBudget>) -> Self {
        self.budget = budget;
        self
    }

    /// Charges `bytes` for `stage`, converting a refusal into the
    /// builder's error type.
    fn charge(&self, stage: &'static str, bytes: u64) -> Result<(), BuildError> {
        crate::ingest::charge(&self.budget, stage, bytes).map_err(BuildError::from)
    }

    /// The library this builder instantiates from.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Adds a module instance of a template.
    ///
    /// # Errors
    ///
    /// Fails on duplicate instance names or unknown template ids.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        template: TemplateId,
    ) -> Result<ModuleId, BuildError> {
        let name = name.into();
        if self.instance_names.contains_key(&name) {
            return Err(BuildError::DuplicateInstance { name });
        }
        if template.index() >= self.library.len() {
            return Err(BuildError::UnknownTemplate {
                id: template.to_string(),
            });
        }
        // The name is stored twice (instance record + lookup key).
        self.charge(
            "network instances",
            2 * name.len() as u64
                + (std::mem::size_of::<Instance>() + std::mem::size_of::<(String, ModuleId)>())
                    as u64
                + MAP_ENTRY_OVERHEAD,
        )?;
        let id = ModuleId::from_index(self.instances.len());
        self.instance_names.insert(name.clone(), id);
        self.instances.push(Instance { name, template });
        Ok(id)
    }

    /// Adds a system terminal of the diagram.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names.
    pub fn add_system_terminal(
        &mut self,
        name: impl Into<String>,
        ty: TermType,
    ) -> Result<SystemTermId, BuildError> {
        let name = name.into();
        if self.system_names.contains_key(&name) {
            return Err(BuildError::DuplicateSystemTerminal { name });
        }
        self.charge(
            "network system terminals",
            2 * name.len() as u64
                + (std::mem::size_of::<SystemTerminal>()
                    + std::mem::size_of::<(String, SystemTermId)>()) as u64
                + MAP_ENTRY_OVERHEAD,
        )?;
        let id = SystemTermId::from_index(self.system_terms.len());
        self.system_names.insert(name.clone(), id);
        self.system_terms.push(SystemTerminal { name, ty });
        Ok(id)
    }

    fn net_id(&mut self, net: &str) -> Result<NetId, BuildError> {
        if let Some(&id) = self.net_names.get(net) {
            return Ok(id);
        }
        self.charge(
            "network nets",
            2 * net.len() as u64
                + (std::mem::size_of::<Net>() + std::mem::size_of::<(String, NetId)>()) as u64
                + MAP_ENTRY_OVERHEAD,
        )?;
        let id = NetId::from_index(self.nets.len());
        self.net_names.insert(net.to_owned(), id);
        self.nets.push(Net {
            name: net.to_owned(),
            pins: Vec::new(),
        });
        Ok(id)
    }

    fn attach(&mut self, net: &str, pin: Pin) -> Result<(), BuildError> {
        // Validate the pin before materialising the net, so a rejected
        // connection never leaves an empty ghost net behind.
        if let Some(&old) = self.pin_net.get(&pin) {
            if self.net_names.get(net) == Some(&old) {
                return Ok(()); // idempotent re-connection
            }
            return Err(BuildError::PinReconnected {
                pin: self.describe(pin),
                old_net: self.nets[old.index()].name.clone(),
                new_net: net.to_owned(),
            });
        }
        self.charge(
            "network pins",
            (std::mem::size_of::<Pin>() + std::mem::size_of::<(Pin, NetId)>()) as u64
                + MAP_ENTRY_OVERHEAD,
        )?;
        let id = self.net_id(net)?;
        self.pin_net.insert(pin, id);
        self.nets[id.index()].pins.push(pin);
        Ok(())
    }

    fn describe(&self, pin: Pin) -> String {
        match pin {
            Pin::Sub { module, term } => {
                let inst = &self.instances[module.index()];
                let tpl = self.library.template(inst.template);
                format!("{}.{}", inst.name, tpl.terminals()[term].name())
            }
            Pin::System(st) => self.system_terms[st.index()].name.clone(),
        }
    }

    /// Connects a system terminal to the named net.
    ///
    /// # Errors
    ///
    /// Fails when the terminal is already on a different net.
    pub fn connect(&mut self, net: &str, st: SystemTermId) -> Result<(), BuildError> {
        self.attach(net, Pin::System(st))
    }

    /// Connects a module terminal (by name) to the named net: one
    /// net-list-file record of Appendix A.
    ///
    /// # Errors
    ///
    /// Fails on unknown terminal names or when the pin is already on a
    /// different net.
    pub fn connect_pin(
        &mut self,
        net: &str,
        module: ModuleId,
        terminal: &str,
    ) -> Result<(), BuildError> {
        let inst = &self.instances[module.index()];
        let tpl = self.library.template(inst.template);
        let term = tpl
            .terminal_index(terminal)
            .ok_or_else(|| BuildError::UnknownTerminal {
                instance: inst.name.clone(),
                terminal: terminal.to_owned(),
            })?;
        self.attach(net, Pin::Sub { module, term })
    }

    /// Connects a module terminal by index.
    ///
    /// # Errors
    ///
    /// Fails when the index is out of range for the module's template,
    /// or when the pin is already on a different net.
    pub fn connect_pin_idx(
        &mut self,
        net: &str,
        module: ModuleId,
        term: TermIdx,
    ) -> Result<(), BuildError> {
        let inst = &self.instances[module.index()];
        let tpl = self.library.template(inst.template);
        if term >= tpl.terminal_count() {
            return Err(BuildError::UnknownTerminal {
                instance: inst.name.clone(),
                terminal: format!("#{term}"),
            });
        }
        self.attach(net, Pin::Sub { module, term })
    }

    /// Looks up an already-added instance by name.
    pub fn instance_by_name(&self, name: &str) -> Option<ModuleId> {
        self.instance_names.get(name).copied()
    }

    /// Looks up an already-added system terminal by name.
    pub fn system_term_by_name(&self, name: &str) -> Option<SystemTermId> {
        self.system_names.get(name).copied()
    }

    /// Validates and freezes the network.
    ///
    /// # Errors
    ///
    /// Fails when any net connects fewer than two pins (§5.3: "a net
    /// should be allowed to connect several points, but at least two").
    pub fn finish(self) -> Result<Network, BuildError> {
        for net in &self.nets {
            if net.pins.len() < 2 {
                return Err(BuildError::UnderfilledNet {
                    net: net.name.clone(),
                    pins: net.pins.len(),
                });
            }
        }
        // The connectivity indexes hold at most one NetId per pin on
        // the module side and one ModuleId per pin on the net side,
        // plus the per-module/net/terminal vector headers.
        let total_pins: u64 = self.nets.iter().map(|n| n.pins.len() as u64).sum();
        self.charge(
            "network indexes",
            total_pins
                * (std::mem::size_of::<NetId>() + std::mem::size_of::<ModuleId>()) as u64
                + (self.instances.len() + self.nets.len()) as u64
                    * std::mem::size_of::<Vec<NetId>>() as u64
                + self.system_terms.len() as u64 * std::mem::size_of::<Option<NetId>>() as u64,
        )?;
        let mut module_nets: Vec<Vec<NetId>> = vec![Vec::new(); self.instances.len()];
        let mut net_modules: Vec<Vec<ModuleId>> = vec![Vec::new(); self.nets.len()];
        let mut system_term_net = vec![None; self.system_terms.len()];
        for (i, net) in self.nets.iter().enumerate() {
            let n = NetId::from_index(i);
            for pin in &net.pins {
                match *pin {
                    Pin::Sub { module, .. } => {
                        module_nets[module.index()].push(n);
                        net_modules[i].push(module);
                    }
                    Pin::System(st) => system_term_net[st.index()] = Some(n),
                }
            }
        }
        for v in &mut module_nets {
            v.sort_unstable();
            v.dedup();
        }
        for v in &mut net_modules {
            v.sort_unstable();
            v.dedup();
        }
        Ok(Network {
            library: self.library,
            instances: self.instances,
            nets: self.nets,
            system_terms: self.system_terms,
            module_nets,
            net_modules,
            system_term_net,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Template;

    fn lib() -> (Library, TemplateId) {
        let mut lib = Library::new();
        let id = lib
            .add_template(
                Template::new("gate", (4, 4))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("b", (0, 3), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 2), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        (lib, id)
    }

    fn chain(n: usize) -> Network {
        let (lib, gate) = lib();
        let mut b = NetworkBuilder::new(lib);
        let ms: Vec<ModuleId> = (0..n)
            .map(|i| b.add_instance(format!("u{i}"), gate).unwrap())
            .collect();
        for w in ms.windows(2) {
            let net = format!("n_{}", w[0]);
            b.connect_pin(&net, w[0], "y").unwrap();
            b.connect_pin(&net, w[1], "a").unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let net = chain(3);
        assert_eq!(net.module_count(), 3);
        assert_eq!(net.net_count(), 2);
        let u0 = net.module_by_name("u0").unwrap();
        let u1 = net.module_by_name("u1").unwrap();
        let u2 = net.module_by_name("u2").unwrap();
        assert_eq!(net.connection_count(u0, u1), 1);
        assert_eq!(net.connection_count(u0, u2), 0);
        assert_eq!(net.module_nets(u1).len(), 2);
        let n0 = net.net_by_name("n_m0").unwrap();
        assert!(net.connected(u0, u1, n0));
        assert!(!net.connected(u0, u2, n0));
        assert_eq!(net.net_modules(n0), &[u0, u1]);
    }

    #[test]
    fn drives_follows_out_to_in() {
        let net = chain(2);
        let u0 = net.module_by_name("u0").unwrap();
        let u1 = net.module_by_name("u1").unwrap();
        let (n, o, i) = net.drives(u0, u1).expect("u0 drives u1");
        assert_eq!(net.net(n).name(), "n_m0");
        assert_eq!(net.template_of(u0).terminals()[o].name(), "y");
        assert_eq!(net.template_of(u1).terminals()[i].name(), "a");
        assert!(net.drives(u1, u0).is_none());
        assert!(net.drives(u0, u0).is_none());
    }

    #[test]
    fn system_terminals() {
        let (lib, gate) = lib();
        let mut b = NetworkBuilder::new(lib);
        let u = b.add_instance("u", gate).unwrap();
        let st = b.add_system_terminal("clk", TermType::In).unwrap();
        b.connect("n", st).unwrap();
        b.connect_pin("n", u, "a").unwrap();
        let net = b.finish().unwrap();
        assert_eq!(net.system_term_count(), 1);
        assert_eq!(net.system_term(st).name(), "clk");
        assert_eq!(net.system_term_net(st), Some(net.net_by_name("n").unwrap()));
        assert_eq!(net.pin_type(Pin::System(st)), TermType::In);
        assert_eq!(net.pin_name(Pin::System(st)), "clk");
        assert_eq!(net.pin_name(Pin::Sub { module: u, term: 0 }), "u.a");
    }

    #[test]
    fn duplicate_names_rejected() {
        let (lib, gate) = lib();
        let mut b = NetworkBuilder::new(lib);
        b.add_instance("u", gate).unwrap();
        assert!(matches!(
            b.add_instance("u", gate),
            Err(BuildError::DuplicateInstance { .. })
        ));
        b.add_system_terminal("x", TermType::In).unwrap();
        assert!(b.add_system_terminal("x", TermType::Out).is_err());
    }

    #[test]
    fn unknown_references_rejected() {
        let (lib, gate) = lib();
        let mut b = NetworkBuilder::new(lib);
        let u = b.add_instance("u", gate).unwrap();
        assert!(matches!(
            b.connect_pin("n", u, "zz"),
            Err(BuildError::UnknownTerminal { .. })
        ));
        assert!(b.connect_pin_idx("n", u, 99).is_err());
        assert!(matches!(
            b.add_instance("v", TemplateId::from_index(42)),
            Err(BuildError::UnknownTemplate { .. })
        ));
    }

    #[test]
    fn reconnection_rules() {
        let (lib, gate) = lib();
        let mut b = NetworkBuilder::new(lib);
        let u = b.add_instance("u", gate).unwrap();
        b.connect_pin("n1", u, "a").unwrap();
        // Idempotent: same pin, same net.
        b.connect_pin("n1", u, "a").unwrap();
        // Conflict: same pin, different net.
        assert!(matches!(
            b.connect_pin("n2", u, "a"),
            Err(BuildError::PinReconnected { .. })
        ));
    }

    #[test]
    fn underfilled_net_rejected() {
        let (lib, gate) = lib();
        let mut b = NetworkBuilder::new(lib);
        let u = b.add_instance("u", gate).unwrap();
        b.connect_pin("lonely", u, "a").unwrap();
        assert!(matches!(
            b.finish(),
            Err(BuildError::UnderfilledNet { pins: 1, .. })
        ));
    }

    #[test]
    fn connection_count_to_set() {
        let net = chain(4);
        let ids: Vec<ModuleId> = net.modules().collect();
        // u1 connects to {u0, u2} with one net each.
        let placed = [ids[0], ids[2]];
        assert_eq!(
            net.connection_count_to_set(ids[1], |m| placed.contains(&m)),
            2
        );
        assert_eq!(net.connection_count_to_set(ids[3], |m| placed.contains(&m)), 1);
        assert_eq!(net.connection_count_to_set(ids[0], |_| false), 0);
    }

    #[test]
    fn multipoint_net_counted_once() {
        let (lib, gate) = lib();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", gate).unwrap();
        let u1 = b.add_instance("u1", gate).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        b.connect_pin("n", u1, "b").unwrap();
        let net = b.finish().unwrap();
        assert_eq!(net.connection_count(u0, u1), 1);
        assert_eq!(net.net(net.net_by_name("n").unwrap()).pins().len(), 3);
    }
}
