//! The netlist doctor: semantic validation and auto-repair between
//! parse and placement.
//!
//! Real-world netlist inputs are noisy — dangling nets, duplicate
//! records, references to templates that never made it into the
//! library, terminals drawn off the module outline. The plain
//! [`crate::format`] parsers fail fast on the first such defect; the
//! doctor instead scans the *whole* input leniently, collects every
//! defect as a [`Diagnostic`] with a stable code (`ND001`…), and then
//! resolves them under an [`InputPolicy`]:
//!
//! * [`InputPolicy::Strict`] — any error-severity diagnostic rejects
//!   the input, reporting **all** diagnostics at once (not just the
//!   first).
//! * [`InputPolicy::Repair`] — documented fixes are applied (drop
//!   degenerate nets, keep the first of duplicate records, synthesize
//!   stub templates, snap coordinates to grid/boundary); a defect with
//!   no documented fix still rejects the input.
//! * [`InputPolicy::BestEffort`] — as `Repair`, but unrepairable
//!   records are skipped and the run keeps going.
//!
//! Every applied repair is reported in the [`DoctorReport`] so callers
//! can surface them as degradations in the machine-readable run
//! report.
//!
//! # Examples
//!
//! ```
//! use netart_netlist::doctor::{doctor_network, DoctorCode, InputPolicy};
//! use netart_netlist::{Library, Template, TermType};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lib = Library::new();
//! lib.add_template(Template::new("inv", (4, 2))?
//!     .with_terminal("a", (0, 1), TermType::In)?
//!     .with_terminal("y", (4, 1), TermType::Out)?)?;
//! // `lonely` connects a single pin: strict rejects, repair drops it.
//! let nets = "n0 u0 y\nn0 u1 a\nlonely u0 a\n";
//! let calls = "u0 inv\nu1 inv\n";
//! assert!(doctor_network(lib.clone(), nets, calls, None, InputPolicy::Strict).is_err());
//! let (network, report) =
//!     doctor_network(lib, nets, calls, None, InputPolicy::Repair)?;
//! assert_eq!(network.net_count(), 1);
//! assert_eq!(report.diagnostics[0].code, DoctorCode::DanglingNet);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use netart_govern::{Exhausted, MemBudget};

use crate::format::NetworkFile;
use crate::ingest::{records_from_str, Record};
use crate::{BuildError, Library, Network, NetworkBuilder, Template, TermType};

/// How the pipeline treats defective input, end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputPolicy {
    /// Reject defective input, reporting every diagnostic at once.
    #[default]
    Strict,
    /// Apply documented repairs; reject only defects with no repair.
    Repair,
    /// Apply repairs and skip past unrepairable records.
    BestEffort,
}

impl InputPolicy {
    /// The command-line spelling of the policy.
    pub fn as_str(self) -> &'static str {
        match self {
            InputPolicy::Strict => "strict",
            InputPolicy::Repair => "repair",
            InputPolicy::BestEffort => "best-effort",
        }
    }
}

impl fmt::Display for InputPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for InputPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(InputPolicy::Strict),
            "repair" => Ok(InputPolicy::Repair),
            "best-effort" => Ok(InputPolicy::BestEffort),
            other => Err(format!(
                "unknown input policy `{other}` (expected strict, repair or best-effort)"
            )),
        }
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Suspicious but valid; never rejects the input.
    Warning,
    /// A defect; rejects the input under [`InputPolicy::Strict`].
    Error,
}

/// The stable diagnostic catalogue. Codes are part of the CLI
/// contract: scripts match on them, so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoctorCode {
    /// `ND000` — a failure induced by the fault-injection harness.
    /// Only ever produced in builds with the `fault-injection` feature.
    InjectedFault,
    /// `ND001` — a net connecting fewer than two pins.
    DanglingNet,
    /// `ND002` — two call-file records declare the same instance name.
    DuplicateInstance,
    /// `ND003` — two io-file records declare the same terminal name.
    DuplicateSystemTerminal,
    /// `ND004` — a call-file record names a template the library does
    /// not have.
    UnknownTemplate,
    /// `ND005` — a net-list record names an undeclared instance.
    UnknownInstance,
    /// `ND006` — a net-list record names a terminal its instance (or
    /// the system interface) does not have.
    UnknownTerminal,
    /// `ND007` — the same pin is claimed by two different nets.
    PinConflict,
    /// `ND008` — a quinto coordinate is not divisible by 10.
    OffGridCoordinate,
    /// `ND009` — a quinto terminal does not lie on the module outline.
    TerminalOffBoundary,
    /// `ND010` — a quinto terminal duplicates a name or position.
    DuplicateTerminal,
    /// `ND011` — module outputs drive each other in a cycle
    /// (combinational loop); legal but worth flagging.
    CyclicDrivers,
    /// `ND012` — two seed placements overlap.
    OverlappingSeeds,
    /// `ND013` — a record that cannot be understood at all.
    MalformedRecord,
    /// `ND014` — two library modules share a name.
    DuplicateTemplate,
    /// `ND015` — the memory governor refused a growth during
    /// ingestion; the message names the exhausted stage and byte
    /// counts. Never downgraded: an exhausted budget cannot be
    /// repaired or skipped, so the input is rejected under **every**
    /// policy (the CLI surfaces it as a degraded run, not a crash).
    ResourceExhausted,
}

impl DoctorCode {
    /// The stable code string (`ND001`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            DoctorCode::InjectedFault => "ND000",
            DoctorCode::DanglingNet => "ND001",
            DoctorCode::DuplicateInstance => "ND002",
            DoctorCode::DuplicateSystemTerminal => "ND003",
            DoctorCode::UnknownTemplate => "ND004",
            DoctorCode::UnknownInstance => "ND005",
            DoctorCode::UnknownTerminal => "ND006",
            DoctorCode::PinConflict => "ND007",
            DoctorCode::OffGridCoordinate => "ND008",
            DoctorCode::TerminalOffBoundary => "ND009",
            DoctorCode::DuplicateTerminal => "ND010",
            DoctorCode::CyclicDrivers => "ND011",
            DoctorCode::OverlappingSeeds => "ND012",
            DoctorCode::MalformedRecord => "ND013",
            DoctorCode::DuplicateTemplate => "ND014",
            DoctorCode::ResourceExhausted => "ND015",
        }
    }
}

impl fmt::Display for DoctorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which input a diagnostic points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoctorFile {
    /// The Appendix A net-list file.
    NetList,
    /// The Appendix A call file.
    Calls,
    /// The Appendix A io file.
    Io,
    /// A quinto module description.
    Module,
    /// A seed placement diagram.
    Seed,
}

impl DoctorFile {
    fn tag(self) -> &'static str {
        match self {
            DoctorFile::NetList => "net",
            DoctorFile::Calls => "call",
            DoctorFile::Io => "io",
            DoctorFile::Module => "module",
            DoctorFile::Seed => "seed",
        }
    }
}

impl From<NetworkFile> for DoctorFile {
    fn from(f: NetworkFile) -> Self {
        match f {
            NetworkFile::NetList => DoctorFile::NetList,
            NetworkFile::Calls => DoctorFile::Calls,
            NetworkFile::Io => DoctorFile::Io,
        }
    }
}

/// One defect (or suspicion) found by the doctor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Catalogue code.
    pub code: DoctorCode,
    /// Whether the defect rejects strict input.
    pub severity: Severity,
    /// The input the defect was found in.
    pub file: DoctorFile,
    /// 1-based line number (0 when not tied to a line).
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The documented fix, when the doctor has one. Present means the
    /// fix *was applied* whenever the doctor returns `Ok` under
    /// [`InputPolicy::Repair`] or [`InputPolicy::BestEffort`].
    pub repair: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic with no repair.
    pub fn error(
        code: DoctorCode,
        file: DoctorFile,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            file,
            line,
            message: message.into(),
            repair: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: DoctorCode,
        file: DoctorFile,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, file, line, message)
        }
    }

    /// Attaches the documented fix, consuming and returning `self`.
    pub fn with_repair(mut self, repair: impl Into<String>) -> Self {
        self.repair = Some(repair.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} [{}:{}] {}", self.code, self.file.tag(), self.line, self.message)?;
        } else {
            write!(f, "{} [{}] {}", self.code, self.file.tag(), self.message)?;
        }
        if let Some(repair) = &self.repair {
            write!(f, " (repair: {repair})")?;
        }
        Ok(())
    }
}

/// What the doctor found and did on an input it accepted.
#[derive(Debug, Clone, Default)]
pub struct DoctorReport {
    /// Everything found, in scan order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many of the diagnostics had their repair applied.
    pub repairs_applied: usize,
}

impl DoctorReport {
    fn resolve(diagnostics: Vec<Diagnostic>) -> Self {
        // One warning event per applied repair, so repairs show up in
        // diagnostic streams and trace files alongside the phases they
        // precede.
        for d in diagnostics.iter().filter(|d| d.repair.is_some()) {
            tracing::warn!(
                "doctor repair applied",
                code = d.code.as_str(),
                file = d.file.tag(),
                line = d.line as u64,
            );
        }
        let repairs_applied = diagnostics.iter().filter(|d| d.repair.is_some()).count();
        DoctorReport {
            diagnostics,
            repairs_applied,
        }
    }
}

/// Rejection of an input, carrying **every** diagnostic found — not
/// just the one that sealed the verdict.
#[derive(Debug, Clone)]
pub struct DoctorError {
    /// Everything found, in scan order.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for DoctorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        writeln!(f, "input rejected with {errors} error(s):")?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl Error for DoctorError {}

/// Decides `Ok`/`Err` once all diagnostics are in.
fn resolve_policy(
    policy: InputPolicy,
    diagnostics: Vec<Diagnostic>,
) -> Result<Vec<Diagnostic>, DoctorError> {
    let reject = match policy {
        InputPolicy::Strict => diagnostics.iter().any(|d| d.severity == Severity::Error),
        InputPolicy::Repair => diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.repair.is_none()),
        InputPolicy::BestEffort => false,
    };
    if reject {
        Err(DoctorError { diagnostics })
    } else {
        Ok(diagnostics)
    }
}

/// Wraps a governor refusal as the `ND015` rejection: one
/// error-severity diagnostic carrying the exhausted stage and exact
/// byte counts. Public so the CLI can report read-stage exhaustion
/// (which happens before the doctor runs) in the same shape.
pub fn resource_exhausted(file: DoctorFile, e: &Exhausted) -> DoctorError {
    DoctorError {
        diagnostics: vec![Diagnostic::error(
            DoctorCode::ResourceExhausted,
            file,
            0,
            e.to_string(),
        )],
    }
}

fn injected_fault(file: DoctorFile, kind: &str) -> DoctorError {
    DoctorError {
        diagnostics: vec![Diagnostic::error(
            DoctorCode::InjectedFault,
            file,
            0,
            format!("injected `{kind}` fault"),
        )],
    }
}

/// A net-list record that survived the field-count check.
struct NetRecord<'a> {
    line: usize,
    net: &'a str,
    instance: &'a str,
    terminal: &'a str,
}

/// A resolved connection point, keyed by name so conflicts can be
/// detected before ids exist.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NamedPin {
    Sub(String, String),
    System(String),
}

/// Runs the doctor over the three Appendix A files.
///
/// This is the lenient sibling of [`crate::format::parse_network`]: it
/// scans everything, diagnoses every defect, and — depending on
/// `policy` — repairs or rejects. On success the returned network is
/// always structurally valid (placement and routing can take it as-is)
/// and the report lists what was found and fixed.
///
/// # Errors
///
/// Returns a [`DoctorError`] carrying all diagnostics when the policy
/// rejects the input (see [`InputPolicy`]).
pub fn doctor_network(
    library: Library,
    net_list_file: &str,
    call_file: &str,
    io_file: Option<&str>,
    policy: InputPolicy,
) -> Result<(Network, DoctorReport), DoctorError> {
    doctor_network_records(
        library,
        records_from_str(net_list_file),
        records_from_str(call_file),
        io_file.map(records_from_str),
        policy,
        &Arc::new(MemBudget::unlimited()),
    )
}

/// The record-level core of [`doctor_network`], fed by the streaming
/// reader ([`crate::ingest::read_records`]) so no whole-file string
/// ever exists. Network construction is governed by `network_budget`:
/// a refused growth rejects the input with an `ND015` diagnostic
/// carrying the exhausted stage and byte counts, under **every**
/// policy.
///
/// # Errors
///
/// As [`doctor_network`], plus the `ND015` rejection on budget
/// exhaustion.
pub fn doctor_network_records(
    library: Library,
    net_records: Vec<Record>,
    call_records: Vec<Record>,
    io_records: Option<Vec<Record>>,
    policy: InputPolicy,
    network_budget: &Arc<MemBudget>,
) -> Result<(Network, DoctorReport), DoctorError> {
    let doctor_span = tracing::span!(tracing::Level::DEBUG, "doctor.network");
    let _doctor_guard = doctor_span.enter();
    if let Some(kind) = netart_fault::fire(netart_fault::sites::PARSE_NETWORK) {
        return Err(injected_fault(DoctorFile::NetList, kind.as_str()));
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut library = library;

    // Pass 1: call file. Keep the first of duplicate instances; note
    // which templates are missing so stubs can be synthesized.
    let mut instances: Vec<(String, String)> = Vec::new(); // (instance, template)
    let mut instance_tpl: HashMap<&str, String> = HashMap::new();
    let mut unknown_templates: Vec<(String, usize)> = Vec::new(); // (template, first line)
    for r in &call_records {
        let line = &r.line;
        let [instance, template] = &r.fields[..] else {
            diags.push(Diagnostic::error(
                DoctorCode::MalformedRecord,
                DoctorFile::Calls,
                *line,
                format!("call-file record needs 2 fields, got {}", r.fields.len()),
            ));
            continue;
        };
        if let Some(existing) = instance_tpl.get(instance.as_str()) {
            diags.push(
                Diagnostic::error(
                    DoctorCode::DuplicateInstance,
                    DoctorFile::Calls,
                    *line,
                    format!(
                        "duplicate instance `{instance}` (already declared as `{existing}`, \
                         now also as `{template}`)"
                    ),
                )
                .with_repair("kept the first declaration"),
            );
            continue;
        }
        if library.template_by_name(template).is_none()
            && !unknown_templates.iter().any(|(t, _)| t == template)
        {
            unknown_templates.push((template.to_owned(), *line));
        }
        instance_tpl.insert(instance.as_str(), template.to_owned());
        instances.push((instance.to_owned(), template.to_owned()));
    }

    // Pass 2: io file. Keep the first of duplicate system terminals.
    let mut system_terms: Vec<(String, TermType)> = Vec::new();
    let mut system_names: HashSet<String> = HashSet::new();
    if let Some(io) = &io_records {
        for r in io {
            let line = r.line;
            let [terminal, ty] = &r.fields[..] else {
                diags.push(Diagnostic::error(
                    DoctorCode::MalformedRecord,
                    DoctorFile::Io,
                    line,
                    format!("io-file record needs 2 fields, got {}", r.fields.len()),
                ));
                continue;
            };
            let Ok(ty) = ty.parse::<TermType>() else {
                diags.push(Diagnostic::error(
                    DoctorCode::MalformedRecord,
                    DoctorFile::Io,
                    line,
                    format!("unknown terminal type `{ty}`"),
                ));
                continue;
            };
            if !system_names.insert(terminal.to_owned()) {
                diags.push(
                    Diagnostic::error(
                        DoctorCode::DuplicateSystemTerminal,
                        DoctorFile::Io,
                        line,
                        format!("duplicate system terminal `{terminal}`"),
                    )
                    .with_repair("kept the first declaration"),
                );
                continue;
            }
            system_terms.push((terminal.to_owned(), ty));
        }
    }

    // Pass 3: net-list records, field-count check only for now.
    let mut net_rows: Vec<NetRecord> = Vec::new();
    for r in &net_records {
        let [net, instance, terminal] = &r.fields[..] else {
            diags.push(Diagnostic::error(
                DoctorCode::MalformedRecord,
                DoctorFile::NetList,
                r.line,
                format!("net-list record needs 3 fields, got {}", r.fields.len()),
            ));
            continue;
        };
        net_rows.push(NetRecord {
            line: r.line,
            net,
            instance,
            terminal,
        });
    }

    // Synthesize a stub for each missing template, giving it exactly
    // the terminals the net-list references (all inout, stacked on the
    // left edge) so every connection to it can resolve.
    for (template, first_line) in &unknown_templates {
        let mut referenced: Vec<&str> = net_rows
            .iter()
            .filter(|r| {
                r.instance != "root"
                    && instance_tpl.get(r.instance).map(String::as_str) == Some(template.as_str())
            })
            .map(|r| r.terminal)
            .collect();
        referenced.sort_unstable();
        referenced.dedup();
        diags.push(
            Diagnostic::error(
                DoctorCode::UnknownTemplate,
                DoctorFile::Calls,
                *first_line,
                format!("unknown template `{template}`"),
            )
            .with_repair(format!(
                "synthesized a stub with {} inout terminal(s)",
                referenced.len()
            )),
        );
        let height = (2 * referenced.len() as i32).max(2);
        let mut stub = match Template::new(template.clone(), (4, height)) {
            Ok(t) => t,
            Err(e) => {
                // Unreachable: the size above is always positive. Keep
                // the defect visible rather than panicking.
                diags.push(Diagnostic::error(
                    DoctorCode::MalformedRecord,
                    DoctorFile::Calls,
                    *first_line,
                    format!("stub synthesis failed: {e}"),
                ));
                continue;
            }
        };
        for (i, name) in referenced.iter().enumerate() {
            if let Err(e) = stub.add_terminal(*name, (0, 2 * i as i32 + 1), TermType::InOut) {
                diags.push(Diagnostic::error(
                    DoctorCode::MalformedRecord,
                    DoctorFile::Calls,
                    *first_line,
                    format!("stub synthesis failed: {e}"),
                ));
            }
        }
        if let Err(e) = library.add_template(stub) {
            diags.push(Diagnostic::error(
                DoctorCode::MalformedRecord,
                DoctorFile::Calls,
                *first_line,
                format!("stub synthesis failed: {e}"),
            ));
        }
    }

    // Pass 4: resolve every net-list record against the (now complete)
    // instance/terminal universe. First writer wins on pin conflicts.
    let instance_names: HashSet<&str> = instances.iter().map(|(n, _)| n.as_str()).collect();
    let mut pin_owner: HashMap<NamedPin, String> = HashMap::new();
    let mut net_pins: Vec<(String, Vec<(NamedPin, usize)>)> = Vec::new(); // (net, [(pin, line)])
    let mut net_index: HashMap<String, usize> = HashMap::new();
    for r in &net_rows {
        let pin = if r.instance == "root" {
            if !system_names.contains(r.terminal) {
                diags.push(
                    Diagnostic::error(
                        DoctorCode::UnknownTerminal,
                        DoctorFile::NetList,
                        r.line,
                        format!("unknown system terminal `{}`", r.terminal),
                    )
                    .with_repair("dropped the record"),
                );
                continue;
            }
            NamedPin::System(r.terminal.to_owned())
        } else {
            if !instance_names.contains(r.instance) {
                diags.push(
                    Diagnostic::error(
                        DoctorCode::UnknownInstance,
                        DoctorFile::NetList,
                        r.line,
                        format!("unknown instance `{}`", r.instance),
                    )
                    .with_repair("dropped the record"),
                );
                continue;
            }
            let template = &instance_tpl[r.instance];
            let known = library
                .template_by_name(template)
                .map(|id| library.template(id))
                .is_some_and(|t| t.terminal_index(r.terminal).is_some());
            if !known {
                diags.push(
                    Diagnostic::error(
                        DoctorCode::UnknownTerminal,
                        DoctorFile::NetList,
                        r.line,
                        format!(
                            "instance `{}` ({}) has no terminal `{}`",
                            r.instance, template, r.terminal
                        ),
                    )
                    .with_repair("dropped the record"),
                );
                continue;
            }
            NamedPin::Sub(r.instance.to_owned(), r.terminal.to_owned())
        };
        match pin_owner.get(&pin) {
            Some(owner) if owner == r.net => continue, // idempotent re-connection
            Some(owner) => {
                let pin_name = match &pin {
                    NamedPin::Sub(i, t) => format!("{i}.{t}"),
                    NamedPin::System(s) => s.clone(),
                };
                diags.push(
                    Diagnostic::error(
                        DoctorCode::PinConflict,
                        DoctorFile::NetList,
                        r.line,
                        format!(
                            "pin {pin_name} already on net `{owner}`, also claimed by `{}`",
                            r.net
                        ),
                    )
                    .with_repair("kept the first connection"),
                );
                continue;
            }
            None => {}
        }
        pin_owner.insert(pin.clone(), r.net.to_owned());
        let idx = *net_index.entry(r.net.to_owned()).or_insert_with(|| {
            net_pins.push((r.net.to_owned(), Vec::new()));
            net_pins.len() - 1
        });
        net_pins[idx].1.push((pin, r.line));
    }

    // Pass 5: drop nets that ended up with fewer than two pins.
    net_pins.retain(|(net, pins)| {
        if pins.len() >= 2 {
            return true;
        }
        let line = pins.first().map_or(0, |(_, l)| *l);
        diags.push(
            Diagnostic::error(
                DoctorCode::DanglingNet,
                DoctorFile::NetList,
                line,
                format!("net `{net}` connects only {} point(s)", pins.len()),
            )
            .with_repair("dropped the net"),
        );
        false
    });

    let diags = resolve_policy(policy, diags)?;

    // Build the validated network. Every defect was diagnosed and
    // resolved above, so the only legitimate builder rejection left is
    // the memory governor refusing a growth — that one surfaces as
    // `ND015` under every policy.
    let mut b = NetworkBuilder::new(library).with_budget(Arc::clone(network_budget));
    let fatal = |e: String| DoctorError {
        diagnostics: vec![Diagnostic::error(
            DoctorCode::MalformedRecord,
            DoctorFile::NetList,
            0,
            format!("internal doctor error: {e}"),
        )],
    };
    let build_err = |e: BuildError| match e {
        BuildError::ResourceExhausted(x) => resource_exhausted(DoctorFile::NetList, &x),
        other => fatal(other.to_string()),
    };
    for (name, template) in &instances {
        let id = b
            .library()
            .template_by_name(template)
            .ok_or_else(|| fatal(format!("template `{template}` vanished")))?;
        b.add_instance(name, id).map_err(build_err)?;
    }
    for (name, ty) in &system_terms {
        b.add_system_terminal(name, *ty).map_err(build_err)?;
    }
    for (net, pins) in &net_pins {
        for (pin, _) in pins {
            match pin {
                NamedPin::Sub(instance, terminal) => {
                    let m = b
                        .instance_by_name(instance)
                        .ok_or_else(|| fatal(format!("instance `{instance}` vanished")))?;
                    b.connect_pin(net, m, terminal).map_err(build_err)?;
                }
                NamedPin::System(name) => {
                    let st = b
                        .system_term_by_name(name)
                        .ok_or_else(|| fatal(format!("system terminal `{name}` vanished")))?;
                    b.connect(net, st).map_err(build_err)?;
                }
            }
        }
    }
    let network = b.finish().map_err(build_err)?;

    let mut diags = diags;
    if let Some(cycle) = find_driver_cycle(&network) {
        diags.push(Diagnostic::warning(
            DoctorCode::CyclicDrivers,
            DoctorFile::NetList,
            0,
            format!("module outputs form a driver cycle: {cycle}"),
        ));
    }

    Ok((network, DoctorReport::resolve(diags)))
}

/// Looks for a cycle along pure `out` → `in`/`inout` driver edges.
/// Inout-to-inout connections are ignored: with them, every
/// bidirectional bus would count as a cycle.
fn find_driver_cycle(network: &Network) -> Option<String> {
    let n = network.module_count();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for net in network.nets() {
        let pins = network.net(net).pins();
        for a in pins {
            let crate::Pin::Sub { module: from, term } = *a else {
                continue;
            };
            if network.template_of(from).terminals()[term].ty() != TermType::Out {
                continue;
            }
            for b in pins {
                let crate::Pin::Sub { module: to, term } = *b else {
                    continue;
                };
                if to != from
                    && network.template_of(to).terminals()[term].ty().accepts_input()
                    && !succ[from.index()].contains(&to.index())
                {
                    succ[from.index()].push(to.index());
                }
            }
        }
    }

    // Iterative colored DFS; on a back edge, walk the stack to print
    // the cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = GRAY;
        while let Some(&mut (m, ref mut next)) = stack.last_mut() {
            if *next < succ[m].len() {
                let s = succ[m][*next];
                *next += 1;
                match color[s] {
                    WHITE => {
                        color[s] = GRAY;
                        stack.push((s, 0));
                    }
                    GRAY => {
                        let start = stack.iter().position(|&(v, _)| v == s).unwrap_or(0);
                        let mut names: Vec<&str> = stack[start..]
                            .iter()
                            .map(|&(v, _)| {
                                network.instance(crate::ModuleId::from_index(v)).name()
                            })
                            .collect();
                        names.push(names[0]);
                        return Some(names.join(" -> "));
                    }
                    _ => {}
                }
            } else {
                color[m] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// Runs the doctor over one quinto module description.
///
/// The lenient sibling of [`crate::format::quinto::parse_module`]:
/// off-grid coordinates are snapped to the nearest multiple of 10,
/// off-boundary terminals are snapped to the nearest outline point,
/// and duplicate terminal names/positions keep the first record —
/// each under the usual policy rules.
///
/// # Errors
///
/// Returns a [`DoctorError`] carrying all diagnostics when the policy
/// rejects the description.
pub fn doctor_module(
    src: &str,
    policy: InputPolicy,
) -> Result<(Template, DoctorReport), DoctorError> {
    doctor_module_records(records_from_str(src), policy)
}

/// The record-level core of [`doctor_module`], fed by the streaming
/// reader ([`crate::ingest::read_records`]) so no whole-file string
/// ever exists.
///
/// # Errors
///
/// As [`doctor_module`].
pub fn doctor_module_records(
    module_records: Vec<Record>,
    policy: InputPolicy,
) -> Result<(Template, DoctorReport), DoctorError> {
    let doctor_span = tracing::span!(tracing::Level::DEBUG, "doctor.module");
    let _doctor_guard = doctor_span.enter();
    if let Some(kind) = netart_fault::fire(netart_fault::sites::PARSE_MODULE) {
        return Err(injected_fault(DoctorFile::Module, kind.as_str()));
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut lines = module_records.into_iter();

    // The heading is load-bearing: without a usable name and size,
    // nothing else can be interpreted, so defects here are
    // unrepairable.
    let unusable = |diags: Vec<Diagnostic>| DoctorError { diagnostics: diags };
    let Some(heading) = lines.next() else {
        diags.push(Diagnostic::error(
            DoctorCode::MalformedRecord,
            DoctorFile::Module,
            0,
            "empty module description",
        ));
        return Err(unusable(diags));
    };
    let hline = heading.line;
    let fields: Vec<&str> = heading.fields.iter().map(String::as_str).collect();
    let ["module", name, w, h] = fields[..] else {
        diags.push(Diagnostic::error(
            DoctorCode::MalformedRecord,
            DoctorFile::Module,
            hline,
            "heading must be `module <NAME> <WIDTH> <HEIGHT>`",
        ));
        return Err(unusable(diags));
    };
    let grid = |field: &str, what: &str, line: usize, diags: &mut Vec<Diagnostic>| {
        let v: i32 = match field.parse() {
            Ok(v) => v,
            Err(_) => {
                diags.push(Diagnostic::error(
                    DoctorCode::MalformedRecord,
                    DoctorFile::Module,
                    line,
                    format!("{what} `{field}` is not an integer"),
                ));
                return None;
            }
        };
        if v % 10 == 0 {
            return Some(v / 10);
        }
        let snapped = ((v + if v >= 0 { 5 } else { -5 }) / 10) * 10;
        let snapped = if what.ends_with("coordinate") {
            snapped
        } else {
            snapped.max(10) // a size snapped to 0 would be degenerate
        };
        diags.push(
            Diagnostic::error(
                DoctorCode::OffGridCoordinate,
                DoctorFile::Module,
                line,
                format!("{what} {v} is not divisible by 10"),
            )
            .with_repair(format!("snapped to {snapped}")),
        );
        Some(snapped / 10)
    };

    let (Some(width), Some(height)) = (
        grid(w, "width", hline, &mut diags),
        grid(h, "height", hline, &mut diags),
    ) else {
        return Err(unusable(diags));
    };
    let mut template = match Template::new(name, (width, height)) {
        Ok(t) => t,
        Err(e) => {
            diags.push(Diagnostic::error(
                DoctorCode::MalformedRecord,
                DoctorFile::Module,
                hline,
                e.to_string(),
            ));
            return Err(unusable(diags));
        }
    };

    for rec in lines {
        let line = rec.line;
        let fields: Vec<&str> = rec.fields.iter().map(String::as_str).collect();
        let [ty, term, x, y] = fields[..] else {
            diags.push(Diagnostic::error(
                DoctorCode::MalformedRecord,
                DoctorFile::Module,
                line,
                format!("terminal record needs 4 fields, got {}", fields.len()),
            ));
            continue;
        };
        let Ok(ty) = ty.parse::<TermType>() else {
            diags.push(Diagnostic::error(
                DoctorCode::MalformedRecord,
                DoctorFile::Module,
                line,
                format!("unknown terminal type `{ty}`"),
            ));
            continue;
        };
        let (Some(mut x), Some(mut y)) = (
            grid(x, "x-coordinate", line, &mut diags),
            grid(y, "y-coordinate", line, &mut diags),
        ) else {
            continue;
        };
        if !on_outline(width, height, x, y) {
            let (sx, sy) = snap_to_outline(width, height, x, y);
            diags.push(
                Diagnostic::error(
                    DoctorCode::TerminalOffBoundary,
                    DoctorFile::Module,
                    line,
                    format!(
                        "terminal `{term}` at ({}, {}) is not on the module outline",
                        x * 10,
                        y * 10
                    ),
                )
                .with_repair(format!("moved to ({}, {})", sx * 10, sy * 10)),
            );
            (x, y) = (sx, sy);
        }
        let dup_name = template.terminal_index(term).is_some();
        let dup_pos = template
            .terminals()
            .iter()
            .any(|t| (t.offset().x, t.offset().y) == (x, y));
        if dup_name || dup_pos {
            let what = if dup_name { "name" } else { "position" };
            diags.push(
                Diagnostic::error(
                    DoctorCode::DuplicateTerminal,
                    DoctorFile::Module,
                    line,
                    format!(
                        "terminal `{term}` at ({}, {}) duplicates an earlier terminal's {what}",
                        x * 10,
                        y * 10
                    ),
                )
                .with_repair("dropped the record"),
            );
            continue;
        }
        if let Err(e) = template.add_terminal(term, (x, y), ty) {
            diags.push(Diagnostic::error(
                DoctorCode::MalformedRecord,
                DoctorFile::Module,
                line,
                e.to_string(),
            ));
        }
    }

    let diags = resolve_policy(policy, diags)?;
    Ok((template, DoctorReport::resolve(diags)))
}

fn on_outline(w: i32, h: i32, x: i32, y: i32) -> bool {
    (0..=w).contains(&x) && (0..=h).contains(&y) && (x == 0 || x == w || y == 0 || y == h)
}

/// The nearest outline point by Manhattan distance: project onto each
/// of the four edges (clamping the free coordinate) and take the best.
fn snap_to_outline(w: i32, h: i32, x: i32, y: i32) -> (i32, i32) {
    let xc = x.clamp(0, w);
    let yc = y.clamp(0, h);
    let candidates = [(0, yc), (w, yc), (xc, 0), (xc, h)];
    let mut best = candidates[0];
    let mut best_d = i32::MAX;
    for (cx, cy) in candidates {
        let d = (cx - x).abs() + (cy - y).abs();
        if d < best_d {
            best_d = d;
            best = (cx, cy);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Template;

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.add_template(
            Template::new("inv", (4, 2))
                .unwrap()
                .with_terminal("a", (0, 1), TermType::In)
                .unwrap()
                .with_terminal("y", (4, 1), TermType::Out)
                .unwrap(),
        )
        .unwrap();
        lib
    }

    const GOOD_NETS: &str = "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\n";
    const GOOD_CALLS: &str = "u0 inv\nu1 inv\n";
    const GOOD_IO: &str = "in in\n";

    fn codes(diags: &[Diagnostic]) -> Vec<DoctorCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_input_passes_all_policies() {
        for policy in [InputPolicy::Strict, InputPolicy::Repair, InputPolicy::BestEffort] {
            let (net, report) =
                doctor_network(lib(), GOOD_NETS, GOOD_CALLS, Some(GOOD_IO), policy).unwrap();
            assert_eq!(net.module_count(), 2);
            assert!(report.diagnostics.is_empty(), "{policy}: {:?}", report.diagnostics);
            assert_eq!(report.repairs_applied, 0);
        }
    }

    #[test]
    fn strict_reports_every_defect_at_once() {
        // Duplicate instance AND a dangling net in one input.
        let e = doctor_network(
            lib(),
            "n0 u0 y\nn0 u1 a\nlonely u1 y\n",
            "u0 inv\nu1 inv\nu0 inv\n",
            None,
            InputPolicy::Strict,
        )
        .unwrap_err();
        let cs = codes(&e.diagnostics);
        assert!(cs.contains(&DoctorCode::DuplicateInstance), "{cs:?}");
        assert!(cs.contains(&DoctorCode::DanglingNet), "{cs:?}");
        assert!(e.to_string().contains("ND001"), "{e}");
        assert!(e.to_string().contains("ND002"), "{e}");
    }

    #[test]
    fn repair_drops_dangling_nets() {
        let (net, report) = doctor_network(
            lib(),
            "n0 u0 y\nn0 u1 a\nlonely u1 y\n",
            GOOD_CALLS,
            None,
            InputPolicy::Repair,
        )
        .unwrap();
        assert_eq!(net.net_count(), 1);
        assert_eq!(codes(&report.diagnostics), [DoctorCode::DanglingNet]);
        assert_eq!(report.repairs_applied, 1);
    }

    #[test]
    fn repair_keeps_first_duplicate_instance() {
        let (net, report) = doctor_network(
            lib(),
            GOOD_NETS,
            "u0 inv\nu1 inv\nu1 inv\n",
            Some(GOOD_IO),
            InputPolicy::Repair,
        )
        .unwrap();
        assert_eq!(net.module_count(), 2);
        assert_eq!(codes(&report.diagnostics), [DoctorCode::DuplicateInstance]);
    }

    #[test]
    fn repair_keeps_first_duplicate_system_terminal() {
        let (net, report) = doctor_network(
            lib(),
            GOOD_NETS,
            GOOD_CALLS,
            Some("in in\nin out\n"),
            InputPolicy::Repair,
        )
        .unwrap();
        assert_eq!(net.system_term_count(), 1);
        assert_eq!(net.system_term(crate::SystemTermId::from_index(0)).ty(), TermType::In);
        assert_eq!(codes(&report.diagnostics), [DoctorCode::DuplicateSystemTerminal]);
    }

    #[test]
    fn repair_synthesizes_stub_templates() {
        let (net, report) = doctor_network(
            lib(),
            "n0 u0 y\nn0 g0 p\nn1 g0 q\nn1 u1 a\n",
            "u0 inv\nu1 inv\ng0 ghost\n",
            None,
            InputPolicy::Repair,
        )
        .unwrap();
        assert_eq!(net.module_count(), 3);
        let g0 = net.module_by_name("g0").unwrap();
        let stub = net.template_of(g0);
        assert_eq!(stub.name(), "ghost");
        assert_eq!(stub.terminal_count(), 2);
        assert!(stub.terminal_index("p").is_some());
        assert!(stub.terminal_index("q").is_some());
        assert_eq!(stub.terminals()[0].ty(), TermType::InOut);
        assert_eq!(codes(&report.diagnostics), [DoctorCode::UnknownTemplate]);
    }

    #[test]
    fn repair_drops_unknown_references() {
        let (net, report) = doctor_network(
            lib(),
            "n0 u0 y\nn0 u1 a\nn0 nobody a\nn0 u1 zz\nn0 root ghost\n",
            GOOD_CALLS,
            None,
            InputPolicy::Repair,
        )
        .unwrap();
        assert_eq!(net.net_count(), 1);
        assert_eq!(net.net(crate::NetId::from_index(0)).pins().len(), 2);
        let cs = codes(&report.diagnostics);
        assert!(cs.contains(&DoctorCode::UnknownInstance), "{cs:?}");
        assert!(cs.contains(&DoctorCode::UnknownTerminal), "{cs:?}");
        assert_eq!(cs.iter().filter(|c| **c == DoctorCode::UnknownTerminal).count(), 2);
    }

    #[test]
    fn repair_keeps_first_pin_connection() {
        let (net, report) = doctor_network(
            lib(),
            "n0 u0 y\nn0 u1 a\nn1 u1 a\nn1 u1 y\nn1 u2 a\n",
            "u0 inv\nu1 inv\nu2 inv\n",
            None,
            InputPolicy::Repair,
        )
        .unwrap();
        assert_eq!(codes(&report.diagnostics), [DoctorCode::PinConflict]);
        // u1.a stays on n0; n1 keeps its two remaining pins.
        assert_eq!(net.net_count(), 2);
        let n1 = net.net_by_name("n1").unwrap();
        assert_eq!(net.net(n1).pins().len(), 2);
    }

    #[test]
    fn malformed_records_fail_repair_but_not_best_effort() {
        let nets = "n0 u0 y\nn0 u1 a\nbroken-two-fields u0\n";
        let e = doctor_network(lib(), nets, GOOD_CALLS, None, InputPolicy::Repair).unwrap_err();
        assert_eq!(codes(&e.diagnostics), [DoctorCode::MalformedRecord]);
        let (net, report) =
            doctor_network(lib(), nets, GOOD_CALLS, None, InputPolicy::BestEffort).unwrap();
        assert_eq!(net.net_count(), 1);
        assert_eq!(codes(&report.diagnostics), [DoctorCode::MalformedRecord]);
    }

    #[test]
    fn driver_cycle_is_a_warning_only() {
        let mut lib = Library::new();
        lib.add_template(
            Template::new("buf", (4, 2))
                .unwrap()
                .with_terminal("a", (0, 1), TermType::In)
                .unwrap()
                .with_terminal("y", (4, 1), TermType::Out)
                .unwrap(),
        )
        .unwrap();
        let (_, report) = doctor_network(
            lib,
            "n0 u0 y\nn0 u1 a\nn1 u1 y\nn1 u0 a\n",
            "u0 buf\nu1 buf\n",
            None,
            InputPolicy::Strict, // warnings never reject
        )
        .unwrap();
        assert_eq!(codes(&report.diagnostics), [DoctorCode::CyclicDrivers]);
        assert_eq!(report.diagnostics[0].severity, Severity::Warning);
        assert!(report.diagnostics[0].message.contains("u0"), "{}", report.diagnostics[0]);
    }

    #[test]
    fn inout_buses_are_not_cycles() {
        // Stub-style all-inout connections must not warn.
        let (_, report) = doctor_network(
            Library::new(),
            "n0 g0 p\nn0 g1 p\nn1 g1 q\nn1 g0 q\n",
            "g0 ghost\ng1 ghost\n",
            None,
            InputPolicy::Repair,
        )
        .unwrap();
        assert_eq!(codes(&report.diagnostics), [DoctorCode::UnknownTemplate]);
    }

    #[test]
    fn doctor_module_passes_clean_input() {
        let (t, report) =
            doctor_module("module inv 40 20\nin a 0 10\nout y 40 10\n", InputPolicy::Strict)
                .unwrap();
        assert_eq!(t.size(), (4, 2));
        assert_eq!(t.terminal_count(), 2);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn doctor_module_snaps_off_grid() {
        let src = "module m 45 20\nin a 0 14\n";
        assert!(doctor_module(src, InputPolicy::Strict).is_err());
        let (t, report) = doctor_module(src, InputPolicy::Repair).unwrap();
        assert_eq!(t.size(), (5, 2)); // 45 -> 50
        assert_eq!(t.terminals()[0].offset().y, 1); // 14 -> 10
        assert_eq!(
            codes(&report.diagnostics),
            [DoctorCode::OffGridCoordinate, DoctorCode::OffGridCoordinate]
        );
        assert_eq!(report.repairs_applied, 2);
    }

    #[test]
    fn doctor_module_snaps_off_boundary() {
        let src = "module m 40 20\nin a 10 10\n";
        assert!(doctor_module(src, InputPolicy::Strict).is_err());
        let (t, report) = doctor_module(src, InputPolicy::Repair).unwrap();
        // (1, 1) on a 4x2 outline: nearest edge is x=0 or y=0 (tie
        // broken toward the left edge by candidate order).
        assert_eq!(t.terminals()[0].offset().x, 0);
        assert_eq!(codes(&report.diagnostics), [DoctorCode::TerminalOffBoundary]);
    }

    #[test]
    fn doctor_module_drops_duplicate_terminals() {
        let src = "module m 40 20\nin a 0 10\nout a 40 10\nin b 0 10\n";
        let (t, report) = doctor_module(src, InputPolicy::Repair).unwrap();
        assert_eq!(t.terminal_count(), 1);
        assert_eq!(
            codes(&report.diagnostics),
            [DoctorCode::DuplicateTerminal, DoctorCode::DuplicateTerminal]
        );
    }

    #[test]
    fn doctor_module_heading_defects_are_unrepairable() {
        for policy in [InputPolicy::Repair, InputPolicy::BestEffort] {
            assert!(doctor_module("", policy).is_err());
            assert!(doctor_module("modul m 40 20\n", policy).is_err());
            assert!(doctor_module("module m forty 20\n", policy).is_err());
        }
    }

    #[test]
    fn snap_to_outline_prefers_nearest_edge() {
        assert_eq!(snap_to_outline(4, 4, 1, 2), (0, 2));
        assert_eq!(snap_to_outline(4, 4, 3, 2), (4, 2));
        assert_eq!(snap_to_outline(4, 4, 2, 3), (2, 4));
        assert_eq!(snap_to_outline(4, 4, 9, 2), (4, 2)); // outside: clamp + project
        assert_eq!(snap_to_outline(4, 4, 2, -3), (2, 0));
    }

    #[test]
    fn policy_parsing() {
        assert_eq!("strict".parse::<InputPolicy>().unwrap(), InputPolicy::Strict);
        assert_eq!("repair".parse::<InputPolicy>().unwrap(), InputPolicy::Repair);
        assert_eq!(
            "best-effort".parse::<InputPolicy>().unwrap(),
            InputPolicy::BestEffort
        );
        assert!("lenient".parse::<InputPolicy>().is_err());
        assert_eq!(InputPolicy::BestEffort.to_string(), "best-effort");
    }

    #[test]
    fn tiny_network_budget_rejects_with_nd015_under_every_policy() {
        for policy in [InputPolicy::Strict, InputPolicy::Repair, InputPolicy::BestEffort] {
            let budget = Arc::new(MemBudget::bytes(16));
            let err = doctor_network_records(
                lib(),
                records_from_str("n0 u0 y\nn0 u1 a\n"),
                records_from_str("u0 inv\nu1 inv\n"),
                None,
                policy,
                &budget,
            )
            .unwrap_err();
            assert_eq!(err.diagnostics.len(), 1, "{policy:?}");
            assert_eq!(err.diagnostics[0].code, DoctorCode::ResourceExhausted);
            let msg = err.to_string();
            assert!(msg.contains("ND015"), "{msg}");
            assert!(msg.contains("16"), "must carry byte counts: {msg}");
        }
    }

    #[test]
    fn adequate_network_budget_charges_and_passes() {
        let budget = Arc::new(MemBudget::bytes(1 << 20));
        let (net, _) = doctor_network_records(
            lib(),
            records_from_str("n0 u0 y\nn0 u1 a\n"),
            records_from_str("u0 inv\nu1 inv\n"),
            None,
            InputPolicy::Strict,
            &budget,
        )
        .unwrap();
        assert_eq!(net.module_count(), 2);
        assert!(budget.used() > 0, "network construction must be accounted");
    }

    #[test]
    fn diagnostics_render_code_location_and_repair() {
        let d = Diagnostic::error(
            DoctorCode::DuplicateInstance,
            DoctorFile::Calls,
            2,
            "duplicate instance `u0`",
        )
        .with_repair("kept the first declaration");
        assert_eq!(
            d.to_string(),
            "ND002 [call:2] duplicate instance `u0` (repair: kept the first declaration)"
        );
    }
}
