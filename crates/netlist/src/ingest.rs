//! Streaming, memory-governed record ingestion.
//!
//! The Appendix A/B formats are line-oriented, so nothing about them
//! requires the whole file in memory at once. This module reads any
//! [`BufRead`] source line-at-a-time, charging every byte it keeps (and
//! the transient line buffer) against a [`MemBudget`] *before*
//! allocating, so a huge or hostile input is refused with exact byte
//! counts instead of exhausting the process. The refusal surfaces as
//! the doctor's `ND015 resource-exhausted` diagnostic.
//!
//! [`read_records`] is the governed sibling of the in-memory record
//! splitter used by [`crate::format`]: same blank-line and `#`-comment
//! handling, but fields are owned and accounted.
//!
//! The `parse.alloc` fault site fires at the charge point, so the
//! chaos suite can force an allocation refusal even with an unlimited
//! budget.

use std::error::Error;
use std::fmt;
use std::io::BufRead;
use std::sync::Arc;

use netart_govern::{Exhausted, MemBudget};

use crate::ParseError;

/// One parsed record: a 1-based line number and its whitespace-split
/// fields. The raw line is not retained — diagnostics built from
/// records carry line numbers, not columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// 1-based line number in the source.
    pub line: usize,
    /// Whitespace-separated fields, owned.
    pub fields: Vec<String>,
}

impl Record {
    /// The bytes this record keeps alive: its inline struct, the field
    /// vector, and every field's characters.
    pub fn cost(&self) -> u64 {
        (std::mem::size_of::<Record>() + self.fields.len() * std::mem::size_of::<String>()) as u64
            + self.fields.iter().map(|f| f.len() as u64).sum::<u64>()
    }
}

/// The two budgets of the ingestion path: `input` bounds what the
/// parsers read and keep as records, `network` bounds what the
/// [`crate::NetworkBuilder`] materialises from them. The CLI exposes
/// them as `--max-input-bytes` and `--max-network-bytes`; `netart
/// serve` points both at one shared `--memory-budget`.
#[derive(Debug, Clone)]
pub struct IngestBudgets {
    /// Governs record reading (file bytes kept as parsed fields).
    pub input: Arc<MemBudget>,
    /// Governs network construction (instances, nets, pins, indexes).
    pub network: Arc<MemBudget>,
}

impl Default for IngestBudgets {
    fn default() -> Self {
        IngestBudgets::unlimited()
    }
}

impl IngestBudgets {
    /// Budgets that never refuse.
    pub fn unlimited() -> Self {
        IngestBudgets {
            input: Arc::new(MemBudget::unlimited()),
            network: Arc::new(MemBudget::unlimited()),
        }
    }

    /// Points both stages at one shared budget (the serve model: one
    /// governor for the whole process).
    pub fn shared(budget: Arc<MemBudget>) -> Self {
        IngestBudgets {
            input: Arc::clone(&budget),
            network: budget,
        }
    }

    /// New, empty budgets with the same limits — the per-job model of
    /// `netart batch`, where every job is governed independently and a
    /// finished job's charges must not haunt the next one.
    pub fn fresh(&self) -> IngestBudgets {
        IngestBudgets {
            input: Arc::new(MemBudget::bytes(self.input.limit())),
            network: Arc::new(MemBudget::bytes(self.network.limit())),
        }
    }
}

/// Why streaming ingestion stopped.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The memory governor refused an allocation.
    Exhausted(Exhausted),
    /// A line-level parse callback rejected its input.
    Parse(ParseError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "read failed: {e}"),
            IngestError::Exhausted(e) => e.fmt(f),
            IngestError::Parse(e) => e.fmt(f),
        }
    }
}

impl Error for IngestError {}

impl From<Exhausted> for IngestError {
    fn from(e: Exhausted) -> Self {
        IngestError::Exhausted(e)
    }
}

/// Charges `bytes` against `budget`, with the `parse.alloc` fault site
/// in front: an armed fault simulates a refusal (reporting the current
/// usage as the limit) even when the budget itself would have granted
/// the charge.
pub(crate) fn charge(
    budget: &MemBudget,
    stage: &'static str,
    bytes: u64,
) -> Result<(), Exhausted> {
    if netart_fault::fire(netart_fault::sites::PARSE_ALLOC).is_some() {
        return Err(Exhausted {
            stage,
            requested: bytes,
            used: budget.used(),
            limit: budget.used(),
        });
    }
    budget.try_charge(stage, bytes)
}

/// Streams `reader` line-at-a-time, charging the transient line buffer
/// against `budget` while it is held (so even a single pathological
/// multi-gigabyte line is refused, not slurped) and releasing it once
/// the callback returns. Lines are passed with their 1-based number
/// and without the trailing newline; invalid UTF-8 is replaced
/// lossily, for the callback to diagnose.
///
/// # Errors
///
/// [`IngestError::Io`] from the reader, [`IngestError::Exhausted`]
/// from the governor, or whatever the callback returns.
pub fn for_each_line<R: BufRead>(
    mut reader: R,
    budget: &MemBudget,
    stage: &'static str,
    mut f: impl FnMut(usize, &str) -> Result<(), IngestError>,
) -> Result<(), IngestError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut charged: u64 = 0;
    let mut lineno: usize = 0;
    // Release the transient charge on every exit path.
    let finish = |budget: &MemBudget, charged: u64, r: Result<(), IngestError>| {
        budget.release(charged);
        r
    };
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) => return finish(budget, charged, Err(IngestError::Io(e))),
        };
        if chunk.is_empty() {
            if !buf.is_empty() {
                lineno += 1;
                let line = String::from_utf8_lossy(&buf).into_owned();
                if let Err(e) = f(lineno, line.trim_end_matches('\r')) {
                    return finish(budget, charged, Err(e));
                }
            }
            return finish(budget, charged, Ok(()));
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i);
        if take > 0 {
            if let Err(e) = charge(budget, stage, take as u64) {
                return finish(budget, charged, Err(e.into()));
            }
            charged += take as u64;
            buf.extend_from_slice(&chunk[..take]);
        }
        let consumed = newline.map_or(chunk.len(), |i| i + 1);
        reader.consume(consumed);
        if newline.is_some() {
            lineno += 1;
            let line = String::from_utf8_lossy(&buf).into_owned();
            if let Err(e) = f(lineno, line.trim_end_matches('\r')) {
                return finish(budget, charged, Err(e));
            }
            budget.release(buf.len() as u64);
            charged -= buf.len() as u64;
            buf.clear();
        }
    }
}

/// Reads a whole record file from `reader` under `budget`: blank lines
/// and `#` comments are skipped, every kept record's bytes are charged
/// before it is stored. The charge stays on the budget — it accounts
/// for the returned vector, which the caller now owns.
///
/// # Errors
///
/// [`IngestError::Io`] or [`IngestError::Exhausted`].
pub fn read_records<R: BufRead>(
    reader: R,
    budget: &MemBudget,
    stage: &'static str,
) -> Result<Vec<Record>, IngestError> {
    let mut out: Vec<Record> = Vec::new();
    let result = for_each_line(reader, budget, stage, |line, text| {
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(());
        }
        let record = Record {
            line,
            fields: trimmed.split_whitespace().map(str::to_owned).collect(),
        };
        charge(budget, stage, record.cost())?;
        out.push(record);
        Ok(())
    });
    if let Err(e) = result {
        // The partial vector dies here; nothing may stay charged.
        budget.release(out.iter().map(Record::cost).sum());
        return Err(e);
    }
    Ok(out)
}

/// The in-memory sibling of [`read_records`]: splits an already-loaded
/// string without touching any budget. Used by the `&str` parser entry
/// points, whose inputs are by definition already in memory.
pub fn records_from_str(src: &str) -> Vec<Record> {
    crate::format::records(src)
        .map(|(line, _, fields)| Record {
            line,
            fields: fields.into_iter().map(str::to_owned).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_records_like_the_str_splitter() {
        let src = "# comment\n\nn0 u0 y\n  n0   u1   a  \r\ntail u2 b";
        let recs = read_records(Cursor::new(src), &MemBudget::unlimited(), "t").unwrap();
        let from_str = records_from_str(src);
        assert_eq!(recs, from_str);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].line, 3);
        assert_eq!(recs[1].fields, ["n0", "u1", "a"]);
        assert_eq!(recs[2].line, 5, "unterminated last line still parses");
    }

    #[test]
    fn charges_kept_records_and_releases_transient_lines() {
        let budget = MemBudget::bytes(10_000);
        let recs = read_records(Cursor::new("n0 u0 y\nn0 u1 a\n"), &budget, "t").unwrap();
        let expected: u64 = recs.iter().map(Record::cost).sum();
        assert_eq!(budget.used(), expected, "only record bytes stay charged");
    }

    #[test]
    fn refuses_over_budget_input_with_counts() {
        let budget = MemBudget::bytes(64);
        let big = "n0 u0 y\n".repeat(100);
        let e = read_records(Cursor::new(big), &budget, "net-list").unwrap_err();
        let IngestError::Exhausted(e) = e else {
            panic!("expected exhaustion, got {e}");
        };
        assert_eq!(e.stage, "net-list");
        assert_eq!(e.limit, 64);
        assert!(e.to_string().contains("64"), "{e}");
    }

    #[test]
    fn refuses_single_pathological_line_without_slurping() {
        let budget = MemBudget::bytes(1024);
        // One 1 MiB line with no newline: must be refused at ~1 KiB,
        // not buffered whole.
        let big = "x".repeat(1 << 20);
        let e = read_records(Cursor::new(big), &budget, "t").unwrap_err();
        assert!(matches!(e, IngestError::Exhausted(_)), "{e}");
        assert!(budget.used() <= 1024);
    }

    #[test]
    fn transient_charge_is_released_even_for_unterminated_input() {
        let budget = MemBudget::bytes(1 << 20);
        let src = "a b c\n".repeat(10) + &"y".repeat(2048); // no trailing newline
        let recs = read_records(Cursor::new(src), &budget, "t").unwrap();
        let kept: u64 = recs.iter().map(Record::cost).sum();
        assert_eq!(budget.used(), kept, "only kept record bytes stay charged");
    }

    #[test]
    fn shared_budgets_point_at_one_governor() {
        let b = Arc::new(MemBudget::bytes(100));
        let budgets = IngestBudgets::shared(Arc::clone(&b));
        budgets.input.try_charge("a", 60).unwrap();
        assert!(budgets.network.try_charge("b", 60).is_err());
        assert_eq!(b.used(), 60);
    }
}
