//! Network model for the `netart` schematic diagram generator.
//!
//! A *network* (§3.2 of Koster & Stok, 1989) consists of modules with
//! terminals, nets connecting subsystem and system terminals, and system
//! terminals forming the interface of the whole diagram. Modules are
//! *instances* of *templates* held in a module [`Library`] (Appendix C of
//! the paper); templates carry the symbol size and terminal geometry.
//!
//! The crate provides:
//!
//! * [`Template`], [`Terminal`], [`TermType`] — the module library side,
//! * [`Network`], [`NetworkBuilder`], [`Pin`] — the netlist side,
//! * typed ids ([`ModuleId`], [`NetId`], [`TemplateId`], [`SystemTermId`]),
//! * connectivity queries used by the placement phase (the paper's
//!   `connected` relation and the counting quantifiers built on it),
//! * the paper's file formats: net-list / call / IO files (Appendix A) in
//!   [`mod@format`], and the *quinto* module description (Appendix B)
//!   in [`format::quinto`].
//!
//! # Examples
//!
//! Building a two-module network by hand:
//!
//! ```
//! use netart_netlist::{Library, NetworkBuilder, Template, TermType};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lib = Library::new();
//! let inv = lib.add_template(Template::new("inv", (4, 2))?
//!     .with_terminal("a", (0, 1), TermType::In)?
//!     .with_terminal("y", (4, 1), TermType::Out)?)?;
//!
//! let mut b = NetworkBuilder::new(lib);
//! let u0 = b.add_instance("u0", inv)?;
//! let u1 = b.add_instance("u1", inv)?;
//! let input = b.add_system_terminal("in", TermType::In)?;
//! b.connect("n_in", input)?;
//! b.connect_pin("n_in", u0, "a")?;
//! b.connect_pin("n0", u0, "y")?;
//! b.connect_pin("n0", u1, "a")?;
//! let net = b.finish()?;
//! assert_eq!(net.module_count(), 2);
//! assert_eq!(net.connection_count(u0, u1), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod doctor;
mod error;
pub mod format;
mod ids;
pub mod ingest;
mod library;
mod network;
mod template;

pub use error::{BuildError, ParseError, TemplateError};
pub use ids::{ModuleId, NetId, SystemTermId, TemplateId, TermIdx};
pub use library::Library;
pub use network::{Instance, Net, Network, NetworkBuilder, Pin, SystemTerminal};
pub use template::{Template, TermType, Terminal};
