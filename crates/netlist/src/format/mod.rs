//! The paper's text file formats.
//!
//! Appendix A defines three whitespace-separated record files describing
//! a network:
//!
//! * the **call-file** — `<INSTANCE> <TEMPLATE>` records naming the
//!   sub-networks,
//! * the **io-file** — `<TERMINAL> <TYPE>` records naming the system
//!   terminals,
//! * the **net-list-file** — `<NET> <INSTANCE> <TERMINAL>` records
//!   attaching pins to nets, with the pseudo-instance `root` denoting a
//!   system terminal.
//!
//! Appendix B defines the *quinto* module description, handled by
//! [`quinto`]; Appendix C's library representation of a module symbol
//! lives in [`template_repr`].
//!
//! # Examples
//!
//! ```
//! use netart_netlist::format;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = format::quinto::parse_module(
//!     "module inv 40 20\nin a 0 10\nout y 40 10\n",
//! ).map(|t| {
//!     let mut lib = netart_netlist::Library::new();
//!     lib.add_template(t).unwrap();
//!     lib
//! })?;
//! let network = format::parse_network(
//!     lib,
//!     "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\n",
//!     "u0 inv\nu1 inv\n",
//!     Some("in in\n"),
//! )?;
//! assert_eq!(network.module_count(), 2);
//! # Ok(())
//! # }
//! ```

pub mod quinto;
pub mod template_repr;

use crate::{Library, Network, NetworkBuilder, ParseError, TermType};

/// Splits a record file into `(line_number, line_text, fields)` tuples,
/// skipping blank lines and `#` comment lines (an extension for
/// readability; the paper's files contain only records). The raw line
/// text rides along so errors can point at the offending column.
pub(crate) fn records(src: &str) -> impl Iterator<Item = (usize, &str, Vec<&str>)> {
    src.lines().enumerate().filter_map(|(i, line)| {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            None
        } else {
            Some((i + 1, line, trimmed.split_whitespace().collect()))
        }
    })
}

/// A parse error pointing at `field` inside `text` on `line`.
fn field_error(line: usize, text: &str, field: &str, message: String) -> ParseError {
    ParseError::at(line, ParseError::column_of(text, field), message)
}

/// Which of the three Appendix A input files a [`ParseError`] came
/// from, so callers reporting to a user can name the right path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkFile {
    /// The net-list file (`design.net`).
    NetList,
    /// The call file (`design.call`).
    Calls,
    /// The io file (`design.io`).
    Io,
}

/// Parses the three Appendix A files into a validated [`Network`].
///
/// `io_file` may be omitted when the network has no system terminals,
/// exactly as in the paper's `pablo` command line.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending record for
/// malformed fields, unknown templates/instances/terminals, pin
/// conflicts, or nets with fewer than two pins. Use
/// [`parse_network_tagged`] when the caller needs to know which file
/// the error came from.
pub fn parse_network(
    library: Library,
    net_list_file: &str,
    call_file: &str,
    io_file: Option<&str>,
) -> Result<Network, ParseError> {
    parse_network_tagged(library, net_list_file, call_file, io_file).map_err(|(_, e)| e)
}

/// Like [`parse_network`], but errors carry the [`NetworkFile`] they
/// occurred in.
///
/// # Errors
///
/// As [`parse_network`]; builder-level errors that only surface once
/// all files are read (e.g. an underfilled net) are attributed to the
/// net-list file.
pub fn parse_network_tagged(
    library: Library,
    net_list_file: &str,
    call_file: &str,
    io_file: Option<&str>,
) -> Result<Network, (NetworkFile, ParseError)> {
    let mut b = NetworkBuilder::new(library);

    parse_calls(&mut b, call_file).map_err(|e| (NetworkFile::Calls, e))?;
    if let Some(io) = io_file {
        parse_io(&mut b, io).map_err(|e| (NetworkFile::Io, e))?;
    }
    parse_nets(&mut b, net_list_file).map_err(|e| (NetworkFile::NetList, e))?;

    b.finish()
        .map_err(|e| (NetworkFile::NetList, ParseError::new(0, e.to_string())))
}

fn parse_calls(b: &mut NetworkBuilder, call_file: &str) -> Result<(), ParseError> {
    for (line, text, fields) in records(call_file) {
        let [instance, template] = fields[..] else {
            return Err(ParseError::new(
                line,
                format!("call-file record needs 2 fields, got {}", fields.len()),
            ));
        };
        let id = b.library().template_by_name(template).ok_or_else(|| {
            field_error(line, text, template, format!("unknown template `{template}`"))
        })?;
        b.add_instance(instance, id)
            .map_err(|e| field_error(line, text, instance, e.to_string()))?;
    }
    Ok(())
}

fn parse_io(b: &mut NetworkBuilder, io_file: &str) -> Result<(), ParseError> {
    for (line, text, fields) in records(io_file) {
        let [terminal, ty] = fields[..] else {
            return Err(ParseError::new(
                line,
                format!("io-file record needs 2 fields, got {}", fields.len()),
            ));
        };
        let ty: TermType = ty
            .parse()
            .map_err(|e: String| field_error(line, text, ty, e))?;
        b.add_system_terminal(terminal, ty)
            .map_err(|e| field_error(line, text, terminal, e.to_string()))?;
    }
    Ok(())
}

fn parse_nets(b: &mut NetworkBuilder, net_list_file: &str) -> Result<(), ParseError> {
    for (line, text, fields) in records(net_list_file) {
        let [net, instance, terminal] = fields[..] else {
            return Err(ParseError::new(
                line,
                format!("net-list record needs 3 fields, got {}", fields.len()),
            ));
        };
        if instance == "root" {
            let st = b.system_term_by_name(terminal).ok_or_else(|| {
                field_error(
                    line,
                    text,
                    terminal,
                    format!("unknown system terminal `{terminal}`"),
                )
            })?;
            b.connect(net, st)
                .map_err(|e| field_error(line, text, net, e.to_string()))?;
        } else {
            let m = b.instance_by_name(instance).ok_or_else(|| {
                field_error(line, text, instance, format!("unknown instance `{instance}`"))
            })?;
            b.connect_pin(net, m, terminal)
                .map_err(|e| field_error(line, text, terminal, e.to_string()))?;
        }
    }
    Ok(())
}

/// Writes the call-file for a network.
pub fn write_call_file(network: &Network) -> String {
    let mut out = String::new();
    for m in network.modules() {
        let inst = network.instance(m);
        out.push_str(inst.name());
        out.push(' ');
        out.push_str(network.template_of(m).name());
        out.push('\n');
    }
    out
}

/// Writes the io-file for a network.
pub fn write_io_file(network: &Network) -> String {
    let mut out = String::new();
    for st in network.system_terms() {
        let t = network.system_term(st);
        out.push_str(t.name());
        out.push(' ');
        out.push_str(&t.ty().to_string());
        out.push('\n');
    }
    out
}

/// Writes the net-list-file for a network.
pub fn write_net_list_file(network: &Network) -> String {
    let mut out = String::new();
    for n in network.nets() {
        let net = network.net(n);
        for pin in net.pins() {
            out.push_str(net.name());
            out.push(' ');
            match *pin {
                crate::Pin::Sub { module, term } => {
                    out.push_str(network.instance(module).name());
                    out.push(' ');
                    out.push_str(network.template_of(module).terminals()[term].name());
                }
                crate::Pin::System(st) => {
                    out.push_str("root ");
                    out.push_str(network.system_term(st).name());
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Template, TermType};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.add_template(
            Template::new("inv", (4, 2))
                .unwrap()
                .with_terminal("a", (0, 1), TermType::In)
                .unwrap()
                .with_terminal("y", (4, 1), TermType::Out)
                .unwrap(),
        )
        .unwrap();
        lib
    }

    #[test]
    fn parse_minimal_network() {
        let net = parse_network(
            lib(),
            "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\nnout u1 y\nnout root out\n",
            "u0 inv\nu1 inv\n",
            Some("in in\nout out\n"),
        )
        .unwrap();
        assert_eq!(net.module_count(), 2);
        assert_eq!(net.net_count(), 3);
        assert_eq!(net.system_term_count(), 2);
    }

    #[test]
    fn io_file_optional() {
        let net = parse_network(lib(), "n0 u0 y\nn0 u1 a\n", "u0 inv\nu1 inv\n", None).unwrap();
        assert_eq!(net.system_term_count(), 0);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let net = parse_network(
            lib(),
            "# the only net\n\nn0 u0 y\nn0 u1 a\n",
            "u0 inv\n\n# second\nu1 inv\n",
            None,
        )
        .unwrap();
        assert_eq!(net.net_count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_network(lib(), "", "u0 unknown_template\n", None).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown template"));

        let e = parse_network(lib(), "n0 nobody a\n", "u0 inv\n", None).unwrap_err();
        assert!(e.message.contains("unknown instance"));

        let e = parse_network(lib(), "n0 u0 zz\n", "u0 inv\n", None).unwrap_err();
        assert!(e.message.contains("no terminal"));

        let e = parse_network(lib(), "n0 root missing\n", "u0 inv\n", None).unwrap_err();
        assert!(e.message.contains("unknown system terminal"));

        let e = parse_network(lib(), "only-two-fields u0\n", "u0 inv\n", None).unwrap_err();
        assert!(e.message.contains("3 fields"));
    }

    #[test]
    fn round_trip() {
        let src_nets = "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\n";
        let net = parse_network(lib(), src_nets, "u0 inv\nu1 inv\n", Some("in in\n")).unwrap();
        let calls = write_call_file(&net);
        let io = write_io_file(&net);
        let nets = write_net_list_file(&net);
        let net2 = parse_network(lib(), &nets, &calls, Some(&io)).unwrap();
        assert_eq!(net2.module_count(), net.module_count());
        assert_eq!(net2.net_count(), net.net_count());
        assert_eq!(net2.system_term_count(), net.system_term_count());
        for n in net.nets() {
            let name = net.net(n).name();
            let n2 = net2.net_by_name(name).unwrap();
            assert_eq!(net2.net(n2).pins().len(), net.net(n).pins().len());
        }
    }
}
