//! The module-library representation of Appendix C.
//!
//! Templates in the paper's library are stored as `#TUE-ES-871` record
//! files with `temp:`/`tname:`/`repr:`/`contact:`/`symbol:` records;
//! ESCHER reads them to draw module symbols. This module writes and
//! parses that shape:
//!
//! ```text
//! #TUE-ES-871
//! temp: 0 1 1 1 0
//! tname: <template name>
//! lname: <library name>
//! repr: 0 1 1 0 0 <width> <height> <time>
//! contact: <more> <type> 0 0 <x> <y> 0 1 0
//! cname: <terminal name>
//! symbol: 1 35 <width> <height> <width> 0
//! symbol: 1 35 0 <height> <width> <height>
//! symbol: 1 35 <width> 0 0 0
//! symbol: 0 35 0 0 0 <height>
//! contents: 0 0
//! ```
//!
//! Coordinates are on the 10× editor grid like [`super::quinto`]; the
//! `time` field is written as `0` (this library has no wall clock) and
//! ignored on parse. The original format interleaved each `contact:`
//! record's name differently; we keep one `cname:` record per contact,
//! which round-trips losslessly.

use crate::{ParseError, Template, TermType};

const GRID: i32 = 10;

/// The magic header shared with the diagram format.
pub const HEADER: &str = "#TUE-ES-871";

fn type_code(ty: TermType) -> i32 {
    match ty {
        TermType::InOut => 0,
        TermType::In => 1,
        TermType::Out => 2,
    }
}

fn type_from_code(code: &str) -> Result<TermType, String> {
    match code {
        "0" => Ok(TermType::InOut),
        "1" => Ok(TermType::In),
        "2" => Ok(TermType::Out),
        other => Err(format!("unknown contact type code `{other}`")),
    }
}

/// Writes a template in the Appendix C library representation.
pub fn write_template(template: &Template, library_name: &str) -> String {
    let (w, h) = template.size();
    let (w, h) = (w * GRID, h * GRID);
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str("temp: 0 1 1 1 0\n");
    out.push_str(&format!("tname: {}\n", template.name()));
    out.push_str(&format!("lname: {library_name}\n"));
    out.push_str(&format!("repr: 0 1 1 0 0 {w} {h} 0\n"));
    let count = template.terminal_count();
    for (i, t) in template.terminals().iter().enumerate() {
        let more = if i + 1 < count { 1 } else { 0 };
        out.push_str(&format!(
            "contact: {more} {} 0 0 {} {} 0 1 0\n",
            type_code(t.ty()),
            t.offset().x * GRID,
            t.offset().y * GRID
        ));
        out.push_str(&format!("cname: {}\n", t.name()));
    }
    out.push_str(&format!("symbol: 1 35 {w} {h} {w} 0\n"));
    out.push_str(&format!("symbol: 1 35 0 {h} {w} {h}\n"));
    out.push_str(&format!("symbol: 1 35 {w} 0 0 0\n"));
    out.push_str(&format!("symbol: 0 35 0 0 0 {h}\n"));
    out.push_str("contents: 0 0\n");
    out
}

/// Parses an Appendix C library file back into a [`Template`].
///
/// # Errors
///
/// Returns a [`ParseError`] for missing headers, malformed records,
/// off-grid coordinates or terminals violating the template rules.
pub fn parse_template(src: &str) -> Result<Template, ParseError> {
    let mut lines = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty());
    match lines.next() {
        Some((_, h)) if h == HEADER => {}
        _ => return Err(ParseError::new(1, format!("missing `{HEADER}` header"))),
    }

    let mut name: Option<String> = None;
    let mut size: Option<(i32, i32)> = None;
    let mut contacts: Vec<(i32, i32, TermType)> = Vec::new();
    let mut names: Vec<String> = Vec::new();

    let grid = |line: usize, s: &str, what: &str| -> Result<i32, ParseError> {
        let v: i32 = s
            .parse()
            .map_err(|_| ParseError::new(line, format!("{what} `{s}` is not an integer")))?;
        if v % GRID != 0 {
            return Err(ParseError::new(
                line,
                format!("{what} {v} is not divisible by {GRID}"),
            ));
        }
        Ok(v / GRID)
    };

    for (line, text) in lines {
        let Some((kind, rest)) = text.split_once(':') else {
            return Err(ParseError::new(line, format!("malformed record `{text}`")));
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        match kind {
            "temp" | "lname" | "symbol" | "contents" => {} // shape-only records
            "tname" => name = Some(rest.trim().to_owned()),
            "repr" => {
                let [_, _, _, _, _, w, h, _time] = fields[..] else {
                    return Err(ParseError::new(line, "repr record needs 8 fields"));
                };
                size = Some((grid(line, w, "width")?, grid(line, h, "height")?));
            }
            "contact" => {
                let [_more, ty, _, _, x, y, _, _, _] = fields[..] else {
                    return Err(ParseError::new(line, "contact record needs 9 fields"));
                };
                let ty = type_from_code(ty).map_err(|e| ParseError::new(line, e))?;
                contacts.push((grid(line, x, "x-coordinate")?, grid(line, y, "y-coordinate")?, ty));
            }
            "cname" => names.push(rest.trim().to_owned()),
            other => {
                return Err(ParseError::new(line, format!("unknown record kind `{other}`")))
            }
        }
    }

    let name = name.ok_or_else(|| ParseError::new(0, "missing tname record"))?;
    let size = size.ok_or_else(|| ParseError::new(0, "missing repr record"))?;
    if names.len() != contacts.len() {
        return Err(ParseError::new(
            0,
            format!("{} contact records but {} cname records", contacts.len(), names.len()),
        ));
    }
    let mut template =
        Template::new(name, size).map_err(|e| ParseError::new(0, e.to_string()))?;
    for ((x, y, ty), cname) in contacts.into_iter().zip(names) {
        template
            .add_terminal(cname, (x, y), ty)
            .map_err(|e| ParseError::new(0, e.to_string()))?;
    }
    Ok(template)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Template {
        Template::new("and2", (4, 4))
            .expect("valid")
            .with_terminal("a", (0, 1), TermType::In)
            .expect("valid")
            .with_terminal("b", (0, 3), TermType::In)
            .expect("valid")
            .with_terminal("y", (4, 2), TermType::Out)
            .expect("valid")
            .with_terminal("io", (2, 0), TermType::InOut)
            .expect("valid")
    }

    #[test]
    fn writes_the_appendix_c_shape() {
        let text = write_template(&sample(), "stdlib");
        assert!(text.starts_with(HEADER));
        assert!(text.contains("tname: and2"));
        assert!(text.contains("lname: stdlib"));
        assert!(text.contains("repr: 0 1 1 0 0 40 40 0"));
        // more-follows flag: 1 for all but the last contact.
        assert_eq!(text.matches("contact: 1 ").count(), 3);
        assert_eq!(text.matches("contact: 0 ").count(), 1);
        assert_eq!(text.matches("symbol:").count(), 4);
        assert!(text.trim_end().ends_with("contents: 0 0"));
    }

    #[test]
    fn round_trip_is_exact() {
        let t = sample();
        let text = write_template(&t, "stdlib");
        let back = parse_template(&text).expect("parses own output");
        assert_eq!(back, t);
    }

    #[test]
    fn type_codes_match_appendix_c() {
        let text = write_template(&sample(), "l");
        // in=1, out=2, inout=0 per the appendix.
        assert!(text.contains("contact: 1 1 0 0 0 10"));
        assert!(text.contains("contact: 1 2 0 0 40 20"));
        assert!(text.contains("contact: 0 0 0 0 20 0"));
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(parse_template("nope\n").is_err());
        let e = parse_template(&format!("{HEADER}\nrepr: 0 1 1 0 0 45 40 0\n")).unwrap_err();
        assert!(e.message.contains("divisible"));
        let e = parse_template(&format!("{HEADER}\nwhat: 1\n")).unwrap_err();
        assert!(e.message.contains("unknown record"));
        let e = parse_template(&format!(
            "{HEADER}\ntname: t\nrepr: 0 1 1 0 0 40 40 0\ncontact: 0 1 0 0 0 10 0 1 0\n"
        ))
        .unwrap_err();
        assert!(e.message.contains("cname"), "{e}");
        let e = parse_template(&format!("{HEADER}\ntname: t\n")).unwrap_err();
        assert!(e.message.contains("repr"));
    }

    #[test]
    fn minimal_template_without_contacts() {
        let t = Template::new("blank", (2, 2)).unwrap();
        let back = parse_template(&write_template(&t, "l")).unwrap();
        assert_eq!(back, t);
    }
}
