//! The *quinto* module description format (Appendix B of the paper).
//!
//! A module file consists of a heading and one record per terminal:
//!
//! ```text
//! module <MODULE-NAME> <WIDTH> <HEIGHT>
//! <TYPE> <TERM-NAME> <X> <Y>
//! ...
//! ```
//!
//! The appendix imposes that width, height and terminal coordinates are
//! divisible by 10 (the editor's display grid) and that terminals lie on
//! the module outline. Internally the generator works on the coarse
//! track grid, so [`parse_module`] divides all coordinates by 10 and
//! [`write_module`] multiplies them back; a parse/write round trip is
//! exact.

use crate::{ParseError, Template, TermType};

const GRID: i32 = 10;

fn grid_value(line: usize, text: &str, field: &str, what: &str) -> Result<i32, ParseError> {
    let column = ParseError::column_of(text, field);
    let v: i32 = field
        .parse()
        .map_err(|_| ParseError::at(line, column, format!("{what} `{field}` is not an integer")))?;
    if v % GRID != 0 {
        return Err(ParseError::at(
            line,
            column,
            format!("{what} {v} is not divisible by {GRID}"),
        ));
    }
    Ok(v / GRID)
}

/// Parses a quinto module description into a [`Template`].
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed headings or records, values
/// not divisible by 10, terminals off the module outline, or duplicate
/// terminals.
pub fn parse_module(src: &str) -> Result<Template, ParseError> {
    let mut lines = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (hline, heading): (usize, &str) = lines
        .next()
        .ok_or_else(|| ParseError::new(0, "empty module description"))?;
    let fields: Vec<&str> = heading.split_whitespace().collect();
    let ["module", name, w, h] = fields[..] else {
        return Err(ParseError::new(
            hline,
            "heading must be `module <NAME> <WIDTH> <HEIGHT>`",
        ));
    };
    let width = grid_value(hline, heading, w, "width")?;
    let height = grid_value(hline, heading, h, "height")?;
    let mut template = Template::new(name, (width, height))
        .map_err(|e| ParseError::new(hline, e.to_string()))?;

    for (line, record) in lines {
        let fields: Vec<&str> = record.split_whitespace().collect();
        let [ty, term, xs, ys] = fields[..] else {
            return Err(ParseError::new(
                line,
                format!("terminal record needs 4 fields, got {}", fields.len()),
            ));
        };
        let ty: TermType = ty.parse().map_err(|e: String| {
            ParseError::at(line, ParseError::column_of(record, ty), e)
        })?;
        let x = grid_value(line, record, xs, "x-coordinate")?;
        let y = grid_value(line, record, ys, "y-coordinate")?;
        // The appendix's outline rule, checked here so the error can
        // point at the offending coordinate field; `add_terminal`
        // would reject it too, but only with the line number.
        if x < 0 || x > width || y < 0 || y > height || (x != 0 && x != width && y != 0 && y != height) {
            return Err(ParseError::at(
                line,
                ParseError::column_of(record, xs),
                format!(
                    "terminal `{term}` at ({}, {}) is not on the module outline \
                     ({} x {})",
                    x * GRID,
                    y * GRID,
                    width * GRID,
                    height * GRID
                ),
            ));
        }
        template
            .add_terminal(term, (x, y), ty)
            .map_err(|e| ParseError::new(line, e.to_string()))?;
    }
    Ok(template)
}

/// Writes a [`Template`] as a quinto module description.
pub fn write_module(template: &Template) -> String {
    let (w, h) = template.size();
    let mut out = format!("module {} {} {}\n", template.name(), w * GRID, h * GRID);
    for t in template.terminals() {
        out.push_str(&format!(
            "{} {} {} {}\n",
            t.ty(),
            t.name(),
            t.offset().x * GRID,
            t.offset().y * GRID
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "module inv 40 20\nin a 0 10\nout y 40 10\n";

    #[test]
    fn parse_scales_to_track_grid() {
        let t = parse_module(INV).unwrap();
        assert_eq!(t.name(), "inv");
        assert_eq!(t.size(), (4, 2));
        assert_eq!(t.terminal_count(), 2);
        assert_eq!(t.terminals()[0].offset().y, 1);
    }

    #[test]
    fn round_trip_is_exact() {
        let t = parse_module(INV).unwrap();
        assert_eq!(write_module(&t), INV);
        let t2 = parse_module(&write_module(&t)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn rejects_off_grid_values() {
        let e = parse_module("module m 45 20\n").unwrap_err();
        assert!(e.message.contains("divisible by 10"));
        let e = parse_module("module m 40 20\nin a 0 15\n").unwrap_err();
        assert!(e.message.contains("divisible by 10"));
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(parse_module("").is_err());
        assert!(parse_module("modul m 40 20\n").is_err());
        assert!(parse_module("module m 40 20\nin a 0\n").is_err());
        assert!(parse_module("module m 40 20\nsideways a 0 10\n").is_err());
        let e = parse_module("module m 40 20\nin a 10 10\n").unwrap_err(); // interior
        assert!(e.message.contains("outline"), "{e}");
        assert!(e.column > 0, "outline errors should point at the coordinate");
        assert!(parse_module("module m 40 20\nin a 50 0\n").is_err()); // outside
        let e = parse_module("module m 40 20\nin a 0 10\nout a 40 10\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn comments_allowed() {
        let t = parse_module("# inverter\nmodule inv 40 20\n\nin a 0 10\n").unwrap();
        assert_eq!(t.terminal_count(), 1);
    }
}
