use std::fmt;

use netart_geom::{Point, Side};

use crate::TemplateError;

/// The electrical direction of a terminal (§4.6.2: `type : T ∪ ST →
/// { in, out, inout }`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TermType {
    /// Signal consumer.
    In,
    /// Signal producer.
    Out,
    /// Bidirectional.
    InOut,
}

impl TermType {
    /// `true` for `In` and `InOut`: the terminal can receive a signal.
    pub fn accepts_input(self) -> bool {
        matches!(self, TermType::In | TermType::InOut)
    }

    /// `true` for `Out` and `InOut`: the terminal can drive a signal.
    pub fn drives_output(self) -> bool {
        matches!(self, TermType::Out | TermType::InOut)
    }
}

impl fmt::Display for TermType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TermType::In => "in",
            TermType::Out => "out",
            TermType::InOut => "inout",
        })
    }
}

impl std::str::FromStr for TermType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "in" => Ok(TermType::In),
            "out" => Ok(TermType::Out),
            "inout" => Ok(TermType::InOut),
            other => Err(format!("unknown terminal type `{other}`")),
        }
    }
}

/// A subsystem terminal of a module template.
///
/// The position is relative to the template's lower-left corner and must
/// lie on the template boundary (the paper's `position-terminal`
/// function and Appendix B constraint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Terminal {
    name: String,
    offset: Point,
    ty: TermType,
}

impl Terminal {
    /// Terminal name, unique within its template.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Position relative to the template's lower-left corner.
    pub fn offset(&self) -> Point {
        self.offset
    }

    /// Electrical direction.
    pub fn ty(&self) -> TermType {
        self.ty
    }
}

/// A module symbol in the library: a rectangle of fixed size with
/// terminals on its boundary (Appendix B/C of the paper).
///
/// # Examples
///
/// ```
/// use netart_geom::Side;
/// use netart_netlist::{Template, TermType};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let and2 = Template::new("and2", (4, 4))?
///     .with_terminal("a", (0, 1), TermType::In)?
///     .with_terminal("b", (0, 3), TermType::In)?
///     .with_terminal("y", (4, 2), TermType::Out)?;
/// assert_eq!(and2.terminal_side(2), Side::Right);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    name: String,
    size: (i32, i32),
    terms: Vec<Terminal>,
}

impl Template {
    /// Creates an empty template of the given symbol size.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::NonPositiveSize`] when either dimension
    /// is `<= 0`.
    pub fn new(name: impl Into<String>, size: (i32, i32)) -> Result<Self, TemplateError> {
        if size.0 <= 0 || size.1 <= 0 {
            return Err(TemplateError::NonPositiveSize { size });
        }
        Ok(Template {
            name: name.into(),
            size,
            terms: Vec::new(),
        })
    }

    /// Adds a terminal, consuming and returning the template for
    /// chaining.
    ///
    /// # Errors
    ///
    /// Returns an error when the position is off the boundary, or the
    /// name or position collides with an existing terminal.
    pub fn with_terminal(
        mut self,
        name: impl Into<String>,
        offset: (i32, i32),
        ty: TermType,
    ) -> Result<Self, TemplateError> {
        self.add_terminal(name, offset, ty)?;
        Ok(self)
    }

    /// Adds a terminal in place. See [`Template::with_terminal`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Template::with_terminal`].
    pub fn add_terminal(
        &mut self,
        name: impl Into<String>,
        offset: (i32, i32),
        ty: TermType,
    ) -> Result<(), TemplateError> {
        let name = name.into();
        let p = Point::new(offset.0, offset.1);
        if !self.on_boundary(p) {
            return Err(TemplateError::TerminalOffBoundary {
                name,
                position: offset,
            });
        }
        if self.terms.iter().any(|t| t.name == name) {
            return Err(TemplateError::DuplicateTerminal { name });
        }
        if self.terms.iter().any(|t| t.offset == p) {
            return Err(TemplateError::OverlappingTerminals { position: offset });
        }
        self.terms.push(Terminal { name, offset: p, ty });
        Ok(())
    }

    fn on_boundary(&self, p: Point) -> bool {
        let (w, h) = self.size;
        let inside = (0..=w).contains(&p.x) && (0..=h).contains(&p.y);
        inside && (p.x == 0 || p.x == w || p.y == 0 || p.y == h)
    }

    /// Template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Symbol size `(width, height)` before any rotation.
    pub fn size(&self) -> (i32, i32) {
        self.size
    }

    /// The template's terminals in declaration order.
    pub fn terminals(&self) -> &[Terminal] {
        &self.terms
    }

    /// Number of terminals.
    pub fn terminal_count(&self) -> usize {
        self.terms.len()
    }

    /// Looks up a terminal index by name.
    pub fn terminal_index(&self, name: &str) -> Option<usize> {
        self.terms.iter().position(|t| t.name == name)
    }

    /// The side of the (unrotated) template a terminal sits on.
    ///
    /// Follows the paper's `side` definition: the left and right edges
    /// win at corners (`x = 0` with any boundary `y` is `left`; `x = w`
    /// is `right`; otherwise `y = 0` is `down` and `y = h` is `up`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn terminal_side(&self, idx: usize) -> Side {
        let t = &self.terms[idx];
        let (w, h) = self.size;
        if t.offset.x == 0 {
            Side::Left
        } else if t.offset.x == w {
            Side::Right
        } else if t.offset.y == 0 {
            Side::Down
        } else {
            debug_assert_eq!(t.offset.y, h);
            Side::Up
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Template {
        Template::new("t", (4, 2)).expect("valid size")
    }

    #[test]
    fn rejects_non_positive_size() {
        assert!(matches!(
            Template::new("bad", (0, 2)),
            Err(TemplateError::NonPositiveSize { .. })
        ));
        assert!(Template::new("bad", (3, -1)).is_err());
    }

    #[test]
    fn rejects_interior_and_outside_terminals() {
        let e = t().with_terminal("a", (2, 1), TermType::In);
        assert!(matches!(e, Err(TemplateError::TerminalOffBoundary { .. })));
        assert!(t().with_terminal("a", (5, 0), TermType::In).is_err());
        assert!(t().with_terminal("a", (0, 3), TermType::In).is_err());
        assert!(t().with_terminal("a", (-1, 0), TermType::In).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        let tpl = t().with_terminal("a", (0, 1), TermType::In).unwrap();
        assert!(matches!(
            tpl.clone().with_terminal("a", (4, 1), TermType::Out),
            Err(TemplateError::DuplicateTerminal { .. })
        ));
        assert!(matches!(
            tpl.with_terminal("b", (0, 1), TermType::Out),
            Err(TemplateError::OverlappingTerminals { .. })
        ));
    }

    #[test]
    fn sides_follow_the_paper_rule() {
        let tpl = t()
            .with_terminal("l", (0, 0), TermType::In)
            .unwrap()
            .with_terminal("r", (4, 2), TermType::Out)
            .unwrap()
            .with_terminal("d", (2, 0), TermType::In)
            .unwrap()
            .with_terminal("u", (2, 2), TermType::Out)
            .unwrap();
        assert_eq!(tpl.terminal_side(0), Side::Left); // corner goes to left
        assert_eq!(tpl.terminal_side(1), Side::Right); // corner goes to right
        assert_eq!(tpl.terminal_side(2), Side::Down);
        assert_eq!(tpl.terminal_side(3), Side::Up);
    }

    #[test]
    fn lookup_by_name() {
        let tpl = t().with_terminal("a", (0, 1), TermType::In).unwrap();
        assert_eq!(tpl.terminal_index("a"), Some(0));
        assert_eq!(tpl.terminal_index("zz"), None);
        assert_eq!(tpl.terminal_count(), 1);
        assert_eq!(tpl.terminals()[0].name(), "a");
        assert_eq!(tpl.terminals()[0].ty(), TermType::In);
    }

    #[test]
    fn term_type_parsing_and_predicates() {
        assert_eq!("in".parse::<TermType>().unwrap(), TermType::In);
        assert_eq!("inout".parse::<TermType>().unwrap(), TermType::InOut);
        assert!("x".parse::<TermType>().is_err());
        assert!(TermType::In.accepts_input());
        assert!(!TermType::In.drives_output());
        assert!(TermType::Out.drives_output());
        assert!(TermType::InOut.accepts_input() && TermType::InOut.drives_output());
        assert_eq!(TermType::Out.to_string(), "out");
    }
}
