use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The underlying dense index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// Intended for iteration helpers; an id is only meaningful
            /// against the [`crate::Network`] or [`crate::Library`] it
            /// came from.
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a module instance within a [`crate::Network`].
    ModuleId,
    "m"
);
id_type!(
    /// Identifies a net within a [`crate::Network`].
    NetId,
    "n"
);
id_type!(
    /// Identifies a system terminal within a [`crate::Network`].
    SystemTermId,
    "st"
);
id_type!(
    /// Identifies a template within a [`crate::Library`].
    TemplateId,
    "t"
);

/// Index of a terminal within its module's template.
pub type TermIdx = usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let m = ModuleId::from_index(7);
        assert_eq!(m.index(), 7);
        assert_eq!(m.to_string(), "m7");
        assert_eq!(NetId::from_index(3).to_string(), "n3");
        assert_eq!(SystemTermId::from_index(0).to_string(), "st0");
        assert_eq!(TemplateId::from_index(1).to_string(), "t1");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ModuleId::from_index(1) < ModuleId::from_index(2));
    }
}
