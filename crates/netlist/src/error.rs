use std::error::Error;
use std::fmt;

/// Error constructing a [`crate::Template`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// The template size is not strictly positive.
    NonPositiveSize {
        /// Offending width and height.
        size: (i32, i32),
    },
    /// A terminal does not lie on the template boundary.
    TerminalOffBoundary {
        /// Terminal name.
        name: String,
        /// Offending relative position.
        position: (i32, i32),
    },
    /// Two terminals share a name.
    DuplicateTerminal {
        /// The duplicated name.
        name: String,
    },
    /// Two terminals share a position.
    OverlappingTerminals {
        /// The shared position.
        position: (i32, i32),
    },
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::NonPositiveSize { size } => {
                write!(f, "template size {}x{} is not strictly positive", size.0, size.1)
            }
            TemplateError::TerminalOffBoundary { name, position } => write!(
                f,
                "terminal `{name}` at ({}, {}) is not on the template boundary",
                position.0, position.1
            ),
            TemplateError::DuplicateTerminal { name } => {
                write!(f, "duplicate terminal name `{name}`")
            }
            TemplateError::OverlappingTerminals { position } => write!(
                f,
                "two terminals share position ({}, {})",
                position.0, position.1
            ),
        }
    }
}

impl Error for TemplateError {}

/// Error building a [`crate::Network`] through [`crate::NetworkBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An instance name was used twice.
    DuplicateInstance {
        /// The duplicated name.
        name: String,
    },
    /// A system terminal name was used twice.
    DuplicateSystemTerminal {
        /// The duplicated name.
        name: String,
    },
    /// A referenced template id does not exist in the library.
    UnknownTemplate {
        /// The missing id, printed as text.
        id: String,
    },
    /// A referenced instance name does not exist.
    UnknownInstance {
        /// The missing name.
        name: String,
    },
    /// A referenced terminal name does not exist on the instance's
    /// template.
    UnknownTerminal {
        /// Instance name.
        instance: String,
        /// Missing terminal name.
        terminal: String,
    },
    /// The same pin was connected to two different nets.
    PinReconnected {
        /// Description of the pin.
        pin: String,
        /// Net it was already on.
        old_net: String,
        /// Net it was also connected to.
        new_net: String,
    },
    /// A net connects fewer than two points.
    UnderfilledNet {
        /// Net name.
        net: String,
        /// Number of points it connects.
        pins: usize,
    },
    /// The memory governor refused a growth; carries the exact byte
    /// counts. Surfaces as the doctor's `ND015` diagnostic.
    ResourceExhausted(netart_govern::Exhausted),
}

impl From<netart_govern::Exhausted> for BuildError {
    fn from(e: netart_govern::Exhausted) -> Self {
        BuildError::ResourceExhausted(e)
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateInstance { name } => {
                write!(f, "duplicate instance name `{name}`")
            }
            BuildError::DuplicateSystemTerminal { name } => {
                write!(f, "duplicate system terminal name `{name}`")
            }
            BuildError::UnknownTemplate { id } => write!(f, "unknown template {id}"),
            BuildError::UnknownInstance { name } => write!(f, "unknown instance `{name}`"),
            BuildError::UnknownTerminal { instance, terminal } => {
                write!(f, "instance `{instance}` has no terminal `{terminal}`")
            }
            BuildError::PinReconnected { pin, old_net, new_net } => write!(
                f,
                "pin {pin} already on net `{old_net}`, also connected to `{new_net}`"
            ),
            BuildError::UnderfilledNet { net, pins } => {
                write!(f, "net `{net}` connects only {pins} point(s); at least 2 required")
            }
            BuildError::ResourceExhausted(e) => e.fmt(f),
        }
    }
}

impl Error for BuildError {}

/// Error parsing one of the Appendix A/B file formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where parsing failed.
    pub line: usize,
    /// 1-based column of the offending field (0 when the error is not
    /// tied to a single column).
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given 1-based line (0 for errors not
    /// tied to a line). Public so that downstream crates implementing
    /// sibling formats (e.g. the ESCHER diagram format) can reuse it.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column: 0,
            message: message.into(),
        }
    }

    /// Creates a parse error pointing at a line *and* column, both
    /// 1-based.
    pub fn at(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }

    /// The column (1-based, in characters) where `field` starts inside
    /// `line_text`, for pointing an error at the offending field. Falls
    /// back to 0 (no column) when the field cannot be located.
    pub fn column_of(line_text: &str, field: &str) -> usize {
        line_text
            .find(field)
            .map_or(0, |byte| line_text[..byte].chars().count() + 1)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(f, "line {}, column {}: {}", self.line, self.column, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TemplateError::TerminalOffBoundary {
            name: "a".into(),
            position: (2, 3),
        };
        assert!(e.to_string().contains("`a`"));
        let e = BuildError::UnderfilledNet { net: "n".into(), pins: 1 };
        assert!(e.to_string().contains("at least 2"));
        let e = ParseError::new(4, "bad record");
        assert_eq!(e.to_string(), "line 4: bad record");
    }
}
