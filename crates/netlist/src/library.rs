use std::collections::HashMap;

use crate::{BuildError, Template, TemplateId};

/// The module library (Appendix C of the paper): a store of module
/// templates addressed by id or name.
///
/// # Examples
///
/// ```
/// use netart_netlist::{Library, Template};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lib = Library::new();
/// let id = lib.add_template(Template::new("buf", (2, 2))?)?;
/// assert_eq!(lib.template(id).name(), "buf");
/// assert_eq!(lib.template_by_name("buf"), Some(id));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Library {
    templates: Vec<Template>,
    by_name: HashMap<String, TemplateId>,
}

impl Library {
    /// Creates an empty library.
    pub fn new() -> Self {
        Library::default()
    }

    /// Adds a template; the equivalent of the paper's *quinto* program
    /// registering a new module.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateInstance`]-style error when a
    /// template of the same name already exists.
    pub fn add_template(&mut self, template: Template) -> Result<TemplateId, BuildError> {
        if self.by_name.contains_key(template.name()) {
            return Err(BuildError::DuplicateInstance {
                name: template.name().to_owned(),
            });
        }
        let id = TemplateId(self.templates.len() as u32);
        self.by_name.insert(template.name().to_owned(), id);
        self.templates.push(template);
        Ok(id)
    }

    /// The template for an id.
    ///
    /// # Panics
    ///
    /// Panics when the id does not come from this library.
    pub fn template(&self, id: TemplateId) -> &Template {
        &self.templates[id.index()]
    }

    /// Looks up a template id by name.
    pub fn template_by_name(&self, name: &str) -> Option<TemplateId> {
        self.by_name.get(name).copied()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// `true` when the library holds no templates.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Iterates over `(id, template)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TemplateId, &Template)> {
        self.templates
            .iter()
            .enumerate()
            .map(|(i, t)| (TemplateId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut lib = Library::new();
        assert!(lib.is_empty());
        let a = lib.add_template(Template::new("a", (2, 2)).unwrap()).unwrap();
        let b = lib.add_template(Template::new("b", (4, 4)).unwrap()).unwrap();
        assert_ne!(a, b);
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.template(a).name(), "a");
        assert_eq!(lib.template_by_name("b"), Some(b));
        assert_eq!(lib.template_by_name("c"), None);
        let names: Vec<&str> = lib.iter().map(|(_, t)| t.name()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut lib = Library::new();
        lib.add_template(Template::new("a", (2, 2)).unwrap()).unwrap();
        assert!(lib.add_template(Template::new("a", (4, 4)).unwrap()).is_err());
    }
}
