//! Property-based tests: random well-formed networks survive the
//! Appendix A and Appendix B file formats unchanged.

use proptest::prelude::*;

use netart_netlist::{format, Library, Network, NetworkBuilder, Template, TermType};

/// Strategy for a random template: a legal size and boundary-placed
/// terminals with grid-of-10-compatible coordinates (so quinto
/// round-trips apply too).
fn template_strategy(name: String) -> impl Strategy<Value = Template> {
    (2i32..8, 2i32..8, 1usize..6).prop_map(move |(w, h, terms)| {
        let mut t = Template::new(name.clone(), (w, h)).expect("positive size");
        for i in 0..terms {
            // Walk the boundary deterministically to avoid collisions.
            let perimeter = 2 * (w + h);
            let pos = (i as i32 * perimeter / terms as i32) % perimeter;
            let p = if pos < w {
                (pos, 0)
            } else if pos < w + h {
                (w, pos - w)
            } else if pos < 2 * w + h {
                (2 * w + h - pos, h)
            } else {
                (0, perimeter - pos)
            };
            let ty = match i % 3 {
                0 => TermType::In,
                1 => TermType::Out,
                _ => TermType::InOut,
            };
            // Boundary walks may revisit corners for tiny templates.
            let _ = t.add_terminal(format!("t{i}"), p, ty);
        }
        t
    })
}

#[derive(Debug, Clone)]
struct NetworkPlan {
    template: Template,
    instances: usize,
    nets: Vec<Vec<(usize, usize)>>, // per net: (instance, terminal) pins
    system_terms: usize,
}

fn plan_strategy() -> impl Strategy<Value = NetworkPlan> {
    template_strategy("blk".to_owned())
        .prop_flat_map(|template| {
            let nterms = template.terminal_count().max(1);
            (
                Just(template),
                2usize..8,
                prop::collection::vec(
                    prop::collection::vec((0usize..8, 0usize..nterms), 2..5),
                    0..10,
                ),
                0usize..4,
            )
        })
        .prop_map(|(template, instances, nets, system_terms)| NetworkPlan {
            template,
            instances,
            nets,
            system_terms,
        })
}

fn build(plan: &NetworkPlan) -> Network {
    let mut lib = Library::new();
    let id = lib.add_template(plan.template.clone()).expect("fresh");
    let mut b = NetworkBuilder::new(lib);
    for i in 0..plan.instances {
        b.add_instance(format!("u{i}"), id).expect("unique");
    }
    for s in 0..plan.system_terms {
        b.add_system_terminal(format!("io{s}"), TermType::In).expect("unique");
    }
    let mut made = 0;
    for pins in &plan.nets {
        let name = format!("n{made}");
        // Normalise and deduplicate: connecting the same pin to the same
        // net twice is an idempotent `Ok` and must not be counted twice.
        let mut resolved: Vec<(usize, usize)> = pins
            .iter()
            .map(|&(inst, term)| {
                (
                    inst % plan.instances,
                    term % plan.template.terminal_count().max(1),
                )
            })
            .collect();
        resolved.sort_unstable();
        resolved.dedup();
        let mut attached = 0;
        for (inst, term) in resolved {
            let m = netart_netlist::ModuleId::from_index(inst);
            // Pins may already be taken by earlier nets: only fresh
            // ones attach.
            if b.connect_pin_idx(&name, m, term).is_ok() {
                attached += 1;
            }
        }
        if attached >= 2 {
            made += 1;
        } else if attached == 1 {
            // Complete an underfilled net through a system terminal or
            // by bailing out: simplest is a fresh system terminal.
            let st = b
                .add_system_terminal(format!("fill{made}"), TermType::InOut)
                .expect("unique");
            b.connect(&name, st).expect("fresh terminal");
            made += 1;
        }
    }
    if made == 0 {
        // Guarantee at least one valid net so `finish` succeeds.
        let m = netart_netlist::ModuleId::from_index(0);
        let t0 = 0;
        if b.connect_pin_idx("seed", m, t0).is_ok() {
            let st = b.add_system_terminal("seed_io", TermType::InOut).expect("unique");
            b.connect("seed", st).expect("fresh");
        }
    }
    b.finish().expect("plan is made well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Appendix A write→parse is the identity on network structure.
    #[test]
    fn appendix_a_round_trip(plan in plan_strategy()) {
        let net = build(&plan);
        let calls = format::write_call_file(&net);
        let io = format::write_io_file(&net);
        let nets = format::write_net_list_file(&net);
        let mut lib = Library::new();
        lib.add_template(plan.template.clone()).expect("fresh");
        let back = format::parse_network(lib, &nets, &calls, Some(&io)).expect("round trip");
        prop_assert_eq!(back.module_count(), net.module_count());
        prop_assert_eq!(back.net_count(), net.net_count());
        prop_assert_eq!(back.system_term_count(), net.system_term_count());
        for n in net.nets() {
            let name = net.net(n).name();
            let bn = back.net_by_name(name).expect("net survives");
            prop_assert_eq!(back.net(bn).pins().len(), net.net(n).pins().len());
            // Connectivity counting agrees.
            let a: Vec<_> = net.net_modules(n).iter().map(|m| m.index()).collect();
            let b: Vec<_> = back.net_modules(bn).iter().map(|m| m.index()).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// quinto write→parse is the identity on templates.
    #[test]
    fn quinto_round_trip(t in template_strategy("any".to_owned())) {
        let text = format::quinto::write_module(&t);
        let back = format::quinto::parse_module(&text).expect("parses own output");
        prop_assert_eq!(back, t);
    }

    /// Connection counting is symmetric and bounded by the number of
    /// nets.
    #[test]
    fn connection_count_properties(plan in plan_strategy()) {
        let net = build(&plan);
        let modules: Vec<_> = net.modules().collect();
        for &a in modules.iter().take(4) {
            for &b in modules.iter().take(4) {
                if a == b {
                    continue;
                }
                let ab = net.connection_count(a, b);
                prop_assert_eq!(ab, net.connection_count(b, a));
                prop_assert!(ab <= net.net_count());
            }
        }
    }
}
