//! Adversarial robustness: random byte-level corruption of valid input
//! files must yield a clean `Err` (or still parse) — the parsers must
//! never panic, whatever arrives. This is the property backing the
//! pipeline-hardening guarantee that bad input files fail with a
//! pointed [`netart_netlist::ParseError`], not a crash.

use proptest::prelude::*;

use netart_netlist::format::{self, quinto};
use netart_netlist::{Library, Template, TermType};

const QUINTO: &str = "module inv 40 20\nin a 0 10\nout y 40 10\n";
const NETS: &str = "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\nnout u1 y\nnout root out\n";
const CALLS: &str = "u0 inv\nu1 inv\n";
const IO: &str = "in in\nout out\n";

fn lib() -> Library {
    let mut lib = Library::new();
    lib.add_template(
        Template::new("inv", (4, 2))
            .expect("valid size")
            .with_terminal("a", (0, 1), TermType::In)
            .expect("valid terminal")
            .with_terminal("y", (4, 1), TermType::Out)
            .expect("valid terminal"),
    )
    .expect("fresh library");
    lib
}

/// One byte-level corruption: replace, insert, delete, or truncate.
fn mutate(src: &str, kind: usize, position: usize, byte: u8) -> String {
    let mut bytes = src.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let at = position % bytes.len();
    match kind % 4 {
        0 => bytes[at] = byte,
        1 => bytes.insert(at, byte),
        2 => {
            bytes.remove(at);
        }
        _ => bytes.truncate(at),
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    /// Corrupted quinto module descriptions never panic the parser.
    #[test]
    fn quinto_survives_corruption(
        kind in 0usize..4,
        position in 0usize..1024,
        byte in proptest::prelude::any::<u8>(),
    ) {
        let corrupted = mutate(QUINTO, kind, position, byte);
        let _ = quinto::parse_module(&corrupted);
    }

    /// Corrupted Appendix A files never panic the network parser, in
    /// any combination of which file is corrupted.
    #[test]
    fn network_files_survive_corruption(
        which in 0usize..3,
        kind in 0usize..4,
        position in 0usize..1024,
        byte in proptest::prelude::any::<u8>(),
    ) {
        let (nets, calls, io) = match which {
            0 => (mutate(NETS, kind, position, byte), CALLS.to_owned(), IO.to_owned()),
            1 => (NETS.to_owned(), mutate(CALLS, kind, position, byte), IO.to_owned()),
            _ => (NETS.to_owned(), CALLS.to_owned(), mutate(IO, kind, position, byte)),
        };
        let _ = format::parse_network(lib(), &nets, &calls, Some(&io));
    }

    /// Pure garbage — arbitrary short byte strings — never panics
    /// either parser.
    #[test]
    fn garbage_never_panics(
        bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..160),
    ) {
        let garbage = String::from_utf8_lossy(&bytes).into_owned();
        let _ = quinto::parse_module(&garbage);
        let _ = format::parse_network(lib(), &garbage, &garbage, Some(&garbage));
    }
}

/// Errors out of corrupted files keep pointing at a line, so the CLI
/// message stays actionable.
#[test]
fn errors_keep_line_context() {
    let err = format::parse_network(lib(), "n0 u0 y\nn0 zz a\n", CALLS, None)
        .expect_err("unknown instance");
    assert_eq!(err.line, 2);
    assert!(err.to_string().contains("line 2"), "{err}");
}

/// Field-level errors also carry the offending column.
#[test]
fn errors_carry_column_context() {
    let err = format::parse_network(lib(), "", "u0 missing\n", None)
        .expect_err("unknown template");
    assert_eq!(err.line, 1);
    assert_eq!(err.column, 4, "points at `missing`: {err}");
    assert!(err.to_string().contains("column 4"), "{err}");

    let err = quinto::parse_module("module inv 40 20\nin a 0 15\n").expect_err("off grid");
    assert_eq!(err.line, 2);
    assert_eq!(err.column, 8, "points at `15`: {err}");
}
