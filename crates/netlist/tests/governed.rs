//! Governed-ingestion contract tests: a starved memory budget makes
//! every parser stage fail closed with `ND015` (under *every* input
//! policy — exhaustion is never downgraded), the streaming reader
//! refuses rather than slurps and leaves nothing charged behind, and
//! under an adequate budget governance is invisible — governed and
//! ungoverned parses build byte-identical networks.

use std::io::Cursor;
use std::sync::Arc;

use proptest::prelude::*;

use netart_govern::MemBudget;
use netart_netlist::doctor::{self, DoctorCode, InputPolicy};
use netart_netlist::format;
use netart_netlist::ingest::{read_records, records_from_str, IngestError};
use netart_netlist::{Library, Network};

const MODULE: &str = "module inv 40 20\nin a 0 10\nout y 40 10\n";

/// A chain of `n` inverters plus the system input, as `(net, cal, io)`
/// file contents — the same shape the serve suite drives.
fn chain(n: usize) -> (String, String, String) {
    assert!(n >= 2);
    let mut net = String::from("nin root in\nnin u0 a\n");
    let mut cal = String::new();
    for k in 0..n - 1 {
        net.push_str(&format!("n{k} u{k} y\nn{k} u{} a\n", k + 1));
    }
    for k in 0..n {
        cal.push_str(&format!("u{k} inv\n"));
    }
    (net, cal, "in in\n".to_owned())
}

fn library() -> Library {
    let (template, _) =
        doctor::doctor_module_records(records_from_str(MODULE), InputPolicy::Strict)
            .expect("module fixture is clean");
    let mut lib = Library::new();
    lib.add_template(template).expect("fresh library");
    lib
}

fn parse(
    inputs: &(String, String, String),
    policy: InputPolicy,
    budget: &Arc<MemBudget>,
) -> Result<Network, doctor::DoctorError> {
    doctor::doctor_network_records(
        library(),
        records_from_str(&inputs.0),
        records_from_str(&inputs.1),
        Some(records_from_str(&inputs.2)),
        policy,
        budget,
    )
    .map(|(network, _)| network)
}

#[test]
fn tiny_budget_fails_closed_with_nd015_under_every_policy() {
    let inputs = chain(16);
    for policy in [
        InputPolicy::Strict,
        InputPolicy::Repair,
        InputPolicy::BestEffort,
    ] {
        let budget = Arc::new(MemBudget::bytes(64));
        let err = parse(&inputs, policy, &budget)
            .map(|n| (n.module_count(), n.net_count()))
            .expect_err("64 bytes cannot hold a 16-module chain");
        assert!(
            err.diagnostics
                .iter()
                .any(|d| d.code == DoctorCode::ResourceExhausted),
            "{policy:?}: {err}"
        );
        let text = err.to_string();
        assert!(text.contains("ND015"), "{policy:?}: {text}");
        assert!(text.contains("byte"), "exhaustion names its counts: {text}");
    }
}

#[test]
fn streaming_reader_refuses_oversized_lines_and_releases_its_charge() {
    let budget = MemBudget::bytes(32);
    let line = "one_single_line_well_over_the_thirty_two_byte_budget_xxxxxxxxxx";
    let err = read_records(Cursor::new(line), &budget, "net-list file")
        .expect_err("the line alone exceeds the budget");
    assert!(matches!(err, IngestError::Exhausted(_)), "{err}");
    // A refused read must leave nothing charged behind.
    assert_eq!(budget.used(), 0);
}

#[test]
fn successful_read_keeps_only_the_records_charge() {
    let budget = MemBudget::bytes(4096);
    let src = "# comment\n\nn0 u0 y\nn0 u1 a\n";
    let records = read_records(Cursor::new(src), &budget, "net-list file")
        .expect("fits comfortably");
    assert_eq!(records.len(), 2);
    let expected: u64 = records.iter().map(|r| r.cost()).sum();
    // The transient line buffers were released; what stays charged is
    // exactly the records the caller now owns.
    assert_eq!(budget.used(), expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under an adequate budget the governor is invisible: governed
    /// and ungoverned parses write byte-identical network files, and
    /// the governed charge never exceeds its limit.
    #[test]
    fn governed_parse_matches_ungoverned_under_budget(
        n in 2usize..40,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            InputPolicy::Strict,
            InputPolicy::Repair,
            InputPolicy::BestEffort,
        ][policy_idx];
        let inputs = chain(n);
        let free = parse(&inputs, policy, &Arc::new(MemBudget::unlimited()))
            .expect("chain fixture is clean");
        let budget = Arc::new(MemBudget::bytes(1 << 20));
        let governed = parse(&inputs, policy, &budget).expect("well under budget");
        prop_assert!(budget.used() <= budget.limit());
        prop_assert_eq!(
            format::write_net_list_file(&governed),
            format::write_net_list_file(&free)
        );
        prop_assert_eq!(
            format::write_call_file(&governed),
            format::write_call_file(&free)
        );
        prop_assert_eq!(
            format::write_io_file(&governed),
            format::write_io_file(&free)
        );
    }
}
