//! Seeded random network generation for property tests and scaling
//! sweeps.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use netart_netlist::{Library, ModuleId, Network, NetworkBuilder, Template, TermType};

/// Parameters of a random network.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSpec {
    /// Number of modules.
    pub modules: usize,
    /// Number of nets (each with 2–`max_fanout` pins).
    pub nets: usize,
    /// Maximum pins per net (at least 2).
    pub max_fanout: usize,
    /// Number of system terminals (each on its own extra net).
    pub system_terminals: usize,
    /// RNG seed: identical specs produce identical networks.
    pub seed: u64,
}

impl Default for RandomSpec {
    fn default() -> Self {
        RandomSpec {
            modules: 12,
            nets: 18,
            max_fanout: 3,
            system_terminals: 2,
            seed: 1,
        }
    }
}

impl RandomSpec {
    /// A spec with the given module and net counts, defaults otherwise.
    pub fn new(modules: usize, nets: usize) -> Self {
        RandomSpec {
            modules,
            nets,
            ..RandomSpec::default()
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the maximum fanout.
    pub fn with_max_fanout(mut self, fanout: usize) -> Self {
        self.max_fanout = fanout.max(2);
        self
    }
}

/// Generates a random network: every module is a 4-in / 4-out block;
/// each requested net picks one driver pin and 1..`max_fanout`-1
/// distinct sink pins. Pins are never reused, so the generator caps
/// the realised net count at pin availability (8 pins per module).
///
/// # Examples
///
/// ```
/// use netart_workloads::{random_network, RandomSpec};
///
/// let a = random_network(&RandomSpec::new(10, 15));
/// let b = random_network(&RandomSpec::new(10, 15));
/// assert_eq!(a.net_count(), b.net_count()); // deterministic
/// assert_eq!(a.module_count(), 10);
/// ```
pub fn random_network(spec: &RandomSpec) -> Network {
    assert!(spec.modules >= 2, "random networks need at least 2 modules");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let mut lib = Library::new();
    let mut t = Template::new("blk", (6, 10)).expect("static template");
    for i in 0..4 {
        t.add_terminal(format!("i{i}"), (0, 1 + 2 * i), TermType::In)
            .expect("static template");
        t.add_terminal(format!("o{i}"), (6, 1 + 2 * i), TermType::Out)
            .expect("static template");
    }
    let blk = lib.add_template(t).expect("fresh library");

    let mut b = NetworkBuilder::new(lib);
    let ms: Vec<ModuleId> = (0..spec.modules)
        .map(|i| b.add_instance(format!("u{i}"), blk).expect("unique"))
        .collect();

    // Free pin pools: (module, pin name).
    let mut free_out: Vec<(ModuleId, String)> = Vec::new();
    let mut free_in: Vec<(ModuleId, String)> = Vec::new();
    for &m in &ms {
        for i in 0..4 {
            free_out.push((m, format!("o{i}")));
            free_in.push((m, format!("i{i}")));
        }
    }
    free_out.shuffle(&mut rng);
    free_in.shuffle(&mut rng);

    let mut made = 0;
    while made < spec.nets && !free_out.is_empty() && !free_in.is_empty() {
        let (driver, dpin) = free_out.pop().expect("checked non-empty");
        // Choose the sinks before connecting anything, so a net is only
        // created once it is guaranteed at least two pins. Sinks avoid
        // the driver module (self-loop nets are legal but visually
        // silly).
        let wanted = rng.gen_range(1..spec.max_fanout.max(2));
        let mut sinks = Vec::new();
        while sinks.len() < wanted {
            let Some(pos) = free_in.iter().rposition(|(m, _)| *m != driver) else {
                break;
            };
            sinks.push(free_in.remove(pos));
        }
        if sinks.is_empty() {
            break;
        }
        let name = format!("n{made}");
        b.connect_pin(&name, driver, &dpin).expect("pin is free");
        for (sink, spin) in sinks {
            b.connect_pin(&name, sink, &spin).expect("pin is free");
        }
        made += 1;
    }

    for i in 0..spec.system_terminals {
        if free_in.is_empty() {
            break;
        }
        let st = b
            .add_system_terminal(format!("io{i}"), TermType::In)
            .expect("unique");
        let name = format!("io_n{i}");
        b.connect(&name, st).expect("fresh net");
        let (sink, spin) = free_in.pop().expect("checked non-empty");
        b.connect_pin(&name, sink, &spin).expect("pin is free");
    }

    b.finish().expect("random network is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = RandomSpec::new(10, 14).with_seed(42);
        let a = random_network(&spec);
        let b = random_network(&spec);
        assert_eq!(a.net_count(), b.net_count());
        for n in a.nets() {
            assert_eq!(a.net(n).pins(), b.net(n).pins());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_network(&RandomSpec::new(10, 14).with_seed(1));
        let b = random_network(&RandomSpec::new(10, 14).with_seed(2));
        let same = a
            .nets()
            .all(|n| b.net_by_name(a.net(n).name()).is_some_and(|m| b.net(m).pins() == a.net(n).pins()));
        assert!(!same, "seeds should shuffle connectivity");
    }

    #[test]
    fn respects_requested_sizes() {
        let net = random_network(&RandomSpec::new(20, 30));
        assert_eq!(net.module_count(), 20);
        // 30 nets need 30 drivers out of 80 out-pins: always realised.
        assert_eq!(net.net_count(), 30 + 2);
        assert_eq!(net.system_term_count(), 2);
    }

    #[test]
    fn caps_at_pin_availability() {
        // 2 modules = 8 out pins, 8 in pins: at most 8 nets.
        let net = random_network(&RandomSpec {
            modules: 2,
            nets: 100,
            max_fanout: 2,
            system_terminals: 0,
            seed: 7,
        });
        assert!(net.net_count() <= 8, "{}", net.net_count());
        for n in net.nets() {
            assert!(net.net(n).pins().len() >= 2);
        }
    }

    #[test]
    fn no_self_loop_two_point_nets() {
        let net = random_network(&RandomSpec::new(6, 10).with_seed(3));
        for n in net.nets() {
            let has_system = net
                .net(n)
                .pins()
                .iter()
                .any(|p| matches!(p, netart_netlist::Pin::System(_)));
            if has_system {
                continue;
            }
            let ms = net.net_modules(n);
            assert!(
                ms.len() >= 2,
                "net {} connects only {:?}",
                net.net(n).name(),
                ms
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_spec_rejected() {
        let _ = random_network(&RandomSpec::new(1, 1));
    }
}
