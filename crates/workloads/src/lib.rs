//! Workload generators reconstructing the evaluation networks of
//! Koster & Stok (1989), §6.
//!
//! The paper's own input files were never published, so these builders
//! recreate networks with the documented structure and exact sizes:
//!
//! * [`string_chain`] — the module string of figure 6.1 (6 modules,
//!   6 nets),
//! * [`controller_cluster`] — the 16-module / 24-net network behind
//!   figures 6.2–6.5: a central controller with functional groups,
//! * [`life::network`] — the game-of-LIFE circuit of figures 6.6/6.7
//!   (27 modules, 222 nets) together with its natural hand placement,
//! * [`random_network`] — seeded random netlists for property tests
//!   and scaling sweeps.
//!
//! All builders are deterministic: the same parameters (and seed)
//! always produce identical networks.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod life;
mod random;
pub mod text;

pub use random::{random_network, RandomSpec};

use netart_netlist::{Library, ModuleId, Network, NetworkBuilder, Template, TermType};

/// The library used by the small workloads: a buffer, a processing
/// element with two inputs/two outputs, and a wide controller.
fn base_library() -> Library {
    let mut lib = Library::new();
    lib.add_template(
        Template::new("buf", (4, 2))
            .expect("static template")
            .with_terminal("a", (0, 1), TermType::In)
            .expect("static template")
            .with_terminal("y", (4, 1), TermType::Out)
            .expect("static template"),
    )
    .expect("fresh library");
    lib.add_template(
        Template::new("pe", (5, 4))
            .expect("static template")
            .with_terminal("a", (0, 1), TermType::In)
            .expect("static template")
            .with_terminal("b", (0, 3), TermType::In)
            .expect("static template")
            .with_terminal("x", (5, 1), TermType::Out)
            .expect("static template")
            .with_terminal("y", (5, 3), TermType::Out)
            .expect("static template"),
    )
    .expect("fresh library");
    let mut ctrl = Template::new("ctrl", (6, 16)).expect("static template");
    for i in 0..8 {
        ctrl.add_terminal(format!("o{i}"), (6, 2 * i + 1), TermType::Out)
            .expect("static template");
        ctrl.add_terminal(format!("i{i}"), (0, 2 * i + 1), TermType::In)
            .expect("static template");
    }
    lib.add_template(ctrl).expect("fresh library");
    lib
}

/// The figure 6.1 workload: a chain of `n` buffers ending in a system
/// output. With `n = 6` the network has the paper's 6 modules and
/// 6 nets (`n - 1` chain nets plus the output net); the head buffer's
/// input is the string's source and stays unconnected.
///
/// # Examples
///
/// ```
/// let net = netart_workloads::string_chain(6);
/// assert_eq!(net.module_count(), 6);
/// assert_eq!(net.net_count(), 6);
/// ```
pub fn string_chain(n: usize) -> Network {
    assert!(n >= 1, "a chain needs at least one module");
    let lib = base_library();
    let buf = lib.template_by_name("buf").expect("base library");
    let mut b = NetworkBuilder::new(lib);
    let ms: Vec<ModuleId> = (0..n)
        .map(|i| b.add_instance(format!("u{i}"), buf).expect("unique names"))
        .collect();
    let output = b
        .add_system_terminal("out", TermType::Out)
        .expect("unique names");
    for w in ms.windows(2) {
        let name = format!("n{}", w[0].index());
        b.connect_pin(&name, w[0], "y").expect("buf has y");
        b.connect_pin(&name, w[1], "a").expect("buf has a");
    }
    b.connect("n_out", output).expect("fresh net");
    b.connect_pin("n_out", ms[n - 1], "y").expect("buf has y");
    b.finish().expect("chain is well-formed")
}

/// The figures 6.2–6.5 workload: 16 modules and 24 nets. A controller
/// in the centre drives three functional groups of five processing
/// elements each; each group is internally chained, giving the paper's
/// "distinct partitions containing a typical clustering structure"
/// around the controller.
///
/// # Examples
///
/// ```
/// let net = netart_workloads::controller_cluster();
/// assert_eq!(net.module_count(), 16);
/// assert_eq!(net.net_count(), 24);
/// ```
pub fn controller_cluster() -> Network {
    let lib = base_library();
    let pe = lib.template_by_name("pe").expect("base library");
    let ctrl_t = lib.template_by_name("ctrl").expect("base library");
    let mut b = NetworkBuilder::new(lib);

    let ctrl = b.add_instance("ctrl", ctrl_t).expect("unique names");
    let mut groups: Vec<Vec<ModuleId>> = Vec::new();
    for g in 0..3 {
        let ms: Vec<ModuleId> = (0..5)
            .map(|i| {
                b.add_instance(format!("g{g}_pe{i}"), pe)
                    .expect("unique names")
            })
            .collect();
        groups.push(ms);
    }

    // Intra-group chains: 4 nets per group (12 total) through the
    // x -> a ports, plus a dense extra link y -> b between the first
    // pair (3 more), expressing strong internal cohesion: 15 nets.
    for (g, ms) in groups.iter().enumerate() {
        for (i, w) in ms.windows(2).enumerate() {
            let name = format!("g{g}_c{i}");
            b.connect_pin(&name, w[0], "x").expect("pe has x");
            b.connect_pin(&name, w[1], "a").expect("pe has a");
        }
        let name = format!("g{g}_d0");
        b.connect_pin(&name, ms[0], "y").expect("pe has y");
        b.connect_pin(&name, ms[1], "b").expect("pe has b");
    }

    // Controller fan-out: 2 command nets into each group (6) and one
    // status net back from each group (3): 9 nets. 15 + 9 = 24.
    for (g, ms) in groups.iter().enumerate() {
        let cmd0 = format!("cmd{g}a");
        b.connect_pin(&cmd0, ctrl, &format!("o{}", 2 * g)).expect("ctrl port");
        b.connect_pin(&cmd0, ms[2], "b").expect("pe has b");
        let cmd1 = format!("cmd{g}b");
        b.connect_pin(&cmd1, ctrl, &format!("o{}", 2 * g + 1)).expect("ctrl port");
        b.connect_pin(&cmd1, ms[3], "b").expect("pe has b");
        let status = format!("st{g}");
        b.connect_pin(&status, ms[4], "y").expect("pe has y");
        b.connect_pin(&status, ctrl, &format!("i{g}")).expect("ctrl port");
    }

    b.finish().expect("cluster is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_chain_sizes() {
        let net = string_chain(6);
        assert_eq!(net.module_count(), 6);
        assert_eq!(net.net_count(), 6);
        assert_eq!(net.system_term_count(), 1);
    }

    #[test]
    fn string_chain_is_a_driver_chain() {
        let net = string_chain(5);
        let ms: Vec<ModuleId> = net.modules().collect();
        for w in ms.windows(2) {
            assert!(net.drives(w[0], w[1]).is_some());
            assert!(net.drives(w[1], w[0]).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_chain_rejected() {
        let _ = string_chain(0);
    }

    #[test]
    fn controller_cluster_sizes_match_paper() {
        let net = controller_cluster();
        assert_eq!(net.module_count(), 16, "figure 6.2: 16 modules");
        assert_eq!(net.net_count(), 24, "table 6.1: 24 nets");
    }

    #[test]
    fn controller_touches_every_group() {
        let net = controller_cluster();
        let ctrl = net.module_by_name("ctrl").unwrap();
        for g in 0..3 {
            let any_link = (0..5).any(|i| {
                let m = net.module_by_name(&format!("g{g}_pe{i}")).unwrap();
                net.connection_count(ctrl, m) > 0
            });
            assert!(any_link, "group {g} unreachable from controller");
        }
    }

    #[test]
    fn groups_are_denser_inside_than_to_controller() {
        let net = controller_cluster();
        for g in 0..3 {
            let ms: Vec<ModuleId> = (0..5)
                .map(|i| net.module_by_name(&format!("g{g}_pe{i}")).unwrap())
                .collect();
            let internal: usize = (0..5)
                .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
                .map(|(i, j)| net.connection_count(ms[i], ms[j]))
                .sum();
            let ctrl = net.module_by_name("ctrl").unwrap();
            let external: usize = ms.iter().map(|&m| net.connection_count(m, ctrl)).sum();
            assert!(internal > external, "group {g}: {internal} vs {external}");
        }
    }

    #[test]
    fn deterministic() {
        let a = controller_cluster();
        let b = controller_cluster();
        assert_eq!(a.net_count(), b.net_count());
        for n in a.nets() {
            assert_eq!(a.net(n).name(), b.net(n).name());
            assert_eq!(a.net(n).pins(), b.net(n).pins());
        }
    }
}
