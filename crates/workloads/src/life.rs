//! The game-of-LIFE network of figures 6.6/6.7 (example 3 of §6).
//!
//! The paper routes a LIFE circuit of **27 modules and 222 nets** —
//! first over a hand placement (figure 6.6, two unroutable nets),
//! then fully automatically (figure 6.7, markedly slower routing).
//! The original netlist was never published; this module reconstructs
//! a circuit of exactly that size and character: a 5×5 cell array with
//! per-neighbour two-point nets, a horizontal carry chain, a serpentine
//! state shift chain, row/column select and sense lines, global clock
//! and mode nets, a controller and a clock generator, plus 15 system
//! terminals for the command interface.
//!
//! Net budget: 144 neighbour nets + 20 carry + 26 shift + 5 row select
//! \+ 5 row data + 5 column sense + 1 clock + 1 mode + 15 I/O = **222**.
//! Modules: 25 cells + controller + clock generator = **27**.

use netart_geom::{Point, Rotation};
use netart_netlist::{Library, ModuleId, Network, NetworkBuilder, Template, TermType};

use netart_diagram::Placement;

/// Grid side of the cell array.
pub const GRID: usize = 5;

/// Neighbour direction deltas `(dx, dy)`, indexed 0..8 such that the
/// opposite of direction `k` is `7 - k`.
const DIRS: [(i32, i32); 8] = [
    (-1, 1),  // 0: NW
    (0, 1),   // 1: N
    (1, 1),   // 2: NE
    (-1, 0),  // 3: W
    (1, 0),   // 4: E
    (-1, -1), // 5: SW
    (0, -1),  // 6: S
    (1, -1),  // 7: SE
];

fn cell_template() -> Template {
    use TermType::{In, Out};
    let pins: &[(&str, (i32, i32), TermType)] = &[
        // left edge
        ("n5", (0, 1), In),
        ("o3", (0, 2), Out),
        ("carry_in", (0, 3), In),
        ("n3", (0, 5), In),
        ("d", (0, 7), In),
        ("shift_in", (0, 9), In),
        ("n0", (0, 11), In),
        // right edge
        ("o7", (10, 1), Out),
        ("carry_out", (10, 3), Out),
        ("n4", (10, 5), In),
        ("o4", (10, 7), Out),
        ("shift_out", (10, 9), Out),
        ("o2", (10, 11), Out),
        // top edge
        ("o0", (2, 12), Out),
        ("n1", (4, 12), In),
        ("o1", (6, 12), Out),
        ("n2", (8, 12), In),
        ("sense", (9, 12), Out),
        // bottom edge
        ("clk", (1, 0), In),
        ("o5", (2, 0), Out),
        ("n6", (4, 0), In),
        ("sel", (5, 0), In),
        ("o6", (6, 0), Out),
        ("n7", (8, 0), In),
        ("mode", (9, 0), In),
    ];
    let mut t = Template::new("cell", (10, 12)).expect("static template");
    for &(name, pos, ty) in pins {
        t.add_terminal(name, pos, ty).expect("static template");
    }
    t
}

fn controller_template() -> Template {
    use TermType::{In, Out};
    let mut t = Template::new("lifectl", (10, 16)).expect("static template");
    for i in 0..8 {
        t.add_terminal(format!("cmd{i}"), (0, 1 + i), In).expect("static");
    }
    for i in 0..4 {
        t.add_terminal(format!("addr{i}"), (0, 9 + i), In).expect("static");
    }
    t.add_terminal("start", (0, 13), In).expect("static");
    t.add_terminal("reset", (0, 14), In).expect("static");
    for i in 0..5 {
        t.add_terminal(format!("row{i}"), (10, 1 + i), Out).expect("static");
        t.add_terminal(format!("rowdata{i}"), (10, 6 + i), Out).expect("static");
    }
    t.add_terminal("mode", (10, 11), Out).expect("static");
    for i in 0..5i32 {
        t.add_terminal(format!("col{i}"), (1 + i, 16), In).expect("static");
    }
    t.add_terminal("done", (7, 16), Out).expect("static");
    t.add_terminal("serial", (8, 16), Out).expect("static");
    t.add_terminal("clk", (1, 0), In).expect("static");
    t.add_terminal("chain", (3, 0), In).expect("static");
    t
}

fn clock_template() -> Template {
    Template::new("clkgen", (4, 2))
        .expect("static template")
        .with_terminal("en", (0, 1), TermType::In)
        .expect("static template")
        .with_terminal("clk", (4, 1), TermType::Out)
        .expect("static template")
}

fn cell_name(r: usize, c: usize) -> String {
    format!("cell_{r}_{c}")
}

/// Builds the LIFE network: 27 modules, 222 nets, 15 system terminals.
///
/// # Examples
///
/// ```
/// let net = netart_workloads::life::network();
/// assert_eq!(net.module_count(), 27);
/// assert_eq!(net.net_count(), 222);
/// ```
pub fn network() -> Network {
    let mut lib = Library::new();
    lib.add_template(cell_template()).expect("fresh library");
    lib.add_template(controller_template()).expect("fresh library");
    lib.add_template(clock_template()).expect("fresh library");
    let cell_t = lib.template_by_name("cell").expect("added");
    let ctl_t = lib.template_by_name("lifectl").expect("added");
    let clk_t = lib.template_by_name("clkgen").expect("added");

    let mut b = NetworkBuilder::new(lib);
    let mut cells = [[None::<ModuleId>; GRID]; GRID];
    for (r, row) in cells.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = Some(b.add_instance(cell_name(r, c), cell_t).expect("unique"));
        }
    }
    let cell = |r: usize, c: usize| cells[r][c].expect("filled above");
    let ctl = b.add_instance("ctl", ctl_t).expect("unique");
    let clk = b.add_instance("clk", clk_t).expect("unique");

    // 144 neighbour nets: one two-point net per directed adjacency.
    for r in 0..GRID {
        for c in 0..GRID {
            for (k, (dx, dy)) in DIRS.iter().enumerate() {
                let (tr, tc) = (r as i32 + dy, c as i32 + dx);
                if !(0..GRID as i32).contains(&tr) || !(0..GRID as i32).contains(&tc) {
                    continue;
                }
                let name = format!("e_{r}_{c}_{k}");
                b.connect_pin(&name, cell(r, c), &format!("o{k}")).expect("cell pin");
                b.connect_pin(&name, cell(tr as usize, tc as usize), &format!("n{}", 7 - k))
                    .expect("cell pin");
            }
        }
    }

    // 20 carry-chain nets, left to right within each row.
    for r in 0..GRID {
        for c in 0..GRID - 1 {
            let name = format!("carry_{r}_{c}");
            b.connect_pin(&name, cell(r, c), "carry_out").expect("cell pin");
            b.connect_pin(&name, cell(r, c + 1), "carry_in").expect("cell pin");
        }
    }

    // 26 shift nets: a serpentine through all cells, seeded from the
    // controller's serial output and ending at its chain input.
    let mut order: Vec<(usize, usize)> = Vec::new();
    for r in 0..GRID {
        let cols: Vec<usize> = if r % 2 == 0 {
            (0..GRID).collect()
        } else {
            (0..GRID).rev().collect()
        };
        for c in cols {
            order.push((r, c));
        }
    }
    for (i, w) in order.windows(2).enumerate() {
        let name = format!("shift_{i}");
        b.connect_pin(&name, cell(w[0].0, w[0].1), "shift_out").expect("cell pin");
        b.connect_pin(&name, cell(w[1].0, w[1].1), "shift_in").expect("cell pin");
    }
    let (lr, lc) = *order.last().expect("non-empty order");
    b.connect_pin("shift_end", cell(lr, lc), "shift_out").expect("cell pin");
    b.connect_pin("shift_end", ctl, "chain").expect("ctl pin");
    b.connect_pin("shift_seed", ctl, "serial").expect("ctl pin");
    b.connect_pin("shift_seed", cell(order[0].0, order[0].1), "shift_in").expect("cell pin");

    // 5 row-select + 5 row-data nets.
    for r in 0..GRID {
        let sel = format!("rowsel_{r}");
        b.connect_pin(&sel, ctl, &format!("row{r}")).expect("ctl pin");
        let data = format!("rowdat_{r}");
        b.connect_pin(&data, ctl, &format!("rowdata{r}")).expect("ctl pin");
        for c in 0..GRID {
            b.connect_pin(&sel, cell(r, c), "sel").expect("cell pin");
            b.connect_pin(&data, cell(r, c), "d").expect("cell pin");
        }
    }

    // 5 column sense nets.
    for c in 0..GRID {
        let name = format!("colsense_{c}");
        b.connect_pin(&name, ctl, &format!("col{c}")).expect("ctl pin");
        for r in 0..GRID {
            b.connect_pin(&name, cell(r, c), "sense").expect("cell pin");
        }
    }

    // Global clock (26 loads) and mode (25 loads).
    b.connect_pin("clknet", clk, "clk").expect("clk pin");
    b.connect_pin("clknet", ctl, "clk").expect("ctl pin");
    for r in 0..GRID {
        for c in 0..GRID {
            b.connect_pin("clknet", cell(r, c), "clk").expect("cell pin");
            b.connect_pin("modenet", cell(r, c), "mode").expect("cell pin");
        }
    }
    b.connect_pin("modenet", ctl, "mode").expect("ctl pin");

    // 15 I/O nets through system terminals.
    let io = |name: &str, ty: TermType, inst: ModuleId, pin: &str, b: &mut NetworkBuilder| {
        let st = b.add_system_terminal(name, ty).expect("unique");
        let net = format!("io_{name}");
        b.connect(&net, st).expect("fresh net");
        b.connect_pin(&net, inst, pin).expect("pin");
    };
    for i in 0..8 {
        io(&format!("cmd{i}"), TermType::In, ctl, &format!("cmd{i}"), &mut b);
    }
    for i in 0..4 {
        io(&format!("addr{i}"), TermType::In, ctl, &format!("addr{i}"), &mut b);
    }
    io("start", TermType::In, ctl, "start", &mut b);
    io("reset", TermType::In, ctl, "reset", &mut b);
    io("done", TermType::Out, ctl, "done", &mut b);
    let _ = clk; // the generator's enable pin stays unconnected

    b.finish().expect("LIFE network is well-formed")
}

/// The hand placement of figure 6.6: cells on a regular 5×5 raster,
/// controller and clock generator on the left, system terminals along
/// the left edge. The designer's layout the paper routed first.
pub fn hand_placement(network: &Network) -> Placement {
    let mut p = Placement::new(network);
    let (x0, y0) = (24, 0);
    let (px, py) = (10 + 10, 12 + 10);
    for r in 0..GRID {
        for c in 0..GRID {
            let m = network
                .module_by_name(&cell_name(r, c))
                .expect("LIFE network");
            p.place_module(
                m,
                Point::new(x0 + c as i32 * px, y0 + r as i32 * py),
                Rotation::R0,
            );
        }
    }
    let ctl = network.module_by_name("ctl").expect("LIFE network");
    p.place_module(ctl, Point::new(0, 48), Rotation::R0);
    let clk = network.module_by_name("clk").expect("LIFE network");
    p.place_module(clk, Point::new(2, 24), Rotation::R0);
    // The designer lines the I/O pads up with the controller pins:
    // cmd0..7, addr0..3, start and reset sit opposite their left-edge
    // pins (y = 49..62); done goes above the controller near its top
    // pin.
    for (i, st) in network.system_terms().enumerate() {
        let pos = if network.system_term(st).name() == "done" {
            Point::new(7, 68)
        } else {
            Point::new(-6, 49 + i as i32)
        };
        p.place_system_term(st, pos);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        let net = network();
        assert_eq!(net.module_count(), 27, "figure 6.6: 27 modules");
        assert_eq!(net.net_count(), 222, "table 6.1: 222 nets");
        assert_eq!(net.system_term_count(), 15);
    }

    #[test]
    fn neighbour_nets_are_two_point() {
        let net = network();
        let mut neighbour = 0;
        for n in net.nets() {
            if net.net(n).name().starts_with("e_") {
                neighbour += 1;
                assert_eq!(net.net(n).pins().len(), 2, "{}", net.net(n).name());
            }
        }
        assert_eq!(neighbour, 144);
    }

    #[test]
    fn corner_cells_have_three_neighbours() {
        let net = network();
        let corner = net.module_by_name("cell_0_0").unwrap();
        let outgoing = net
            .nets()
            .filter(|&n| {
                net.net(n).name().starts_with("e_0_0_") && net.net_modules(n).contains(&corner)
            })
            .count();
        assert_eq!(outgoing, 3);
    }

    #[test]
    fn clock_reaches_everything() {
        let net = network();
        let clknet = net.net_by_name("clknet").unwrap();
        assert_eq!(net.net(clknet).pins().len(), 27, "clock + ctl + 25 cells");
    }

    #[test]
    fn shift_chain_is_connected_order() {
        let net = network();
        // 24 internal + seed + end = 26 shift nets; all two-point.
        let shift: Vec<_> = net
            .nets()
            .filter(|&n| net.net(n).name().starts_with("shift"))
            .collect();
        assert_eq!(shift.len(), 26);
        for n in shift {
            assert_eq!(net.net(n).pins().len(), 2);
        }
    }

    #[test]
    fn hand_placement_is_complete_and_legal() {
        let net = network();
        let p = hand_placement(&net);
        assert!(p.is_complete());
        assert_eq!(p.overlap_violations(&net), Vec::<String>::new());
    }
}
