//! Text-format workload generators: Appendix A/B input *files*, not
//! in-memory networks.
//!
//! The in-memory builders ([`crate::string_chain`],
//! [`crate::random_network`], …) bypass the parsers, which makes them
//! useless for exercising the memory-governed ingestion path. The
//! generators here emit the actual on-disk formats — `.qto` module
//! descriptions, a net-list, a call file, an io file — so a workload
//! can be streamed through the same `read_records` / doctor pipeline a
//! user's files take, under the same `--max-input-bytes` /
//! `--max-network-bytes` budgets.
//!
//! Two families:
//!
//! * **scaled** — regular structures parameterised far past the
//!   paper's 27-module ceiling: [`cell_array`] (systolic grids),
//!   [`random_hierarchy`] (seeded random trees of hubs),
//!   [`datapath_stack`] (bit-sliced stages with wide control nets).
//!   Useful from 10³ to 10⁵ modules.
//! * **adversarial** — inputs built to hurt: [`pathological_fanout`]
//!   (one net with thousands of pins), [`amplified_calls`] (huge call
//!   text over a one-template library), and the
//!   [`TextWorkload::with_truncated_tail`] /
//!   [`TextWorkload::with_garbage_tail`] mutators (mid-record EOF,
//!   seeded binary noise).
//!
//! Every generator is deterministic to the byte: the same parameters
//! (and seed) always produce identical file contents, so workloads can
//! be content-addressed, diffed, and pinned as baselines.

use std::io;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One workload as file contents: a module library plus the netlist
/// trio. Nothing touches the filesystem until [`TextWorkload::write_to`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextWorkload {
    /// A short slug naming the workload (used for directory names and
    /// report labels).
    pub name: String,
    /// The module library: `(file stem, .qto text)` pairs.
    pub modules: Vec<(String, String)>,
    /// The net-list file (`net instance terminal` records).
    pub net: String,
    /// The call file (`instance template` records).
    pub cal: String,
    /// The io file (`name direction` records); empty when the workload
    /// declares no system terminals.
    pub io: String,
}

/// Where [`TextWorkload::write_to`] put the files.
#[derive(Debug, Clone)]
pub struct WorkloadPaths {
    /// The module library directory (contains the `.qto` files).
    pub lib: PathBuf,
    /// The net-list file.
    pub net: PathBuf,
    /// The call file.
    pub cal: PathBuf,
    /// The io file, if the workload has system terminals.
    pub io: Option<PathBuf>,
}

impl TextWorkload {
    /// Total bytes across every generated file — what an ungoverned
    /// reader would slurp, and the scale a `--max-input-bytes` budget
    /// is judged against.
    pub fn total_bytes(&self) -> u64 {
        let modules: usize = self.modules.iter().map(|(_, text)| text.len()).sum();
        (modules + self.net.len() + self.cal.len() + self.io.len()) as u64
    }

    /// Instances declared in the call file — the workload's module
    /// count.
    pub fn module_count(&self) -> usize {
        self.cal.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Writes the workload under `dir`: `lib/<stem>.qto` for each
    /// module, plus `<name>.net`, `<name>.cal` and (when non-empty)
    /// `<name>.io`.
    ///
    /// # Errors
    ///
    /// Any filesystem error from creating the directories or writing
    /// the files.
    pub fn write_to(&self, dir: &Path) -> io::Result<WorkloadPaths> {
        let lib = dir.join("lib");
        std::fs::create_dir_all(&lib)?;
        for (stem, text) in &self.modules {
            std::fs::write(lib.join(format!("{stem}.qto")), text)?;
        }
        let net = dir.join(format!("{}.net", self.name));
        let cal = dir.join(format!("{}.cal", self.name));
        std::fs::write(&net, &self.net)?;
        std::fs::write(&cal, &self.cal)?;
        let io = if self.io.is_empty() {
            None
        } else {
            let p = dir.join(format!("{}.io", self.name));
            std::fs::write(&p, &self.io)?;
            Some(p)
        };
        Ok(WorkloadPaths { lib, net, cal, io })
    }

    /// Adversarial mutator: truncates the net-list to `keep` bytes,
    /// leaving the last record cut mid-field — the "connection died
    /// mid-transfer" shape. The cut point is byte-exact, so mutated
    /// workloads are as deterministic as their parents.
    #[must_use]
    pub fn with_truncated_tail(mut self, keep: usize) -> TextWorkload {
        self.net.truncate(keep.min(self.net.len()));
        self.name.push_str("_trunc");
        self
    }

    /// Adversarial mutator: appends `lines` lines of seeded garbage to
    /// the net-list — plausible-length tokens of printable noise that
    /// parse as records but name nothing real, the "corrupted tail"
    /// shape.
    #[must_use]
    pub fn with_garbage_tail(mut self, lines: usize, seed: u64) -> TextWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..lines {
            let fields = rng.gen_range(1..6usize);
            for k in 0..fields {
                if k > 0 {
                    self.net.push(' ');
                }
                let len = rng.gen_range(1..24usize);
                for _ in 0..len {
                    // Printable, never '#' (comments would be skipped).
                    let c = b'!' + rng.gen_range(2..90u8);
                    self.net.push(c as char);
                }
            }
            self.net.push('\n');
        }
        self.name.push_str("_garbage");
        self
    }
}

/// The shared cell template: two inputs on the west edge, two outputs
/// on the east, all on the doctor's 10-unit grid.
fn cell_qto(name: &str) -> String {
    format!(
        "module {name} 40 40\n\
         in a 0 10\nin b 0 30\nout x 40 10\nout y 40 30\n"
    )
}

/// A `rows`×`cols` systolic cell array: every cell drives its east
/// neighbour (`x → a`) and its south neighbour (`y → b`), the west
/// column is fed from system inputs, the south-east corner drives a
/// system output. Module count is exactly `rows * cols`; net count is
/// close to `2 * rows * cols`. Byte-deterministic.
///
/// # Examples
///
/// ```
/// let w = netart_workloads::text::cell_array(4, 8);
/// assert_eq!(w.module_count(), 32);
/// assert_eq!(w, netart_workloads::text::cell_array(4, 8));
/// ```
pub fn cell_array(rows: usize, cols: usize) -> TextWorkload {
    assert!(rows >= 1 && cols >= 1, "a cell array needs at least one cell");
    let mut net = String::new();
    let mut cal = String::new();
    let mut io = String::new();
    let cell = |r: usize, c: usize| format!("c{r}_{c}");
    for r in 0..rows {
        for c in 0..cols {
            cal.push_str(&format!("{} cell\n", cell(r, c)));
            if c + 1 < cols {
                let n = format!("e{r}_{c}");
                net.push_str(&format!("{n} {} x\n{n} {} a\n", cell(r, c), cell(r, c + 1)));
            }
            if r + 1 < rows {
                let n = format!("s{r}_{c}");
                net.push_str(&format!("{n} {} y\n{n} {} b\n", cell(r, c), cell(r + 1, c)));
            }
        }
    }
    for r in 0..rows {
        io.push_str(&format!("w{r} in\n"));
        net.push_str(&format!("win{r} root w{r}\nwin{r} {} a\n", cell(r, 0)));
    }
    io.push_str("se out\n");
    net.push_str(&format!("seo root se\nseo {} x\n", cell(rows - 1, cols - 1)));
    TextWorkload {
        name: format!("cell_array_{rows}x{cols}"),
        modules: vec![("cell".to_owned(), cell_qto("cell"))],
        net,
        cal,
        io,
    }
}

/// A seeded random hierarchy of roughly `modules` modules: a tree of
/// hub modules with random branching (2–6 children per hub), each
/// edge a two-pin net from the parent's output to the child's input,
/// plus a sprinkle of random cross links between cousins for the
/// congestion real hierarchies have. Identical `(modules, seed)`
/// produce byte-identical files.
pub fn random_hierarchy(modules: usize, seed: u64) -> TextWorkload {
    assert!(modules >= 2, "a hierarchy needs at least 2 modules");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = String::new();
    let mut cal = String::from("h0 cell\n");
    // Frontier of modules that can still take children; each module's
    // four pins (a, b in; x, y out) are tracked by simple counters.
    let mut made = 1usize;
    let mut frontier: Vec<usize> = vec![0];
    let mut out_used = vec![0u8; 1];
    let mut in_used = vec![0u8; 1];
    while made < modules && !frontier.is_empty() {
        let pick = rng.gen_range(0..frontier.len());
        let parent = frontier.swap_remove(pick);
        let kids = rng.gen_range(2..7usize).min(modules - made);
        for _ in 0..kids {
            if out_used[parent] >= 2 {
                break;
            }
            let child = made;
            made += 1;
            cal.push_str(&format!("h{child} cell\n"));
            out_used.push(0);
            in_used.push(0);
            let opin = if out_used[parent] == 0 { "x" } else { "y" };
            out_used[parent] += 1;
            in_used[child] += 1;
            net.push_str(&format!(
                "t{child} h{parent} {opin}\nt{child} h{child} a\n"
            ));
            frontier.push(child);
        }
    }
    // Cross links: one per ~8 modules, between random distinct modules
    // with pins to spare.
    for k in 0..made / 8 {
        let from = rng.gen_range(0..made);
        let to = rng.gen_range(0..made);
        if from == to || out_used[from] >= 2 || in_used[to] >= 2 {
            continue;
        }
        let opin = if out_used[from] == 0 { "x" } else { "y" };
        let ipin = if in_used[to] == 0 { "a" } else { "b" };
        out_used[from] += 1;
        in_used[to] += 1;
        net.push_str(&format!("xl{k} h{from} {opin}\nxl{k} h{to} {ipin}\n"));
    }
    TextWorkload {
        name: format!("hierarchy_{modules}_s{seed}"),
        modules: vec![("cell".to_owned(), cell_qto("cell"))],
        net,
        cal,
        io: String::new(),
    }
}

/// A `bits`-wide, `stages`-deep datapath: every stage is a column of
/// identical slices, data flows slice-to-slice along each bit row, and
/// every stage has one wide control net fanning into all of its
/// slices — the mix of short nets and wide nets real datapaths have.
/// Module count is `bits * stages + stages` (slices plus one driver
/// per control net). Byte-deterministic.
pub fn datapath_stack(bits: usize, stages: usize) -> TextWorkload {
    assert!(bits >= 1 && stages >= 1, "a datapath needs at least one slice");
    let mut net = String::new();
    let mut cal = String::new();
    for s in 0..stages {
        cal.push_str(&format!("ctl{s} cell\n"));
        for b in 0..bits {
            cal.push_str(&format!("sl{s}_{b} cell\n"));
        }
    }
    for s in 0..stages {
        // The stage's control net: ctl drives every slice's b input.
        for b in 0..bits {
            net.push_str(&format!("ctl_n{s} sl{s}_{b} b\n"));
        }
        net.push_str(&format!("ctl_n{s} ctl{s} x\n"));
        // Bit rows: slice s drives slice s+1 on the same bit.
        if s + 1 < stages {
            for b in 0..bits {
                net.push_str(&format!("d{s}_{b} sl{s}_{b} x\nd{s}_{b} sl{}_{b} a\n", s + 1));
            }
        }
    }
    TextWorkload {
        name: format!("datapath_{bits}x{stages}"),
        modules: vec![("cell".to_owned(), cell_qto("cell"))],
        net,
        cal,
        io: String::new(),
    }
}

/// Adversarial: one net with `sinks + 1` pins. A single driver fans
/// out to every other module in the design — the worst case for any
/// per-net data structure (pin lists, spanning-tree construction,
/// rip-up bookkeeping). Byte-deterministic.
pub fn pathological_fanout(sinks: usize) -> TextWorkload {
    assert!(sinks >= 1, "fan-out needs at least one sink");
    let mut net = String::from("wide u0 x\n");
    let mut cal = String::from("u0 cell\n");
    for k in 1..=sinks {
        cal.push_str(&format!("u{k} cell\n"));
        net.push_str(&format!("wide u{k} a\n"));
    }
    TextWorkload {
        name: format!("fanout_{sinks}"),
        modules: vec![("cell".to_owned(), cell_qto("cell"))],
        net,
        cal,
        io: String::new(),
    }
}

/// Adversarial: call-text amplification. A one-template library
/// expands into `instances` instances whose names are padded to ~64
/// bytes each, so a few hundred library bytes "amplify" into megabytes
/// of call and net text — the shape of a generated netlist whose
/// byte count dwarfs its structural content. Byte-deterministic.
pub fn amplified_calls(instances: usize) -> TextWorkload {
    assert!(instances >= 2, "amplification needs at least 2 instances");
    let pad = "x".repeat(48);
    let name = |k: usize| format!("amp{k}_{pad}");
    let mut net = String::new();
    let mut cal = String::new();
    for k in 0..instances {
        cal.push_str(&format!("{} cell\n", name(k)));
        if k + 1 < instances {
            net.push_str(&format!("n{k} {} x\nn{k} {} a\n", name(k), name(k + 1)));
        }
    }
    TextWorkload {
        name: format!("amplified_{instances}"),
        modules: vec![("cell".to_owned(), cell_qto("cell"))],
        net,
        cal,
        io: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_byte_identical_per_parameters() {
        assert_eq!(cell_array(10, 10), cell_array(10, 10));
        assert_eq!(random_hierarchy(200, 7), random_hierarchy(200, 7));
        assert_eq!(datapath_stack(16, 8), datapath_stack(16, 8));
        assert_eq!(pathological_fanout(100), pathological_fanout(100));
        assert_eq!(amplified_calls(50), amplified_calls(50));
        assert_eq!(
            cell_array(8, 8).with_garbage_tail(20, 3),
            cell_array(8, 8).with_garbage_tail(20, 3)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_hierarchy(200, 1).net, random_hierarchy(200, 2).net);
        assert_ne!(
            cell_array(4, 4).with_garbage_tail(10, 1).net,
            cell_array(4, 4).with_garbage_tail(10, 2).net
        );
    }

    #[test]
    fn cell_array_scales_to_requested_module_count() {
        let w = cell_array(25, 40);
        assert_eq!(w.module_count(), 1000);
        let big = cell_array(100, 100);
        assert_eq!(big.module_count(), 10_000);
        assert!(big.total_bytes() > 100_000);
    }

    #[test]
    fn hierarchy_reaches_the_requested_size() {
        let w = random_hierarchy(1000, 11);
        // The frontier can exhaust pins early, but in practice the
        // tree reaches the requested size; assert within a slack.
        assert!(w.module_count() >= 900, "{}", w.module_count());
        assert!(w.module_count() <= 1000);
    }

    #[test]
    fn fanout_is_one_wide_net() {
        let w = pathological_fanout(500);
        assert_eq!(w.module_count(), 501);
        assert_eq!(w.net.lines().count(), 501, "all pins on one net");
        assert!(w.net.lines().all(|l| l.starts_with("wide ")));
    }

    #[test]
    fn amplified_calls_blow_up_byte_count() {
        let w = amplified_calls(1000);
        assert!(w.total_bytes() > 100_000, "{}", w.total_bytes());
        let lib: usize = w.modules.iter().map(|(_, t)| t.len()).sum();
        assert!(lib < 100, "the library stays tiny: {lib}");
    }

    #[test]
    fn truncation_cuts_mid_record() {
        let base = cell_array(4, 4);
        let cut = base.clone().with_truncated_tail(base.net.len() - 3);
        assert!(!cut.net.ends_with('\n'), "the tail is cut mid-record");
        assert_eq!(cut.cal, base.cal, "only the net-list is mutated");
    }

    #[test]
    fn garbage_tail_appends_parseable_noise() {
        let base = cell_array(4, 4);
        let noisy = base.clone().with_garbage_tail(30, 5);
        assert!(noisy.net.len() > base.net.len());
        assert_eq!(noisy.net.lines().count(), base.net.lines().count() + 30);
        assert!(noisy.net.is_ascii(), "noise stays printable");
    }

    #[test]
    fn workloads_write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("netart-wl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = cell_array(3, 3);
        let paths = w.write_to(&dir).expect("writes");
        assert!(paths.lib.join("cell.qto").exists());
        assert_eq!(std::fs::read_to_string(&paths.net).expect("read"), w.net);
        assert!(paths.io.is_some(), "cell arrays declare system pins");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
