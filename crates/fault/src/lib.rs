//! Deterministic fault injection for the `netart` pipeline.
//!
//! A *fault point* is a named site in the pipeline — `route.net`,
//! `place.partition`, `emit.escher`, … (see [`sites`]) — where an
//! induced failure can be requested. Faults are *armed* before a run
//! with a spec of the form
//!
//! ```text
//! site[:nth][:kind]
//! ```
//!
//! where `nth` (default 1) picks the n-th time the site is hit and
//! `kind` (default `panic`) is one of `panic`, `error`,
//! `budget-exhaust` or `garbage-output`. Each armed fault fires exactly
//! once, which makes retry a legitimate recovery path: the second
//! attempt runs clean. Hit counting is per armed spec and strictly
//! sequential, so a run with a fixed input and a fixed spec always
//! fails at the same place — injection is deterministic, no randomness
//! involved.
//!
//! The whole registry is compiled away unless the `fault-injection`
//! cargo feature is enabled: without it [`fire`] is an inlined
//! `None` and [`arm`] refuses with an explanatory error, so release
//! binaries carry no fault-point overhead.
//!
//! # Examples
//!
//! ```
//! // Arming only works in builds with the feature on; parsing and the
//! // site catalogue are always available.
//! let spec: netart_fault::FaultSpec = "route.net:2:error".parse().unwrap();
//! assert_eq!(spec.nth, 2);
//! assert!(netart_fault::sites::ALL.contains(&"route.net"));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;
use std::str::FromStr;

/// The catalogue of named fault points threaded through the pipeline.
pub mod sites {
    /// Appendix A netlist parsing (the doctor's entry point).
    pub const PARSE_NETWORK: &str = "parse.network";
    /// Quinto module description parsing (one hit per module file).
    pub const PARSE_MODULE: &str = "parse.module";
    /// A governed allocation during ingestion: fires at the memory
    /// budget's charge point, simulating `ND015 resource-exhausted`
    /// even when the budget itself is unlimited.
    pub const PARSE_ALLOC: &str = "parse.alloc";
    /// PABLO seeded partitioning pass.
    pub const PLACE_PARTITION: &str = "place.partition";
    /// PABLO per-partition box/module layout pass.
    pub const PLACE_MODULE: &str = "place.module_place";
    /// PABLO partition packing pass.
    pub const PLACE_CLUSTER: &str = "place.cluster";
    /// PABLO centre-of-gravity cluster placement (one hit per call).
    pub const PLACE_GRAVITY: &str = "place.gravity";
    /// PABLO system terminal ring placement.
    pub const PLACE_TERMINAL: &str = "place.terminal_place";
    /// EUREKA per-net routing (one hit per net; the injected fault
    /// poisons that net's regular passes until the salvage cascade).
    pub const ROUTE_NET: &str = "route.net";
    /// Salvage cascade: the rip-up + escalated-retry stage.
    pub const ROUTE_SALVAGE_RIPUP: &str = "route.salvage.ripup";
    /// Salvage cascade: the Lee fallback stage.
    pub const ROUTE_SALVAGE_LEE: &str = "route.salvage.lee";
    /// ESCHER diagram emission in the CLI.
    pub const EMIT_ESCHER: &str = "emit.escher";
    /// Batch engine: one hit per job attempt, fired inside the worker
    /// before the pipeline runs (exercises worker isolation + retry).
    pub const ENGINE_JOB: &str = "engine.job";
    /// Batch engine: manifest aggregation/serialisation.
    pub const ENGINE_MANIFEST: &str = "engine.manifest";
    /// Serve: one hit per admitted request, fired inside the worker's
    /// `catch_unwind` before the pipeline (a panicking request must
    /// come back as a `500`, never kill the listener).
    pub const SERVE_REQUEST: &str = "serve.request";
    /// Serve: the artifact-cache lookup/insert path (a cache fault
    /// must degrade to a recompute, never break the response).
    pub const SERVE_CACHE: &str = "serve.cache";
    /// Serve: the telemetry record/render path (a telemetry fault must
    /// degrade to "metrics unavailable", never drop the request being
    /// observed).
    pub const SERVE_TELEMETRY: &str = "serve.telemetry";
    /// Serve: the shard supervisor's worker spawn/respawn path (a
    /// spawn fault must count as a shard death and feed the backoff /
    /// crash-loop machinery, never kill the supervisor).
    pub const SERVE_SPAWN: &str = "serve.spawn";
    /// Observability: the flight-recorder blackbox dump write (a
    /// failing dump must surface as a `flight_dump_failed`
    /// degradation, never disturb the request being dumped about).
    pub const OBS_FLIGHT: &str = "obs.flight";

    /// Every site, for sweeps and spec validation.
    pub const ALL: &[&str] = &[
        PARSE_NETWORK,
        PARSE_MODULE,
        PARSE_ALLOC,
        PLACE_PARTITION,
        PLACE_MODULE,
        PLACE_CLUSTER,
        PLACE_GRAVITY,
        PLACE_TERMINAL,
        ROUTE_NET,
        ROUTE_SALVAGE_RIPUP,
        ROUTE_SALVAGE_LEE,
        EMIT_ESCHER,
        ENGINE_JOB,
        ENGINE_MANIFEST,
        SERVE_REQUEST,
        SERVE_CACHE,
        SERVE_TELEMETRY,
        SERVE_SPAWN,
        OBS_FLIGHT,
    ];
}

/// What an armed fault does when its site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (exercises phase-boundary isolation).
    Panic,
    /// Make the site report failure through its natural error channel.
    /// Sites without one escalate to a panic (see [`fire_hard`]).
    Error,
    /// Make the site behave as if its budget were exhausted. Sites
    /// without a budget treat this like `Error`.
    BudgetExhaust,
    /// Make the site produce corrupt output, so downstream self-checks
    /// must catch it. Sites that produce no output treat this like
    /// `Error`.
    GarbageOutput,
}

impl FaultKind {
    /// The spec spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "error",
            FaultKind::BudgetExhaust => "budget-exhaust",
            FaultKind::GarbageOutput => "garbage-output",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "error" => Ok(FaultKind::Error),
            "budget-exhaust" => Ok(FaultKind::BudgetExhaust),
            "garbage-output" => Ok(FaultKind::GarbageOutput),
            other => Err(format!(
                "unknown fault kind `{other}` (expected panic, error, budget-exhaust or garbage-output)"
            )),
        }
    }
}

/// A parsed `site[:nth][:kind]` injection spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault point to fire at (one of [`sites::ALL`]).
    pub site: String,
    /// Fire on the n-th hit of the site (1-based).
    pub nth: u32,
    /// What to do when it fires.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.site, self.nth, self.kind)
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let site = parts.next().unwrap_or_default().trim();
        if site.is_empty() {
            return Err("empty fault spec (expected site[:nth][:kind])".into());
        }
        if !sites::ALL.contains(&site) {
            return Err(format!(
                "unknown fault site `{site}` (known sites: {})",
                sites::ALL.join(", ")
            ));
        }
        let mut nth: u32 = 1;
        let mut kind = FaultKind::Panic;
        let mut saw_nth = false;
        let mut saw_kind = false;
        for part in parts {
            if let Ok(n) = part.parse::<u32>() {
                if saw_nth || saw_kind {
                    return Err(format!("misplaced `{part}` in fault spec `{s}`"));
                }
                if n == 0 {
                    return Err("fault spec `nth` is 1-based; 0 never fires".into());
                }
                nth = n;
                saw_nth = true;
            } else {
                if saw_kind {
                    return Err(format!("duplicate fault kind in spec `{s}`"));
                }
                kind = part.parse()?;
                saw_kind = true;
            }
        }
        Ok(FaultSpec {
            site: site.to_owned(),
            nth,
            kind,
        })
    }
}

#[cfg(feature = "fault-injection")]
mod registry {
    use super::{FaultKind, FaultSpec};
    use std::sync::{Mutex, PoisonError};

    struct Armed {
        spec: FaultSpec,
        hits: u32,
        fired: bool,
    }

    static REGISTRY: Mutex<Vec<Armed>> = Mutex::new(Vec::new());

    fn with_registry<T>(f: impl FnOnce(&mut Vec<Armed>) -> T) -> T {
        let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    pub fn arm(spec: FaultSpec) {
        with_registry(|reg| {
            reg.push(Armed {
                spec,
                hits: 0,
                fired: false,
            });
        });
    }

    pub fn disarm_all() {
        with_registry(Vec::clear);
    }

    pub fn fire(site: &str) -> Option<FaultKind> {
        with_registry(|reg| {
            for armed in reg.iter_mut().filter(|a| a.spec.site == site) {
                if armed.fired {
                    continue;
                }
                armed.hits += 1;
                if armed.hits >= armed.spec.nth {
                    armed.fired = true;
                    return Some(armed.spec.kind);
                }
            }
            None
        })
    }

    pub fn fired() -> Vec<String> {
        with_registry(|reg| {
            reg.iter()
                .filter(|a| a.fired)
                .map(|a| a.spec.to_string())
                .collect()
        })
    }

    pub fn fired_count() -> usize {
        with_registry(|reg| reg.iter().filter(|a| a.fired).count())
    }
}

/// Whether this build carries the fault-injection registry.
pub const fn enabled() -> bool {
    cfg!(feature = "fault-injection")
}

/// Arms one `site[:nth][:kind]` spec.
///
/// # Errors
///
/// Rejects malformed specs and unknown sites or kinds; in builds
/// without the `fault-injection` feature, rejects every spec with an
/// explanation.
pub fn arm(spec: &str) -> Result<(), String> {
    let parsed: FaultSpec = spec.parse()?;
    #[cfg(feature = "fault-injection")]
    {
        registry::arm(parsed);
        Ok(())
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = parsed;
        Err(
            "this binary was built without the `fault-injection` feature; \
             rebuild with `--features fault-injection` to use fault injection"
                .into(),
        )
    }
}

/// Arms every comma-separated spec in the `NETART_INJECT` environment
/// variable. Absent or empty means nothing to arm.
///
/// # Errors
///
/// As [`arm`], for the first offending spec.
pub fn arm_from_env() -> Result<usize, String> {
    let Some(value) = std::env::var_os("NETART_INJECT") else {
        return Ok(0);
    };
    let value = value.to_string_lossy();
    let mut count = 0;
    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        arm(part)?;
        count += 1;
    }
    Ok(count)
}

/// Disarms every armed fault (between chaos test cases).
pub fn disarm_all() {
    #[cfg(feature = "fault-injection")]
    registry::disarm_all();
}

/// The specs (as `site:nth:kind` strings) that have fired so far.
pub fn fired() -> Vec<String> {
    #[cfg(feature = "fault-injection")]
    {
        registry::fired()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        Vec::new()
    }
}

/// How many armed faults have fired so far. Callers snapshot this
/// around an attempt to tell an injected failure (retry is sound)
/// from a genuine one (it is not).
pub fn fired_count() -> usize {
    #[cfg(feature = "fault-injection")]
    {
        registry::fired_count()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        0
    }
}

/// The fault point itself. Returns the armed kind when this hit is the
/// one to fire on, `None` otherwise (and always `None` without the
/// `fault-injection` feature — the call inlines away).
///
/// # Panics
///
/// A fired [`FaultKind::Panic`] panics here, with the site named in
/// the payload; the other kinds are returned for the site to act on.
#[inline]
pub fn fire(site: &str) -> Option<FaultKind> {
    #[cfg(feature = "fault-injection")]
    {
        match registry::fire(site) {
            Some(FaultKind::Panic) => {
                std::panic::panic_any(format!("injected panic at fault site `{site}`"))
            }
            other => other,
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        None
    }
}

/// A fault point in code with no natural error channel: every fired
/// kind escalates to a panic (naming the kind and site), so the
/// surrounding phase-boundary isolation is what gets exercised.
#[inline]
pub fn fire_hard(site: &str) {
    #[cfg(feature = "fault-injection")]
    if let Some(kind) = fire(site) {
        std::panic::panic_any(format!(
            "injected `{kind}` fault at site `{site}` (no error channel; escalated to panic)"
        ));
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_defaults_and_orders() {
        let s: FaultSpec = "route.net".parse().unwrap();
        assert_eq!((s.site.as_str(), s.nth, s.kind), ("route.net", 1, FaultKind::Panic));
        let s: FaultSpec = "route.net:3".parse().unwrap();
        assert_eq!(s.nth, 3);
        let s: FaultSpec = "route.net:error".parse().unwrap();
        assert_eq!(s.kind, FaultKind::Error);
        let s: FaultSpec = "route.net:2:garbage-output".parse().unwrap();
        assert_eq!((s.nth, s.kind), (2, FaultKind::GarbageOutput));
        assert_eq!(s.to_string(), "route.net:2:garbage-output");
    }

    #[test]
    fn spec_parsing_rejects_bad_input() {
        assert!("".parse::<FaultSpec>().is_err());
        assert!("nowhere.good".parse::<FaultSpec>().is_err());
        assert!("route.net:0".parse::<FaultSpec>().is_err());
        assert!("route.net:sideways".parse::<FaultSpec>().is_err());
        assert!("route.net:error:2".parse::<FaultSpec>().is_err());
        assert!("route.net:error:panic".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn every_site_spec_round_trips() {
        for site in sites::ALL {
            let spec: FaultSpec = format!("{site}:1:error").parse().unwrap();
            assert_eq!(spec.site, *site);
        }
    }

    #[cfg(not(feature = "fault-injection"))]
    mod disabled {
        use super::*;

        #[test]
        fn arm_refuses_and_fire_is_inert() {
            assert!(!enabled());
            let err = arm("route.net:1:error").unwrap_err();
            assert!(err.contains("fault-injection"), "{err}");
            assert_eq!(fire("route.net"), None);
            fire_hard("route.net"); // must not panic
            assert_eq!(fired_count(), 0);
            assert!(fired().is_empty());
        }
    }

    #[cfg(feature = "fault-injection")]
    mod enabled {
        use super::*;
        use std::sync::{Mutex, PoisonError};

        // The registry is process-global; serialize the tests that use it.
        static LOCK: Mutex<()> = Mutex::new(());

        fn guard() -> std::sync::MutexGuard<'static, ()> {
            LOCK.lock().unwrap_or_else(PoisonError::into_inner)
        }

        #[test]
        fn fires_once_on_the_nth_hit() {
            let _g = guard();
            disarm_all();
            arm("route.net:2:error").unwrap();
            assert_eq!(fire("route.net"), None);
            assert_eq!(fire("route.net"), Some(FaultKind::Error));
            // One-shot: further hits pass through.
            assert_eq!(fire("route.net"), None);
            assert_eq!(fired(), vec!["route.net:2:error".to_string()]);
            assert_eq!(fired_count(), 1);
            disarm_all();
        }

        #[test]
        fn sites_are_independent() {
            let _g = guard();
            disarm_all();
            arm("route.net:1:budget-exhaust").unwrap();
            arm("emit.escher:1:garbage-output").unwrap();
            assert_eq!(fire("place.partition"), None);
            assert_eq!(fire("emit.escher"), Some(FaultKind::GarbageOutput));
            assert_eq!(fire("route.net"), Some(FaultKind::BudgetExhaust));
            assert_eq!(fired_count(), 2);
            disarm_all();
        }

        #[test]
        fn panic_kind_panics_with_site_in_payload() {
            let _g = guard();
            disarm_all();
            arm("place.cluster:1:panic").unwrap();
            let payload = std::panic::catch_unwind(|| fire("place.cluster")).unwrap_err();
            let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("place.cluster"), "{msg}");
            assert_eq!(fired_count(), 1, "a panic fire still counts as fired");
            disarm_all();
        }

        #[test]
        fn fire_hard_escalates_every_kind() {
            let _g = guard();
            disarm_all();
            arm("place.gravity:1:garbage-output").unwrap();
            let payload = std::panic::catch_unwind(|| fire_hard("place.gravity")).unwrap_err();
            let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("garbage-output"), "{msg}");
            disarm_all();
        }

        #[test]
        fn env_arming_parses_lists() {
            let _g = guard();
            disarm_all();
            std::env::set_var("NETART_INJECT", "route.net:1:error, emit.escher");
            let n = arm_from_env().unwrap();
            assert_eq!(n, 2);
            std::env::set_var("NETART_INJECT", "bogus.site");
            assert!(arm_from_env().is_err());
            std::env::remove_var("NETART_INJECT");
            assert_eq!(arm_from_env().unwrap(), 0);
            disarm_all();
        }
    }
}
