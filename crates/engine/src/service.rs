//! The resident request service behind `netart serve`.
//!
//! [`run`](crate::run) is batch-shaped: the whole input list is known
//! up front and the call returns when everything finished. A server
//! needs the opposite — requests arrive one at a time, forever — so a
//! [`Service`] keeps the same machinery resident:
//!
//! * **admission control**: [`Service::submit`] *tries* to enqueue on
//!   the bounded queue and hands the request straight back when the
//!   queue is full ([`SubmitError::Busy`]) or draining
//!   ([`SubmitError::Draining`]) — overload sheds, it never queues
//!   unboundedly;
//! * **deadline propagation**: each request carries its own
//!   [`CancelToken`] and optional deadline; the watchdog thread trips
//!   the token when the deadline passes (queue wait included), so the
//!   handler's `BudgetMeter`s breach mid-expansion;
//! * **panic isolation**: the handler runs under `catch_unwind`; a
//!   panicking request resolves its [`Ticket`] as
//!   [`TicketOutcome::Panicked`] and the worker lives on;
//! * **graceful drain**: [`Service::drain`] stops admission and lets
//!   in-flight plus already-queued requests finish; once the drain
//!   grace expires the watchdog cancels whatever is still running, so
//!   drain completes within the grace bound.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::queue::{BoundedQueue, TryPushError};
use crate::{panic_message, JobContext, Watch, CancelToken, WATCHDOG_TICK};

/// Tuning knobs for a resident [`Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads. Clamped to at least 1.
    pub workers: u32,
    /// Requests admitted to the queue beyond the ones already running;
    /// the `try_submit` bound that turns overload into `429`s. Clamped
    /// to at least 1.
    pub queue_depth: usize,
    /// How long in-flight requests may keep running after
    /// [`Service::drain`] before their tokens are cancelled.
    pub drain_grace: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_depth: 4,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Why [`Service::submit`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed the load (`429 Retry-After`).
    Busy,
    /// The service is draining — stop sending (`503`).
    Draining,
}

/// How one submitted request resolved.
#[derive(Debug, Clone)]
pub enum TicketOutcome<R> {
    /// The handler returned.
    Finished(R),
    /// The handler panicked (payload message); the worker survived.
    Panicked(String),
}

struct TicketSlot<R> {
    outcome: Mutex<Option<TicketOutcome<R>>>,
    done: Condvar,
}

/// The caller's handle on a submitted request.
pub struct Ticket<R> {
    slot: Arc<TicketSlot<R>>,
}

impl<R> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<R> Ticket<R> {
    /// Blocks until the request resolves. Resolution is guaranteed:
    /// every admitted request is either executed (panics included) or
    /// — never — lost, because workers only exit once the closed
    /// queue is empty.
    pub fn wait(self) -> TicketOutcome<R> {
        let mut outcome = self
            .slot
            .outcome
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(resolved) = outcome.take() {
                return resolved;
            }
            outcome = self
                .slot
                .done
                .wait(outcome)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct Task<Req, R> {
    req: Req,
    cancel: CancelToken,
    deadline: Option<Instant>,
    enqueued: Instant,
    slot: Arc<TicketSlot<R>>,
}

struct ServiceShared<Req, R> {
    queue: BoundedQueue<Task<Req, R>>,
    watches: Vec<Mutex<Option<Watch>>>,
    draining: AtomicBool,
    stopped: AtomicBool,
    workers_alive: AtomicUsize,
    in_flight: AtomicUsize,
    served: AtomicU64,
    drain_grace: Duration,
}

/// A resident worker pool accepting one request at a time.
pub struct Service<Req: Send + 'static, R: Send + 'static> {
    shared: Arc<ServiceShared<Req, R>>,
    threads: Vec<JoinHandle<()>>,
}

impl<Req: Send + 'static, R: Send + 'static> Service<Req, R> {
    /// Boots the worker pool and watchdog. `handler` runs once per
    /// admitted request with a [`JobContext`] whose token it must
    /// thread into its budget meters (`attempt` is always 1 — a
    /// server answers now or degraded, it does not retry while the
    /// client waits).
    pub fn new<F>(config: &ServiceConfig, handler: F) -> Self
    where
        F: Fn(Req, &JobContext) -> R + Send + Sync + 'static,
    {
        let workers = config.workers.max(1) as usize;
        let shared = Arc::new(ServiceShared {
            queue: BoundedQueue::new(config.queue_depth),
            watches: (0..workers).map(|_| Mutex::new(None)).collect(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            workers_alive: AtomicUsize::new(workers),
            in_flight: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            drain_grace: config.drain_grace,
        });
        let handler = Arc::new(handler);
        let mut threads = Vec::with_capacity(workers + 1);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            threads.push(std::thread::spawn(move || {
                while let Some(task) = shared.queue.pop() {
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    *shared.watches[w]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(Watch {
                        cancel: task.cancel.clone(),
                        deadline: task.deadline,
                    });
                    let ctx = JobContext {
                        cancel: task.cancel.clone(),
                        attempt: 1,
                        last_attempt: true,
                        queue_wait: task.enqueued.elapsed(),
                    };
                    let outcome =
                        match catch_unwind(AssertUnwindSafe(|| handler(task.req, &ctx))) {
                            Ok(result) => TicketOutcome::Finished(result),
                            Err(payload) => {
                                TicketOutcome::Panicked(panic_message(payload.as_ref()))
                            }
                        };
                    *shared.watches[w]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = None;
                    *task
                        .slot
                        .outcome
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(outcome);
                    task.slot.done.notify_all();
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    shared.served.fetch_add(1, Ordering::SeqCst);
                }
                shared.workers_alive.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        // The watchdog: per-request deadlines always, drain-grace
        // expiry once draining.
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                let mut drain_deadline: Option<Instant> = None;
                while !shared.stopped.load(Ordering::Acquire) {
                    let now = Instant::now();
                    if shared.draining.load(Ordering::Acquire) && drain_deadline.is_none() {
                        drain_deadline = Some(now + shared.drain_grace);
                    }
                    let drain_expired = drain_deadline.is_some_and(|d| now >= d);
                    for watch in &shared.watches {
                        let guard = watch.lock().unwrap_or_else(PoisonError::into_inner);
                        if let Some(watch) = guard.as_ref() {
                            if drain_expired || watch.deadline.is_some_and(|d| now >= d) {
                                watch.cancel.cancel();
                            }
                        }
                    }
                    std::thread::sleep(WATCHDOG_TICK);
                }
            }));
        }
        Service { shared, threads }
    }

    /// Tries to admit one request. `deadline` bounds the request's
    /// total latency — queue wait included — by tripping its token;
    /// the returned token is the same one the handler's context
    /// carries, so the caller can observe (or force) cancellation.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the queue is full,
    /// [`SubmitError::Draining`] once [`Service::drain`] was called.
    pub fn submit(
        &self,
        req: Req,
        deadline: Option<Duration>,
    ) -> Result<(Ticket<R>, CancelToken), SubmitError> {
        if self.shared.draining.load(Ordering::Acquire) {
            return Err(SubmitError::Draining);
        }
        let cancel = CancelToken::new();
        let slot = Arc::new(TicketSlot {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        });
        let task = Task {
            req,
            cancel: cancel.clone(),
            deadline: deadline.map(|d| Instant::now() + d),
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
        };
        match self.shared.queue.try_push(task) {
            Ok(()) => Ok((Ticket { slot }, cancel)),
            Err(TryPushError::Full(_)) => Err(SubmitError::Busy),
            Err(TryPushError::Closed(_)) => Err(SubmitError::Draining),
        }
    }

    /// Stops admission and closes the queue. In-flight and
    /// already-queued requests keep running until done or until the
    /// drain grace expires and the watchdog cancels them; either way
    /// every outstanding [`Ticket`] resolves.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.close();
    }

    /// Whether a started drain has finished: admission is closed and
    /// every worker has exited (queue empty, nothing in flight).
    pub fn drained(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
            && self.shared.workers_alive.load(Ordering::SeqCst) == 0
    }

    /// Requests currently executing.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Requests admitted but not yet started.
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Requests resolved since boot (panicked ones included).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Drains (if not already draining) and joins every thread.
    pub fn shutdown(mut self) {
        self.drain();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        // Workers exit once the closed queue is empty; stop the
        // watchdog after them so drain-grace cancellation keeps
        // working to the end.
        let workers = self.threads.len().saturating_sub(1);
        for handle in self.threads.drain(..workers) {
            let _ = handle.join();
        }
        self.shared.stopped.store(true, Ordering::Release);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<Req: Send + 'static, R: Send + 'static> Drop for Service<Req, R> {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.drain();
            self.join_threads();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn echo_service(config: &ServiceConfig) -> Service<u32, u32> {
        Service::new(config, |req, _ctx| req * 2)
    }

    #[test]
    fn submit_and_wait_round_trips() {
        let service = echo_service(&ServiceConfig::default());
        let (ticket, _) = service.submit(21, None).expect("admitted");
        match ticket.wait() {
            TicketOutcome::Finished(v) => assert_eq!(v, 42),
            TicketOutcome::Panicked(m) => panic!("unexpected panic: {m}"),
        }
        service.shutdown();
    }

    #[test]
    fn saturated_queue_sheds_deterministically() {
        // One worker, one queue slot. The running request blocks on a
        // channel, the second occupies the only slot, the third MUST
        // be shed — no timing involved.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let service: Service<u32, u32> = Service::new(
            &ServiceConfig {
                workers: 1,
                queue_depth: 1,
                ..ServiceConfig::default()
            },
            move |req, _ctx| {
                started_tx.send(()).ok();
                release_rx
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .recv()
                    .ok();
                req
            },
        );
        let (running, _) = service.submit(1, None).expect("first request runs");
        started_rx.recv().expect("worker picked it up");
        let (queued, _) = service.submit(2, None).expect("second request queues");
        assert_eq!(service.queued(), 1);
        assert_eq!(service.in_flight(), 1);
        assert_eq!(
            service.submit(3, None).unwrap_err(),
            SubmitError::Busy,
            "a full queue sheds instead of queueing unboundedly"
        );
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert!(matches!(running.wait(), TicketOutcome::Finished(1)));
        assert!(matches!(queued.wait(), TicketOutcome::Finished(2)));
        service.shutdown();
    }

    #[test]
    fn a_panicking_request_resolves_and_the_worker_survives() {
        let service: Service<u32, u32> = Service::new(
            &ServiceConfig {
                workers: 1,
                queue_depth: 2,
                ..ServiceConfig::default()
            },
            |req, _ctx| {
                if req == 13 {
                    panic!("unlucky request");
                }
                req
            },
        );
        let (bomb, _) = service.submit(13, None).expect("admitted");
        match bomb.wait() {
            TicketOutcome::Panicked(m) => assert!(m.contains("unlucky"), "{m}"),
            TicketOutcome::Finished(v) => panic!("expected a panic, got {v}"),
        }
        let (calm, _) = service.submit(7, None).expect("the worker survived");
        assert!(matches!(calm.wait(), TicketOutcome::Finished(7)));
        service.shutdown();
    }

    #[test]
    fn deadline_trips_the_request_token() {
        let service: Service<(), bool> = Service::new(
            &ServiceConfig {
                workers: 1,
                queue_depth: 1,
                ..ServiceConfig::default()
            },
            |(), ctx| {
                let hung_since = Instant::now();
                while !ctx.cancel.is_cancelled() {
                    if hung_since.elapsed() > Duration::from_secs(10) {
                        return false; // watchdog never fired
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                true
            },
        );
        let (ticket, _) = service
            .submit((), Some(Duration::from_millis(30)))
            .expect("admitted");
        match ticket.wait() {
            TicketOutcome::Finished(cancelled) => {
                assert!(cancelled, "the deadline must cancel the request")
            }
            TicketOutcome::Panicked(m) => panic!("{m}"),
        }
        service.shutdown();
    }

    #[test]
    fn drain_refuses_new_work_and_resolves_queued_tickets() {
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let service: Service<u32, u32> = Service::new(
            &ServiceConfig {
                workers: 1,
                queue_depth: 2,
                drain_grace: Duration::from_secs(5),
            },
            move |req, _ctx| {
                started_tx.send(()).ok();
                release_rx
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .recv()
                    .ok();
                req
            },
        );
        let (running, _) = service.submit(1, None).expect("admitted");
        started_rx.recv().expect("in flight");
        let (queued, _) = service.submit(2, None).expect("queued");
        service.drain();
        assert_eq!(service.submit(3, None).unwrap_err(), SubmitError::Draining);
        assert!(!service.drained(), "still busy with in-flight work");
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert!(matches!(running.wait(), TicketOutcome::Finished(1)));
        assert!(
            matches!(queued.wait(), TicketOutcome::Finished(2)),
            "already-queued requests complete during drain"
        );
        service.shutdown();
    }

    #[test]
    fn drain_grace_cancels_a_hung_request() {
        let service: Service<(), bool> = Service::new(
            &ServiceConfig {
                workers: 1,
                queue_depth: 1,
                drain_grace: Duration::from_millis(30),
            },
            |(), ctx| {
                let hung_since = Instant::now();
                while !ctx.cancel.is_cancelled() {
                    if hung_since.elapsed() > Duration::from_secs(10) {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                true
            },
        );
        let (ticket, _) = service.submit((), None).expect("admitted");
        // Give the worker a beat to pick the task up, then drain: the
        // grace expiry must cancel the cooperative infinite loop.
        std::thread::sleep(Duration::from_millis(10));
        service.drain();
        match ticket.wait() {
            TicketOutcome::Finished(cancelled) => assert!(cancelled),
            TicketOutcome::Panicked(m) => panic!("{m}"),
        }
        service.shutdown();
    }
}
