//! `netart-engine` — the resilient batch execution layer.
//!
//! The per-run robustness work (budgets, salvage, the doctor, fault
//! injection) hardens *one* pipeline invocation; this crate makes a
//! *fleet* of invocations survivable. It runs a set of jobs through a
//! caller-supplied pipeline function on a std-thread worker pool, with:
//!
//! * a bounded job queue whose blocking `push` is the admission
//!   control ([`queue::BoundedQueue`]);
//! * per-job panic isolation — a panicking job is an attempt failure,
//!   never a dead worker;
//! * a wall-clock watchdog per attempt that trips a cooperative
//!   [`CancelToken`] (threaded by the caller into
//!   `route::BudgetMeter`), so a hung net cannot wedge a worker;
//! * retry with exponential backoff and deterministic jitter for
//!   *transient* failures, and a circuit breaker that quarantines
//!   inputs which fail every retry;
//! * graceful drain: when the drain token trips (SIGINT/SIGTERM in
//!   the CLI), in-flight jobs get a grace period to finish before
//!   their tokens are cancelled, and still-queued jobs are recorded
//!   as `skipped` — the manifest is always complete.
//!
//! The outcome is a deterministic [`BatchManifest`]: records sorted
//! by input path, every wall-clock quantity strippable via
//! [`BatchManifest::normalized`], so `--jobs N` and `--jobs 1` runs
//! compare byte-for-byte.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cache;
mod flight;
mod queue;
mod service;
mod supervisor;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use netart_obs::{BatchManifest, JobRecord, JobStatus, QuarantineReport};
pub use netart_route::CancelToken;
use tracing::{debug, warn};

pub use cache::{ByteCache, CacheStats};
pub use flight::SingleFlight;
pub use queue::{BoundedQueue, TryPushError};
pub use service::{Service, ServiceConfig, SubmitError, Ticket, TicketOutcome};
pub use supervisor::{ShardAction, ShardPhase, ShardTable, SupervisorConfig};

/// Engine tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (`--jobs`). Clamped to at least 1.
    pub workers: u32,
    /// Attempts per job before the circuit breaker quarantines it
    /// (1 = no retries). Clamped to at least 1.
    pub max_attempts: u32,
    /// Wall-clock allowance per attempt before the watchdog cancels
    /// it; `None` for no watchdog.
    pub job_timeout: Option<Duration>,
    /// How long in-flight attempts may keep running after drain is
    /// requested before their tokens are cancelled.
    pub drain_grace: Duration,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any retry delay.
    pub backoff_cap: Duration,
    /// Queued (not yet running) jobs admitted at once; `None` means
    /// twice the worker count.
    pub queue_depth: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            max_attempts: 3,
            job_timeout: None,
            drain_grace: Duration::from_secs(5),
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(2),
            queue_depth: None,
        }
    }
}

/// What one attempt sees of its execution context.
#[derive(Debug, Clone)]
pub struct JobContext {
    /// This attempt's cancellation token. The job function should
    /// thread it into `RouteConfig::with_cancel` (and may poll it at
    /// its own checkpoints); the watchdog trips it on timeout and on
    /// drain-grace expiry.
    pub cancel: CancelToken,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Whether this is the final attempt — the job function may
    /// accept a degraded result here that it would retry otherwise.
    pub last_attempt: bool,
    /// How long the request sat in the admission queue before a
    /// worker picked it up. Zero for engines without a queue (the
    /// batch pool starts attempts immediately).
    pub queue_wait: Duration,
}

/// A successful attempt.
#[derive(Debug, Clone, Default)]
pub struct JobSuccess {
    /// The attempt's run report, if the pipeline produced one.
    pub report: Option<netart_obs::RunReport>,
    /// Degradations the attempt recorded; `0` means a clean `ok` job.
    pub degradations: usize,
}

/// A failed attempt.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Human-readable cause (becomes the record's `error`).
    pub message: String,
    /// Whether retrying could plausibly succeed (injected faults,
    /// budget exhaustion, timeouts). Permanent failures — parse
    /// errors, I/O — fail the job on the spot.
    pub transient: bool,
}

impl JobFailure {
    /// A transient (retryable) failure.
    pub fn transient(message: impl Into<String>) -> Self {
        JobFailure {
            message: message.into(),
            transient: true,
        }
    }

    /// A permanent failure: no retry will be attempted.
    pub fn permanent(message: impl Into<String>) -> Self {
        JobFailure {
            message: message.into(),
            transient: false,
        }
    }
}

/// A callback observing freshly quarantined jobs; see
/// [`set_quarantine_hook`].
pub type QuarantineHook = Box<dyn Fn(&JobRecord) + Send + Sync>;

/// The process-wide quarantine observer. The CLI points this at the
/// flight recorder so a tripped circuit breaker leaves a blackbox dump
/// behind; it is a `Mutex<Option<..>>` rather than a `OnceLock`
/// precisely so in-process tests can install, inspect, and clear it.
static QUARANTINE_HOOK: Mutex<Option<QuarantineHook>> = Mutex::new(None);

/// Installs (with `Some`) or clears (with `None`) the process-wide
/// quarantine hook. The hook runs on the worker thread that exhausted
/// the job's retries, after the quarantined [`JobRecord`] is fully
/// built but before it lands in the manifest — keep it cheap and never
/// panic inside it.
pub fn set_quarantine_hook(hook: Option<QuarantineHook>) {
    *QUARANTINE_HOOK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = hook;
}

/// Runs the installed quarantine hook, if any, on a freshly
/// quarantined record.
fn notify_quarantine(record: &JobRecord) {
    let guard = QUARANTINE_HOOK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(hook) = guard.as_ref() {
        hook(record);
    }
}

/// One watchdog slot: the in-flight attempt of one worker.
struct Watch {
    cancel: CancelToken,
    deadline: Option<Instant>,
}

/// How often the watchdog scans in-flight attempts.
const WATCHDOG_TICK: Duration = Duration::from_millis(10);

/// FNV-1a, the deterministic jitter source: two runs of the same
/// batch back off identically, keeping retries reproducible.
fn fnv1a(input: &str, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in input.bytes().chain(attempt.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The backoff schedule itself, parameterised by its knobs so other
/// supervising layers (the serve shard supervisor's respawn loop)
/// share the exact engine behaviour: exponential in the 1-based
/// `attempt` with a +0‥25% jitter derived deterministically from
/// `seed`, capped at `cap` (before jitter).
pub fn backoff_schedule(base: Duration, cap: Duration, seed: &str, attempt: u32) -> Duration {
    let grown = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let grown = grown.min(cap);
    let jitter_span = grown.as_nanos() as u64 / 4;
    if jitter_span == 0 {
        return grown;
    }
    grown + Duration::from_nanos(fnv1a(seed, attempt) % jitter_span)
}

/// The delay before retry number `attempt + 1`: exponential in the
/// attempt with a ±25% deterministic jitter, capped.
fn backoff_delay(config: &EngineConfig, input: &str, attempt: u32) -> Duration {
    backoff_schedule(config.backoff_base, config.backoff_cap, input, attempt)
}

/// Sleeps for `total`, waking early when `drain` trips.
fn interruptible_sleep(total: Duration, drain: &CancelToken) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if drain.is_cancelled() {
            return;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(left.min(WATCHDOG_TICK));
    }
}

/// Extracts a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// Runs every `input` through `job` and aggregates the outcomes.
///
/// `job` is called as `job(input, &ctx)` and must honour
/// `ctx.cancel`; it may be called multiple times for the same input
/// (retries). A panicking call counts as a transient attempt failure.
/// `drain` is the external stop signal (the CLI trips it from its
/// SIGINT/SIGTERM handler); `tool` names the manifest producer.
///
/// Always returns a complete manifest: one record per input, sorted
/// by input path, whatever happened.
pub fn run<F>(
    tool: &str,
    inputs: &[String],
    config: &EngineConfig,
    drain: &CancelToken,
    job: F,
) -> BatchManifest
where
    F: Fn(&str, &JobContext) -> Result<JobSuccess, JobFailure> + Send + Sync,
{
    let started = Instant::now();
    let workers = (config.workers.max(1) as usize).min(inputs.len().max(1));
    let depth = config.queue_depth.unwrap_or(workers * 2);
    let queue: BoundedQueue<usize> = BoundedQueue::new(depth);
    let records: Mutex<Vec<JobRecord>> = Mutex::new(Vec::with_capacity(inputs.len()));
    let slots: Vec<Mutex<Option<Watch>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Watchdog: cancels attempts past their deadline, and every
        // in-flight attempt once the drain grace has expired.
        s.spawn(|| {
            let mut drain_deadline: Option<Instant> = None;
            while !done.load(Ordering::Acquire) {
                let now = Instant::now();
                if drain.is_cancelled() && drain_deadline.is_none() {
                    drain_deadline = Some(now + config.drain_grace);
                }
                let drain_expired = drain_deadline.is_some_and(|d| now >= d);
                for slot in &slots {
                    let guard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Some(watch) = guard.as_ref() {
                        if drain_expired || watch.deadline.is_some_and(|d| now >= d) {
                            watch.cancel.cancel();
                        }
                    }
                }
                std::thread::sleep(WATCHDOG_TICK);
            }
        });

        let worker_handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let records = &records;
                let slot = &slots[w];
                let job = &job;
                s.spawn(move || {
                    while let Some(idx) = queue.pop() {
                        let input = inputs[idx].as_str();
                        let record = if drain.is_cancelled() {
                            skipped_record(input)
                        } else {
                            run_job(input, config, drain, slot, job)
                        };
                        records
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(record);
                    }
                })
            })
            .collect();

        // The dispatcher runs inline: a full queue blocks it here —
        // admission control for arbitrarily long manifests.
        for idx in 0..inputs.len() {
            if queue.push(idx).is_err() {
                break;
            }
        }
        queue.close();
        for handle in worker_handles {
            let _ = handle.join();
        }
        done.store(true, Ordering::Release);
    });

    // Insurance against a lost worker (a panic outside the job's
    // catch_unwind): any index still queued becomes a skipped record,
    // so the manifest stays complete.
    let mut records = records.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    while let Some(idx) = queue.try_pop() {
        records.push(skipped_record(inputs[idx].as_str()));
    }

    // Aggregation fault point: the manifest build must survive an
    // injected panic just like a job must.
    if catch_unwind(|| netart_fault::fire_hard(netart_fault::sites::ENGINE_MANIFEST)).is_err() {
        warn!("injected fault at manifest aggregation survived");
    }

    let mut manifest = BatchManifest::new(tool, workers as u32, drain.is_cancelled(), records);
    manifest.summary.duration_ns = started.elapsed().as_nanos() as u64;
    manifest
}

fn skipped_record(input: &str) -> JobRecord {
    JobRecord {
        input: input.to_owned(),
        status: JobStatus::Skipped,
        attempts: 0,
        duration_ns: 0,
        degradations: 0,
        error: None,
        quarantine: None,
        report: None,
    }
}

/// Runs one job to a terminal status: attempts with watchdog
/// registration, panic isolation, retry classification, backoff, and
/// the quarantine circuit breaker.
fn run_job<F>(
    input: &str,
    config: &EngineConfig,
    drain: &CancelToken,
    slot: &Mutex<Option<Watch>>,
    job: &F,
) -> JobRecord
where
    F: Fn(&str, &JobContext) -> Result<JobSuccess, JobFailure> + Send + Sync,
{
    let started = Instant::now();
    let max_attempts = config.max_attempts.max(1);
    let mut last_error = String::new();
    let mut attempts = 0;

    for attempt in 1..=max_attempts {
        attempts = attempt;
        let cancel = CancelToken::new();
        let ctx = JobContext {
            cancel: cancel.clone(),
            attempt,
            last_attempt: attempt == max_attempts,
            queue_wait: Duration::ZERO,
        };
        // If drain was requested with no grace left, don't start.
        if drain.is_cancelled() && config.drain_grace.is_zero() {
            return finish(
                input,
                JobStatus::Failed,
                attempt - 1,
                started,
                0,
                Some("cancelled before attempt (drain)".to_owned()),
                None,
            );
        }
        *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Watch {
            cancel: cancel.clone(),
            deadline: config.job_timeout.map(|t| Instant::now() + t),
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Worker-isolation fault point: fires per attempt, before
            // the pipeline.
            if let Some(kind) = netart_fault::fire(netart_fault::sites::ENGINE_JOB) {
                return Err(JobFailure::transient(format!(
                    "injected `{kind}` fault at engine.job"
                )));
            }
            job(input, &ctx)
        }));
        *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;

        let failure = match outcome {
            Ok(Ok(success)) => {
                let status = if success.degradations == 0 {
                    JobStatus::Ok
                } else {
                    JobStatus::Degraded
                };
                return finish(
                    input,
                    status,
                    attempt,
                    started,
                    success.degradations,
                    None,
                    success.report,
                );
            }
            Ok(Err(failure)) => failure,
            Err(payload) => JobFailure::transient(panic_message(payload.as_ref())),
        };
        last_error = failure.message.clone();
        debug!(
            "job attempt failed",
            input = input,
            attempt = attempt as u64,
            transient = failure.transient,
            error = failure.message.as_str(),
        );

        // Drain-cancelled attempts are not retried: the batch is
        // shutting down, so the job resolves as failed (cancelled).
        if drain.is_cancelled() {
            return finish(
                input,
                JobStatus::Failed,
                attempt,
                started,
                0,
                Some(format!("cancelled during drain: {last_error}")),
                None,
            );
        }
        if !failure.transient {
            return finish(input, JobStatus::Failed, attempt, started, 0, Some(last_error), None);
        }
        if attempt < max_attempts {
            interruptible_sleep(backoff_delay(config, input, attempt), drain);
            if drain.is_cancelled() {
                return finish(
                    input,
                    JobStatus::Failed,
                    attempt,
                    started,
                    0,
                    Some(format!("cancelled before retry (drain): {last_error}")),
                    None,
                );
            }
        }
    }

    // Circuit breaker: every retry burned on transient symptoms.
    warn!(
        "job quarantined",
        input = input,
        attempts = attempts as u64,
        error = last_error.as_str(),
    );
    let mut record = finish(
        input,
        JobStatus::Quarantined,
        attempts,
        started,
        0,
        Some(last_error.clone()),
        None,
    );
    record.quarantine = Some(QuarantineReport {
        after_attempts: attempts,
        symptom: last_error,
    });
    notify_quarantine(&record);
    record
}

#[allow(clippy::too_many_arguments)]
fn finish(
    input: &str,
    status: JobStatus,
    attempts: u32,
    started: Instant,
    degradations: usize,
    error: Option<String>,
    report: Option<netart_obs::RunReport>,
) -> JobRecord {
    JobRecord {
        input: input.to_owned(),
        status,
        attempts,
        duration_ns: started.elapsed().as_nanos() as u64,
        degradations,
        error,
        quarantine: None,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn fast_config(workers: u32) -> EngineConfig {
        EngineConfig {
            workers,
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..EngineConfig::default()
        }
    }

    fn inputs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn clean_jobs_all_ok() {
        let manifest = run(
            "test",
            &inputs(&["c", "a", "b"]),
            &fast_config(2),
            &CancelToken::new(),
            |_, _| Ok(JobSuccess::default()),
        );
        assert_eq!(manifest.summary.ok, 3);
        assert_eq!(manifest.exit_code(), 0);
        let order: Vec<&str> = manifest.jobs.iter().map(|j| j.input.as_str()).collect();
        assert_eq!(order, ["a", "b", "c"], "records sort by input path");
        assert!(manifest.jobs.iter().all(|j| j.attempts == 1));
        assert!(!manifest.drained);
    }

    #[test]
    fn degraded_jobs_counted_and_exit_two() {
        let manifest = run(
            "test",
            &inputs(&["a"]),
            &fast_config(1),
            &CancelToken::new(),
            |_, _| {
                Ok(JobSuccess {
                    report: None,
                    degradations: 2,
                })
            },
        );
        assert_eq!(manifest.summary.degraded, 1);
        assert_eq!(manifest.jobs[0].status, JobStatus::Degraded);
        assert_eq!(manifest.jobs[0].degradations, 2);
        assert_eq!(manifest.exit_code(), 2);
    }

    #[test]
    fn transient_failure_retries_then_succeeds() {
        let calls = AtomicU32::new(0);
        let manifest = run(
            "test",
            &inputs(&["flaky"]),
            &fast_config(1),
            &CancelToken::new(),
            |_, ctx| {
                calls.fetch_add(1, Ordering::Relaxed);
                if ctx.attempt < 2 {
                    Err(JobFailure::transient("transient hiccup"))
                } else {
                    Ok(JobSuccess::default())
                }
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(manifest.jobs[0].status, JobStatus::Ok);
        assert_eq!(manifest.jobs[0].attempts, 2);
    }

    #[test]
    fn exhausted_transient_retries_quarantine() {
        let manifest = run(
            "test",
            &inputs(&["poison", "fine"]),
            &fast_config(2),
            &CancelToken::new(),
            |input, _| {
                if input == "poison" {
                    Err(JobFailure::transient("always broken"))
                } else {
                    Ok(JobSuccess::default())
                }
            },
        );
        let poison = manifest.jobs.iter().find(|j| j.input == "poison").unwrap();
        assert_eq!(poison.status, JobStatus::Quarantined);
        assert_eq!(poison.attempts, 3);
        assert_eq!(poison.error.as_deref(), Some("always broken"));
        let quarantine = poison.quarantine.as_ref().expect("breaker context recorded");
        assert_eq!(quarantine.after_attempts, 3);
        assert_eq!(quarantine.symptom, "always broken");
        let fine = manifest.jobs.iter().find(|j| j.input == "fine").unwrap();
        assert_eq!(fine.status, JobStatus::Ok, "poison does not starve the batch");
        assert_eq!(manifest.exit_code(), 2);
    }

    #[test]
    fn quarantine_hook_fires_once_per_quarantined_job() {
        use std::sync::Arc;
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        set_quarantine_hook(Some(Box::new(move |record| {
            sink.lock().unwrap().push(record.input.clone());
        })));
        // Unique input names: other tests' quarantines may fire the
        // global hook while it is installed.
        let manifest = run(
            "test",
            &inputs(&["hook_poison", "hook_fine"]),
            &fast_config(2),
            &CancelToken::new(),
            |input, _| {
                if input == "hook_poison" {
                    Err(JobFailure::transient("always broken"))
                } else {
                    Ok(JobSuccess::default())
                }
            },
        );
        set_quarantine_hook(None);
        let calls = seen.lock().unwrap();
        assert_eq!(
            calls.iter().filter(|i| *i == "hook_poison").count(),
            1,
            "hook sees the quarantined input exactly once: {calls:?}"
        );
        assert!(!calls.iter().any(|i| i == "hook_fine"), "clean jobs never hook");
        let poison = manifest.jobs.iter().find(|j| j.input == "hook_poison").unwrap();
        assert!(poison.quarantine.is_some(), "record was complete when the hook ran");
    }

    #[test]
    fn permanent_failure_fails_without_retry() {
        let calls = AtomicU32::new(0);
        let manifest = run(
            "test",
            &inputs(&["broken"]),
            &fast_config(1),
            &CancelToken::new(),
            |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(JobFailure::permanent("parse error"))
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1, "permanent failures do not retry");
        assert_eq!(manifest.jobs[0].status, JobStatus::Failed);
        assert_eq!(manifest.jobs[0].attempts, 1);
    }

    #[test]
    fn panicking_job_is_contained_and_quarantined() {
        let manifest = run(
            "test",
            &inputs(&["bomb", "calm"]),
            &fast_config(2),
            &CancelToken::new(),
            |input, _| {
                if input == "bomb" {
                    panic!("boom at {input}");
                }
                Ok(JobSuccess::default())
            },
        );
        let bomb = manifest.jobs.iter().find(|j| j.input == "bomb").unwrap();
        assert_eq!(bomb.status, JobStatus::Quarantined, "panics count as transient");
        assert_eq!(bomb.attempts, 3);
        assert!(bomb.error.as_deref().unwrap().contains("boom"));
        let calm = manifest.jobs.iter().find(|j| j.input == "calm").unwrap();
        assert_eq!(calm.status, JobStatus::Ok, "the pool survives the panic");
    }

    #[test]
    fn pre_drained_batch_skips_everything() {
        let drain = CancelToken::new();
        drain.cancel();
        let manifest = run(
            "test",
            &inputs(&["a", "b"]),
            &fast_config(2),
            &drain,
            |_, _| Ok(JobSuccess::default()),
        );
        assert_eq!(manifest.summary.skipped, 2);
        assert!(manifest.drained);
        assert!(manifest.jobs.iter().all(|j| j.attempts == 0));
    }

    #[test]
    fn watchdog_cancels_a_hung_attempt() {
        let config = EngineConfig {
            workers: 1,
            max_attempts: 1,
            job_timeout: Some(Duration::from_millis(30)),
            ..fast_config(1)
        };
        let manifest = run(
            "test",
            &inputs(&["hang"]),
            &config,
            &CancelToken::new(),
            |_, ctx| {
                // A cooperative busy loop, like a router polling its
                // meter: it only ends when the watchdog trips us.
                let hung_since = Instant::now();
                while !ctx.cancel.is_cancelled() {
                    assert!(
                        hung_since.elapsed() < Duration::from_secs(10),
                        "watchdog never fired"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(JobFailure::transient("cancelled by watchdog"))
            },
        );
        assert_eq!(manifest.jobs[0].status, JobStatus::Quarantined);
    }

    #[test]
    fn drain_cancels_in_flight_after_grace_and_skips_queued() {
        let drain = CancelToken::new();
        let config = EngineConfig {
            workers: 1,
            max_attempts: 3,
            drain_grace: Duration::from_millis(20),
            ..fast_config(1)
        };
        let drain_for_job = drain.clone();
        let manifest = run(
            "test",
            &inputs(&["running", "queued-1", "queued-2"]),
            &config,
            &drain,
            move |input, ctx| {
                if input == "running" {
                    // First job trips the drain itself, then hangs
                    // until the grace expires and cancels it.
                    drain_for_job.cancel();
                    while !ctx.cancel.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return Err(JobFailure::transient("cancelled mid-flight"));
                }
                Ok(JobSuccess::default())
            },
        );
        assert!(manifest.drained);
        let running = manifest.jobs.iter().find(|j| j.input == "running").unwrap();
        assert_eq!(running.status, JobStatus::Failed, "in-flight resolves as cancelled");
        assert!(running.error.as_deref().unwrap().contains("cancelled"));
        assert_eq!(running.attempts, 1, "no retries during drain");
        for queued in manifest.jobs.iter().filter(|j| j.input.starts_with("queued")) {
            assert_eq!(queued.status, JobStatus::Skipped);
        }
    }

    #[test]
    fn parallel_and_serial_manifests_normalise_identically() {
        let job = |input: &str, _ctx: &JobContext| {
            if input.ends_with("bad") {
                Err(JobFailure::permanent("expected failure"))
            } else {
                Ok(JobSuccess::default())
            }
        };
        let inputs = inputs(&["w", "x-bad", "y", "z"]);
        let serial = run("test", &inputs, &fast_config(1), &CancelToken::new(), job);
        let parallel = run("test", &inputs, &fast_config(4), &CancelToken::new(), job);
        // Worker count is a run parameter, not an outcome; align it
        // like the CLI determinism test does.
        let mut parallel = parallel.normalized();
        parallel.jobs_in_flight = serial.jobs_in_flight;
        assert_eq!(serial.normalized().to_json_string(), parallel.to_json_string());
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let config = EngineConfig::default();
        assert_eq!(
            backoff_delay(&config, "same", 2),
            backoff_delay(&config, "same", 2)
        );
        assert_ne!(
            backoff_delay(&config, "same", 1),
            backoff_delay(&config, "other", 1),
            "jitter varies by input"
        );
        let big = backoff_delay(&config, "x", 30);
        assert!(big <= config.backoff_cap + config.backoff_cap / 4);
    }
}
