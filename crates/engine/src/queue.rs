//! A bounded MPMC job queue with blocking admission control.
//!
//! `push` blocks while the queue is at capacity — that *is* the
//! admission control: the dispatcher cannot race ahead of the workers
//! by more than the configured depth, so a huge manifest never
//! materialises in memory as a huge in-flight backlog. `pop` blocks
//! until an item arrives or the queue is closed and empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a [`BoundedQueue::try_push`] did not enqueue; the item comes
/// back in either case.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity — shed the load.
    Full(T),
    /// The queue is closed (draining) — stop admitting.
    Closed(T),
}

/// A fixed-capacity multi-producer/multi-consumer queue.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` queued items
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues the next item, blocking until one arrives. `None`
    /// means the queue is closed and drained — the consumer's signal
    /// to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues `item` without blocking — the load-shedding admission
    /// path of `netart serve`. A full or closed queue hands the item
    /// back immediately instead of queueing unboundedly; the caller
    /// turns that into a `429`/`503`.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Items currently queued (racy the instant the lock drops — an
    /// observability gauge, not a synchronisation primitive).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty right now (same caveat as [`len`](BoundedQueue::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dequeues without blocking; `None` when empty (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.lock();
        let item = state.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: pending `push`es fail, `pop` drains what is
    /// left and then returns `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(7), "items queued before close drain");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_blocks_the_producer_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        // The producer is stuck on admission control until we consume.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn try_push_sheds_instead_of_blocking() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push(1).is_ok());
        assert!(matches!(q.try_push(2), Err(TryPushError::Full(2))));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(1));
        assert!(q.is_empty());
        assert!(q.try_push(3).is_ok(), "capacity freed by the pop");
        q.close();
        assert!(matches!(q.try_push(4), Err(TryPushError::Closed(4))));
    }

    #[test]
    fn consumers_unblock_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
