//! Process-supervision policy for a fleet of shard workers.
//!
//! `netart serve --shards N` keeps N single-shard worker processes
//! alive behind one listening socket. The *mechanics* of that (fork,
//! `waitpid`, signal fan-out) are the CLI's business; the *policy* —
//! when to respawn, how long to back off, when a shard is crash
//! looping and must be quarantined instead of respun — lives here so
//! it can be unit tested without ever spawning a process.
//!
//! [`ShardTable`] is a pure state machine driven by three events:
//! `record_spawn_attempt` (the supervisor is about to exec a worker),
//! `record_ready` (the worker reported itself serving) and
//! `record_death` (the worker process exited, for any reason).
//! Deaths feed a sliding [`SupervisorConfig::crash_window`]; each
//! death's respawn delay is the engine's deterministic
//! [`backoff_schedule`](crate::backoff_schedule) with the death count
//! currently in the window as the attempt number, so a shard that
//! keeps dying backs off exponentially and a shard whose crashes aged
//! out of the window starts over from the base delay. Reaching
//! [`SupervisorConfig::crash_limit`] deaths inside the window trips
//! the breaker: the shard is [`ShardPhase::Quarantined`], never
//! respawned, and the fleet's quorum accounting degrades readiness
//! instead of burning CPU on a spawn loop.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::backoff_schedule;

/// Tuning knobs for the shard supervision policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Respawn delay after the first death in the window; doubles per
    /// further death.
    pub backoff_base: Duration,
    /// Ceiling on the exponential growth (deterministic jitter may
    /// add up to 25% on top).
    pub backoff_cap: Duration,
    /// Deaths within [`SupervisorConfig::crash_window`] that trip the
    /// crash-loop breaker. Clamped to at least 1.
    pub crash_limit: u32,
    /// The sliding window deaths are counted in; older deaths age out
    /// and no longer count against the breaker.
    pub crash_window: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            crash_limit: 5,
            crash_window: Duration::from_secs(30),
        }
    }
}

/// Where one shard is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// No serving process: spawning, backing off before a respawn, or
    /// spawned but not yet ready.
    Down,
    /// The worker reported ready and has not exited since.
    Live,
    /// The crash-loop breaker tripped; the shard is never respawned.
    Quarantined,
}

impl ShardPhase {
    /// The phase as its wire string (`down`/`live`/`quarantined`),
    /// used by the supervisor→worker fleet broadcasts.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardPhase::Down => "down",
            ShardPhase::Live => "live",
            ShardPhase::Quarantined => "quarantined",
        }
    }

    /// Parses a wire string back into a phase.
    pub fn parse(s: &str) -> Option<ShardPhase> {
        match s {
            "down" => Some(ShardPhase::Down),
            "live" => Some(ShardPhase::Live),
            "quarantined" => Some(ShardPhase::Quarantined),
            _ => None,
        }
    }
}

/// The policy's verdict on one shard death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAction {
    /// Respawn the worker after `delay` (deterministic exponential
    /// backoff over the deaths currently in the window).
    Respawn {
        /// How long to wait before the respawn attempt.
        delay: Duration,
    },
    /// The crash-loop breaker tripped: stop respawning this shard and
    /// let readiness degrade.
    Quarantine,
}

/// One shard's book-keeping.
#[derive(Debug)]
struct Shard {
    phase: ShardPhase,
    /// Death instants still inside the crash window, oldest first.
    deaths: VecDeque<Instant>,
    /// Spawn attempts so far (successful or not).
    spawns: u64,
}

/// The supervisor's process table: per-shard lifecycle phase, death
/// history and the fleet-level accounting (`restarts_total`, quorum).
#[derive(Debug)]
pub struct ShardTable {
    config: SupervisorConfig,
    shards: Vec<Shard>,
    restarts: u64,
}

impl ShardTable {
    /// A table for `count` shards, all initially [`ShardPhase::Down`].
    pub fn new(count: usize, config: SupervisorConfig) -> ShardTable {
        ShardTable {
            config,
            shards: (0..count)
                .map(|_| Shard {
                    phase: ShardPhase::Down,
                    deaths: VecDeque::new(),
                    spawns: 0,
                })
                .collect(),
            restarts: 0,
        }
    }

    /// Number of shards supervised.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the table supervises no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The policy knobs this table runs under.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Records a spawn attempt for `shard` (about to exec, successful
    /// or not). Every attempt beyond a shard's first counts as a
    /// restart in [`ShardTable::restarts_total`].
    pub fn record_spawn_attempt(&mut self, shard: usize) {
        let s = &mut self.shards[shard];
        if s.spawns > 0 {
            self.restarts += 1;
        }
        s.spawns += 1;
    }

    /// Records that `shard`'s worker reported itself serving.
    pub fn record_ready(&mut self, shard: usize) {
        if self.shards[shard].phase != ShardPhase::Quarantined {
            self.shards[shard].phase = ShardPhase::Live;
        }
    }

    /// Records that `shard`'s worker died (process exit or spawn
    /// failure) at `now`, and returns what to do about it: respawn
    /// after a deterministic backoff, or quarantine if this death is
    /// the [`SupervisorConfig::crash_limit`]-th inside the window.
    pub fn record_death(&mut self, shard: usize, now: Instant) -> ShardAction {
        let window = self.config.crash_window;
        let s = &mut self.shards[shard];
        while let Some(&oldest) = s.deaths.front() {
            if now.duration_since(oldest) >= window {
                s.deaths.pop_front();
            } else {
                break;
            }
        }
        s.deaths.push_back(now);
        let deaths_in_window = u32::try_from(s.deaths.len()).unwrap_or(u32::MAX);
        if deaths_in_window >= self.config.crash_limit.max(1) {
            s.phase = ShardPhase::Quarantined;
            return ShardAction::Quarantine;
        }
        s.phase = ShardPhase::Down;
        ShardAction::Respawn {
            delay: backoff_schedule(
                self.config.backoff_base,
                self.config.backoff_cap,
                &format!("shard-{shard}"),
                deaths_in_window,
            ),
        }
    }

    /// The current phase of `shard`.
    pub fn phase(&self, shard: usize) -> ShardPhase {
        self.shards[shard].phase
    }

    /// Every shard's phase, in shard order (the fleet-broadcast
    /// payload).
    pub fn phases(&self) -> Vec<ShardPhase> {
        self.shards.iter().map(|s| s.phase).collect()
    }

    /// Shards currently [`ShardPhase::Live`].
    pub fn live(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.phase == ShardPhase::Live)
            .count()
    }

    /// Shards the breaker has quarantined.
    pub fn quarantined(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.phase == ShardPhase::Quarantined)
            .count()
    }

    /// Total respawns across the fleet (spawn attempts beyond each
    /// shard's first) — the `netart_serve_shard_restarts_total` value.
    pub fn restarts_total(&self) -> u64 {
        self.restarts
    }

    /// Whether at least `quorum` shards are live.
    pub fn quorum_ok(&self, quorum: usize) -> bool {
        self.live() >= quorum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(limit: u32, window_ms: u64) -> SupervisorConfig {
        SupervisorConfig {
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(400),
            crash_limit: limit,
            crash_window: Duration::from_millis(window_ms),
        }
    }

    #[test]
    fn ready_and_death_drive_phases_and_quorum() {
        let mut table = ShardTable::new(2, config(5, 30_000));
        assert_eq!(table.live(), 0);
        assert!(!table.quorum_ok(1));
        table.record_spawn_attempt(0);
        table.record_spawn_attempt(1);
        table.record_ready(0);
        table.record_ready(1);
        assert_eq!(table.live(), 2);
        assert!(table.quorum_ok(2));
        assert_eq!(table.restarts_total(), 0, "first spawns are not restarts");

        let t0 = Instant::now();
        match table.record_death(1, t0) {
            ShardAction::Respawn { delay } => {
                assert!(delay >= Duration::from_millis(50), "at least the base");
            }
            ShardAction::Quarantine => panic!("first death must respawn"),
        }
        assert_eq!(table.phase(1), ShardPhase::Down);
        assert!(!table.quorum_ok(2), "a dead shard breaks full quorum");
        assert!(table.quorum_ok(1));
        table.record_spawn_attempt(1);
        assert_eq!(table.restarts_total(), 1, "the respawn counts");
        table.record_ready(1);
        assert!(table.quorum_ok(2));
    }

    #[test]
    fn breaker_trips_at_the_limit_and_is_sticky() {
        let mut table = ShardTable::new(2, config(3, 60_000));
        let t0 = Instant::now();
        table.record_spawn_attempt(0);
        table.record_ready(0);
        assert!(matches!(
            table.record_death(0, t0),
            ShardAction::Respawn { .. }
        ));
        assert!(matches!(
            table.record_death(0, t0 + Duration::from_millis(100)),
            ShardAction::Respawn { .. }
        ));
        assert_eq!(
            table.record_death(0, t0 + Duration::from_millis(200)),
            ShardAction::Quarantine,
            "third death inside the window trips the breaker"
        );
        assert_eq!(table.phase(0), ShardPhase::Quarantined);
        assert_eq!(table.quarantined(), 1);
        // Quarantine is sticky: a stale ready report cannot revive it.
        table.record_ready(0);
        assert_eq!(table.phase(0), ShardPhase::Quarantined);
        assert!(!table.quorum_ok(2));
    }

    #[test]
    fn deaths_aging_out_of_the_window_reset_the_breaker() {
        let mut table = ShardTable::new(1, config(3, 5_000));
        let t0 = Instant::now();
        // Two deaths early in the window…
        let first = table.record_death(0, t0);
        table.record_death(0, t0 + Duration::from_secs(1));
        // …then quiet long enough for both to age out: the third death
        // is attempt 1 again — no quarantine, and the backoff restarts
        // from the base schedule.
        let late = table.record_death(0, t0 + Duration::from_secs(10));
        assert_eq!(late, first, "aged-out deaths reset the attempt number");
        assert!(matches!(late, ShardAction::Respawn { .. }));
        assert_eq!(table.phase(0), ShardPhase::Down, "not quarantined");
    }

    #[test]
    fn consecutive_deaths_back_off_exponentially_until_capped() {
        let cfg = config(u32::MAX, 60_000);
        let mut table = ShardTable::new(1, cfg.clone());
        let t0 = Instant::now();
        let mut prev_floor = Duration::ZERO;
        for attempt in 1..=6u32 {
            let action = table.record_death(0, t0 + Duration::from_millis(u64::from(attempt)));
            let ShardAction::Respawn { delay } = action else {
                panic!("no quarantine with an unbounded limit");
            };
            let floor = cfg
                .backoff_base
                .saturating_mul(1u32 << (attempt - 1))
                .min(cfg.backoff_cap);
            assert!(delay >= floor, "attempt {attempt}: {delay:?} < {floor:?}");
            assert!(
                delay <= cfg.backoff_cap + cfg.backoff_cap / 4,
                "attempt {attempt}: {delay:?} over the jittered cap"
            );
            assert!(floor >= prev_floor, "the floor grows monotonically");
            prev_floor = floor;
        }
    }

    /// Property sweep over seeds × attempts: the restart-backoff
    /// schedule is a pure function of (seed, attempt) — recomputing it
    /// yields identical delays — and never exceeds the jittered cap.
    #[test]
    fn restart_backoff_schedule_is_deterministic_per_seed_and_capped() {
        let base = Duration::from_millis(25);
        let cap = Duration::from_secs(2);
        let mut distinct_jitter = false;
        for shard in 0..64usize {
            let seed = format!("shard-{shard}");
            for attempt in 1..=40u32 {
                let a = crate::backoff_schedule(base, cap, &seed, attempt);
                let b = crate::backoff_schedule(base, cap, &seed, attempt);
                assert_eq!(a, b, "seed {seed} attempt {attempt}: not deterministic");
                assert!(
                    a <= cap + cap / 4,
                    "seed {seed} attempt {attempt}: {a:?} exceeds the jittered cap"
                );
                let other = crate::backoff_schedule(base, cap, &format!("shard-{}", shard + 1), attempt);
                if other != a {
                    distinct_jitter = true;
                }
            }
        }
        assert!(distinct_jitter, "jitter must vary across seeds");
    }

    #[test]
    fn phase_wire_strings_roundtrip() {
        for phase in [ShardPhase::Down, ShardPhase::Live, ShardPhase::Quarantined] {
            assert_eq!(ShardPhase::parse(phase.as_str()), Some(phase));
        }
        assert_eq!(ShardPhase::parse("zombie"), None);
    }
}
