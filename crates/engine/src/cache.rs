//! A byte-budgeted LRU cache for content-addressed artifacts.
//!
//! The server keys completed artifacts by a content hash of the
//! normalized input plus options; this cache bounds how many of those
//! artifacts stay resident. The budget is in *bytes* (the caller
//! reports each entry's size), not entry count, so a few huge
//! diagrams cannot OOM the process any more than many small ones can:
//! inserting past the budget evicts least-recently-used entries until
//! the total fits, and an entry larger than the whole budget is
//! refused outright.
//!
//! All operations take one mutex; eviction is a deterministic
//! oldest-stamp scan.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Mutex, PoisonError};

struct Entry<V> {
    value: V,
    bytes: usize,
    stamp: u64,
}

struct CacheState<K, V> {
    entries: HashMap<K, Entry<V>>,
    bytes: usize,
    clock: u64,
    stats: CacheStats,
}

/// Counters a cache accumulates over its lifetime, plus the current
/// occupancy gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// `get` calls that found their key.
    pub hits: u64,
    /// `get` calls that did not.
    pub misses: u64,
    /// Entries accepted by `put`.
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// `put`s refused because one entry exceeded the whole budget.
    pub rejected_oversize: u64,
    /// Bytes resident right now.
    pub bytes: usize,
    /// Entries resident right now.
    pub entries: usize,
}

/// A fixed-byte-budget LRU map. `V` must be cheap to clone — wrap
/// large artifacts in an `Arc`.
pub struct ByteCache<K: Eq + Hash + Clone, V: Clone> {
    budget: usize,
    state: Mutex<CacheState<K, V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ByteCache<K, V> {
    /// An empty cache holding at most `budget_bytes` of entries.
    pub fn new(budget_bytes: usize) -> Self {
        ByteCache {
            budget: budget_bytes,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                bytes: 0,
                clock: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState<K, V>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut state = self.lock();
        state.clock += 1;
        let clock = state.clock;
        match state.entries.get_mut(key) {
            Some(entry) => {
                entry.stamp = clock;
                let value = entry.value.clone();
                state.stats.hits += 1;
                Some(value)
            }
            None => {
                state.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `key → value`, charging `bytes` against the budget and
    /// evicting least-recently-used entries until the total fits.
    /// Returns `false` when the entry alone exceeds the whole budget
    /// (it is not stored — the cache can never hold more than its
    /// budget, so it can never OOM the server).
    pub fn put(&self, key: K, value: V, bytes: usize) -> bool {
        let mut state = self.lock();
        if bytes > self.budget {
            state.stats.rejected_oversize += 1;
            return false;
        }
        state.clock += 1;
        let stamp = state.clock;
        if let Some(old) = state.entries.insert(key, Entry { value, bytes, stamp }) {
            state.bytes -= old.bytes;
        }
        state.bytes += bytes;
        state.stats.insertions += 1;
        while state.bytes > self.budget {
            // Deterministic LRU: the smallest stamp is the coldest.
            let Some(coldest) = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = state.entries.remove(&coldest) {
                state.bytes -= evicted.bytes;
                state.stats.evictions += 1;
            }
        }
        true
    }

    /// A snapshot of the counters and occupancy gauges.
    pub fn stats(&self) -> CacheStats {
        let state = self.lock();
        CacheStats {
            bytes: state.bytes,
            entries: state.entries.len(),
            ..state.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_stats() {
        let cache: ByteCache<&str, u32> = ByteCache::new(100);
        assert_eq!(cache.get(&"a"), None);
        assert!(cache.put("a", 1, 10));
        assert_eq!(cache.get(&"a"), Some(1));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!((stats.bytes, stats.entries), (10, 1));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let cache: ByteCache<&str, u32> = ByteCache::new(30);
        assert!(cache.put("a", 1, 10));
        assert!(cache.put("b", 2, 10));
        assert!(cache.put("c", 3, 10));
        // Touch `a` so `b` is now the coldest entry.
        assert_eq!(cache.get(&"a"), Some(1));
        assert!(cache.put("d", 4, 10));
        assert_eq!(cache.get(&"b"), None, "the coldest entry was evicted");
        assert_eq!(cache.get(&"a"), Some(1), "the refreshed entry survived");
        assert_eq!(cache.get(&"c"), Some(3));
        assert_eq!(cache.get(&"d"), Some(4));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= 30, "never over budget: {}", stats.bytes);
    }

    #[test]
    fn a_large_insert_evicts_several() {
        let cache: ByteCache<&str, u32> = ByteCache::new(30);
        assert!(cache.put("a", 1, 10));
        assert!(cache.put("b", 2, 10));
        assert!(cache.put("c", 3, 25));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2, "both cold entries had to go");
        assert_eq!(stats.entries, 1);
        assert_eq!(cache.get(&"c"), Some(3));
    }

    #[test]
    fn oversized_entries_are_refused() {
        let cache: ByteCache<&str, u32> = ByteCache::new(10);
        assert!(!cache.put("huge", 1, 11));
        assert_eq!(cache.get(&"huge"), None);
        let stats = cache.stats();
        assert_eq!(stats.rejected_oversize, 1);
        assert_eq!(stats.insertions, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_charging() {
        let cache: ByteCache<&str, u32> = ByteCache::new(100);
        assert!(cache.put("a", 1, 40));
        assert!(cache.put("a", 2, 60));
        let stats = cache.stats();
        assert_eq!(stats.bytes, 60, "the old entry's bytes were released");
        assert_eq!(cache.get(&"a"), Some(2));
    }
}
