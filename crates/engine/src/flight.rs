//! Single-flight deduplication.
//!
//! When N identical requests arrive concurrently, exactly one of them
//! (the *leader*) runs the expensive computation; the others (the
//! *followers*) block on the leader's flight and receive a clone of
//! its result — byte-identical artifacts for free. The flight is
//! removed once the leader publishes, so a *later* identical request
//! recomputes (a cache in front of the flight handles reuse over
//! time; this type only collapses *concurrent* duplicates).
//!
//! Panic safety: a leader that unwinds marks its flight abandoned and
//! wakes every follower, each of which loops back and competes to
//! lead a fresh flight — nobody hangs on a dead leader.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

enum FlightState<V> {
    Pending,
    Done(V),
    Abandoned,
}

struct FlightSlot<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

impl<V> FlightSlot<V> {
    fn new() -> Self {
        FlightSlot {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    fn publish(&self, state: FlightState<V>) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = state;
        self.done.notify_all();
    }
}

/// A keyed single-flight group. `V` must be cheap to clone — wrap
/// large artifacts in an `Arc`.
pub struct SingleFlight<K: Eq + Hash + Clone, V: Clone> {
    flights: Mutex<HashMap<K, Arc<FlightSlot<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

/// Removes the leader's flight on unwind so followers re-compete
/// instead of waiting forever.
struct LeaderGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    group: &'a SingleFlight<K, V>,
    key: &'a K,
    slot: Arc<FlightSlot<V>>,
    published: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            self.group.remove(self.key);
            self.slot.publish(FlightState::Abandoned);
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty group.
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    fn remove(&self, key: &K) {
        self.flights
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(key);
    }

    /// Runs `compute` under single-flight semantics for `key`.
    ///
    /// Returns the value and whether *this* call led the flight
    /// (`false` means the result was coalesced from a concurrent
    /// leader). A leader panic propagates to the leader's caller;
    /// followers of an abandoned flight retry leadership.
    pub fn run<F: FnOnce() -> V>(&self, key: &K, compute: F) -> (V, bool) {
        let mut compute = Some(compute);
        loop {
            let (slot, leads) = {
                let mut flights = self.flights.lock().unwrap_or_else(PoisonError::into_inner);
                match flights.get(key) {
                    Some(slot) => (Arc::clone(slot), false),
                    None => {
                        let slot = Arc::new(FlightSlot::new());
                        flights.insert(key.clone(), Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            if leads {
                let mut guard = LeaderGuard {
                    group: self,
                    key,
                    slot: Arc::clone(&slot),
                    published: false,
                };
                // `expect` is unreachable: `compute` is taken at most
                // once per loop, and a leader always returns.
                let compute = compute.take().expect("single-flight leader runs once");
                let value = compute(); // may unwind → guard abandons the flight
                self.remove(key);
                slot.publish(FlightState::Done(value.clone()));
                guard.published = true;
                drop(guard);
                return (value, true);
            }
            let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                match &*state {
                    FlightState::Done(value) => return (value.clone(), false),
                    FlightState::Abandoned => break, // compete for a fresh flight
                    FlightState::Pending => {
                        state = slot.done.wait(state).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
    }

    /// Flights currently pending (an observability gauge).
    pub fn in_flight(&self) -> usize {
        self.flights
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn n_concurrent_callers_one_compute_identical_values() {
        const N: usize = 8;
        let flight: Arc<SingleFlight<String, Arc<String>>> = Arc::new(SingleFlight::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(N));
        let key = "the-key".to_owned();
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let flight = Arc::clone(&flight);
                let computes = Arc::clone(&computes);
                let gate = Arc::clone(&gate);
                let key = key.clone();
                std::thread::spawn(move || {
                    gate.wait();
                    flight.run(&key, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Stay in flight long enough for every waiting
                        // thread to coalesce rather than re-lead.
                        std::thread::sleep(Duration::from_millis(100));
                        Arc::new("artifact-bytes".to_owned())
                    })
                })
            })
            .collect();
        let results: Vec<(Arc<String>, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
        assert_eq!(results.iter().filter(|(_, led)| *led).count(), 1);
        let leader_value = &results.iter().find(|(_, led)| *led).unwrap().0;
        for (value, _) in &results {
            assert!(
                Arc::ptr_eq(value, leader_value),
                "followers share the leader's artifact allocation"
            );
        }
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        let (a, led_a) = flight.run(&1, || 10);
        let (b, led_b) = flight.run(&2, || 20);
        assert_eq!((a, b), (10, 20));
        assert!(led_a && led_b);
        assert_eq!(flight.in_flight(), 0, "completed flights are removed");
    }

    #[test]
    fn sequential_calls_recompute() {
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        let computes = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, led) = flight.run(&7, || {
                computes.fetch_add(1, Ordering::SeqCst);
                42
            });
            assert_eq!(v, 42);
            assert!(led, "no concurrency, so every call leads");
        }
        assert_eq!(
            computes.load(Ordering::SeqCst),
            3,
            "single-flight collapses concurrent calls only; reuse is the cache's job"
        );
    }

    #[test]
    fn abandoned_flight_does_not_hang_followers() {
        let flight: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let gate = Arc::new(Barrier::new(2));
        let leader = {
            let flight = Arc::clone(&flight);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flight.run(&1, || {
                        gate.wait();
                        std::thread::sleep(Duration::from_millis(50));
                        panic!("leader dies mid-flight");
                    })
                }));
                assert!(result.is_err(), "the leader's own panic propagates");
            })
        };
        let follower = {
            let flight = Arc::clone(&flight);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                // Joins the doomed flight (or, if it lost the race,
                // simply leads a fresh one) — either way it finishes.
                flight.run(&1, || 99)
            })
        };
        leader.join().unwrap();
        let (value, _) = follower.join().unwrap();
        assert_eq!(value, 99, "the follower recovered by leading a retry");
        assert_eq!(flight.in_flight(), 0);
    }
}
