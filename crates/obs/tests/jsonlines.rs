//! End-to-end coverage of the JSON-lines subscriber through the real
//! macro pipeline: install it as the process-global subscriber with a
//! captured sink, emit spans and events, and assert on the stream.
//!
//! Three guarantees matter to machine consumers of `--log-json`:
//! every line parses as standalone JSON (no multi-line records), the
//! level gate holds (a `DEBUG` subscriber never sees `TRACE`), and
//! span closes come out LIFO (inner spans close before outer ones).

use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};

use netart_obs::{Json, JsonLinesSubscriber};
use tracing::Level;

/// A `Write` sink tests can read back.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .expect("subscriber output is UTF-8")
            .lines()
            .map(str::to_owned)
            .collect()
    }
}

/// Installs the subscriber once per test binary (the global slot is
/// claim-once) and serialises the tests so each sees its own output.
fn with_captured_stream(f: impl FnOnce(&SharedBuf)) {
    static SINK: OnceLock<(SharedBuf, Mutex<()>)> = OnceLock::new();
    let (sink, guard) = SINK.get_or_init(|| {
        let buf = SharedBuf::default();
        let sub = JsonLinesSubscriber::with_sink(Level::DEBUG, Box::new(buf.clone()));
        tracing::set_global_default(sub).expect("first install in this binary");
        (buf, Mutex::new(()))
    });
    let _g = guard.lock().unwrap_or_else(|e| e.into_inner());
    sink.0.lock().unwrap().clear();
    f(sink);
}

#[test]
fn every_line_is_standalone_json() {
    with_captured_stream(|sink| {
        let span = tracing::span!(Level::INFO, "probe.outer", stage = "parse");
        let _e = span.enter();
        tracing::info!("probe event", nets = 3u64, clean = true);
        tracing::warn!("probe warning", file = "design.net");
        drop(_e);

        let lines = sink.lines();
        assert!(lines.len() >= 3, "expected events and a span close: {lines:?}");
        for line in &lines {
            let parsed = Json::parse(line)
                .unwrap_or_else(|e| panic!("line is not standalone JSON: {e:?}\n{line}"));
            let obj = parsed.as_obj().expect("each line is an object");
            let ty = obj.iter().find(|(k, _)| k == "type").expect("type member");
            assert!(
                matches!(ty.1.as_str(), Some("event") | Some("span")),
                "unexpected record type in {line}"
            );
        }
    });
}

#[test]
fn level_gate_holds() {
    with_captured_stream(|sink| {
        tracing::trace!("gate probe below threshold");
        tracing::debug!("gate probe at threshold");

        let lines = sink.lines();
        assert!(
            !lines.iter().any(|l| l.contains("below threshold")),
            "TRACE leaked past a DEBUG subscriber: {lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("at threshold")),
            "DEBUG record missing: {lines:?}"
        );
    });
}

#[test]
fn span_closes_are_lifo() {
    with_captured_stream(|sink| {
        let outer = tracing::span!(Level::INFO, "lifo.outer");
        let outer_entered = outer.enter();
        let inner = tracing::span!(Level::INFO, "lifo.inner");
        let inner_entered = inner.enter();
        tracing::info!("lifo probe");
        drop(inner_entered);
        drop(outer_entered);

        let lines = sink.lines();
        let event = lines
            .iter()
            .find(|l| l.contains("lifo probe"))
            .expect("probe event");
        let spans = Json::parse(event).unwrap();
        let spans = spans.as_obj().unwrap();
        let spans = &spans.iter().find(|(k, _)| k == "spans").unwrap().1;
        assert_eq!(
            spans.render(),
            r#"["lifo.outer","lifo.inner"]"#,
            "event spans must list outermost first"
        );

        let closes: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains(r#""type":"span""#) && l.contains("lifo."))
            .collect();
        assert_eq!(closes.len(), 2, "both spans close: {lines:?}");
        assert!(closes[0].contains("lifo.inner"), "inner closes first");
        assert!(closes[1].contains("lifo.outer"), "outer closes last");
    });
}
