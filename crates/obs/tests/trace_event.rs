//! End-to-end trace-event recording: install a [`TraceEventSubscriber`]
//! behind a [`FanoutSubscriber`] (exactly how the CLI wires
//! `--trace-out`), drive real spans and events on several threads, and
//! structurally validate the rendered trace document the way the CI
//! gate does: a JSON array whose members carry `name`/`ph`/`ts`/`pid`/
//! `tid`, with `B`/`E` balanced and stack-ordered per thread.

use std::sync::OnceLock;

use netart_obs::{FanoutSubscriber, Json, TraceBuffer, TraceEventSubscriber};
use tracing::Level;

fn recorded() -> &'static TraceBuffer {
    static BUFFER: OnceLock<TraceBuffer> = OnceLock::new();
    BUFFER.get_or_init(|| {
        let (recorder, buffer) = TraceEventSubscriber::new(Level::TRACE);
        tracing::set_global_default(FanoutSubscriber::new(vec![Box::new(recorder)]))
            .expect("first install in this binary");

        // Two worker threads, each with nested spans and an instant
        // event, so per-thread tracks and tids are exercised.
        let workers: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    let outer = tracing::span!(Level::DEBUG, "work.outer", kind = "probe");
                    let _o = outer.enter();
                    tracing::info!("midpoint", step = 1u64);
                    let inner = tracing::span!(Level::DEBUG, "work.inner");
                    inner.in_scope(|| tracing::debug!("innermost"));
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker finished");
        }
        buffer
    })
}

#[test]
fn trace_document_is_structurally_valid() {
    let text = recorded().to_json_string();
    let doc = Json::parse(&text).expect("trace renders as valid JSON");
    let events = doc.as_arr().expect("trace document is an array");
    assert!(!events.is_empty(), "worker spans were recorded");
    for e in events {
        for member in ["name", "ph", "ts", "pid", "tid"] {
            assert!(e.get(member).is_some(), "member {member} missing in {e:?}");
        }
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        assert!(matches!(ph, "B" | "E" | "i"), "unknown phase {ph}");
        assert!(e.get("ts").and_then(Json::as_f64).unwrap() >= 0.0);
    }
}

#[test]
fn spans_balance_per_thread() {
    let doc = recorded().to_json();
    let events = doc.as_arr().unwrap();
    let tids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    assert!(tids.len() >= 2, "two worker threads, two tracks: {tids:?}");

    for tid in tids {
        // Replay this thread's track; B pushes, E must match the top.
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = 0.0f64;
        for e in events
            .iter()
            .filter(|e| e.get("tid").and_then(Json::as_u64) == Some(tid))
        {
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last_ts, "timestamps are non-decreasing per thread");
            last_ts = ts;
            let name = e.get("name").and_then(Json::as_str).unwrap();
            match e.get("ph").and_then(Json::as_str).unwrap() {
                "B" => stack.push(name),
                "E" => assert_eq!(stack.pop(), Some(name), "E matches innermost open B"),
                _ => {}
            }
        }
        assert!(stack.is_empty(), "every B on tid {tid} has a matching E");
    }
}
