//! Golden-file test pinning the `ServeStats` JSON schema.
//!
//! The rendered stats document for a fully-populated, fixed-value
//! [`ServeStats`] must match `tests/golden/serve_stats.json` byte for
//! byte, mirroring the `RunReport` pin in `golden_schema.rs`. Additive
//! changes regenerate the golden with `UPDATE_GOLDEN=1 cargo test -p
//! netart-obs --test golden_serve_schema`; renames and removals also
//! require bumping [`netart_obs::SERVE_SCHEMA_VERSION`].

use std::path::PathBuf;

use netart_obs::{Json, ServeStats};

/// Stats exercising every member of the schema with fixed values.
fn exemplar() -> ServeStats {
    ServeStats {
        requests: 100,
        clean: 80,
        degraded: 7,
        failed: 5,
        shed: 3,
        too_large: 2,
        drain_rejects: 1,
        deadline_cancelled: 4,
        panics: 1,
        cache_hits: 40,
        cache_misses: 52,
        coalesced: 8,
        cache_bytes: 65_536,
        cache_entries: 12,
        in_flight: 2,
        queued: 5,
        shard_live: 4,
        shard_restarts: 9,
        win_latency_count: 31,
        win_latency_p50_ns: 2_097_151,
        win_latency_p90_ns: 8_388_607,
        win_latency_p99_ns: 33_554_431,
    }
}

#[test]
fn serve_stats_match_golden() {
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_stats.json");
    let rendered = exemplar().to_json_string();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &rendered).expect("write golden");
        return;
    }

    let expected = std::fs::read_to_string(&golden)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        rendered,
        expected,
        "ServeStats JSON schema drifted from tests/golden/serve_stats.json;\n\
         if the change is intentional, regenerate with UPDATE_GOLDEN=1 and\n\
         bump SERVE_SCHEMA_VERSION when members were renamed or removed"
    );
}

#[test]
fn stats_roundtrip_through_json() {
    let original = exemplar();
    let text = original.to_json_string();
    let parsed = Json::parse(&text).expect("rendered stats parse");
    let read_back = ServeStats::from_json(&parsed).expect("stats read back");
    assert_eq!(read_back, original);
    assert_eq!(read_back.to_json_string(), text, "roundtrip is byte-stable");
}
