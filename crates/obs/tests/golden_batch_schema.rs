//! Golden-file test pinning the `BatchManifest` JSON schema.
//!
//! Same discipline as `golden_schema.rs`: the rendered manifest for a
//! fully-populated, fixed-value `BatchManifest` must match
//! `tests/golden/batch_manifest.json` byte for byte. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p netart-obs --test
//! golden_batch_schema`; renames and removals also require bumping
//! [`netart_obs::BATCH_SCHEMA_VERSION`].

use std::path::PathBuf;

use netart_obs::{BatchManifest, JobRecord, JobStatus, QuarantineReport, RunReport};

/// A manifest exercising every member of the schema with fixed values.
fn exemplar() -> BatchManifest {
    BatchManifest::new(
        "netart batch",
        2,
        true,
        vec![
            JobRecord {
                input: "examples/batch/ok.net".to_owned(),
                status: JobStatus::Ok,
                attempts: 1,
                duration_ns: 1_000,
                degradations: 0,
                error: None,
                quarantine: None,
                report: Some(RunReport {
                    tool: "netart".to_owned(),
                    is_clean: true,
                    ..RunReport::default()
                }),
            },
            JobRecord {
                input: "examples/batch/salvaged.net".to_owned(),
                status: JobStatus::Degraded,
                attempts: 1,
                duration_ns: 2_000,
                degradations: 2,
                error: None,
                quarantine: None,
                report: Some(RunReport {
                    tool: "netart".to_owned(),
                    is_clean: false,
                    ..RunReport::default()
                }),
            },
            JobRecord {
                input: "examples/batch/poison.net".to_owned(),
                status: JobStatus::Quarantined,
                attempts: 3,
                duration_ns: 3_000,
                degradations: 0,
                error: Some("injected panic at engine.job".to_owned()),
                quarantine: Some(QuarantineReport {
                    after_attempts: 3,
                    symptom: "injected panic at engine.job".to_owned(),
                }),
                report: None,
            },
            JobRecord {
                input: "examples/batch/broken.net".to_owned(),
                status: JobStatus::Failed,
                attempts: 1,
                duration_ns: 500,
                degradations: 0,
                error: Some("parse error: line 3: unknown template".to_owned()),
                quarantine: None,
                report: None,
            },
            JobRecord {
                input: "examples/batch/late.net".to_owned(),
                status: JobStatus::Skipped,
                attempts: 0,
                duration_ns: 0,
                degradations: 0,
                error: None,
                quarantine: None,
                report: None,
            },
        ],
    )
}

#[test]
fn batch_manifest_matches_golden() {
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/batch_manifest.json");
    let rendered = exemplar().to_json_string();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &rendered).expect("write golden");
        return;
    }

    let expected = std::fs::read_to_string(&golden)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        rendered,
        expected,
        "BatchManifest JSON schema drifted from tests/golden/batch_manifest.json;\n\
         if the change is intentional, regenerate with UPDATE_GOLDEN=1 and\n\
         bump BATCH_SCHEMA_VERSION when members were renamed or removed"
    );
}

#[test]
fn manifest_roundtrips_through_json() {
    let original = exemplar();
    let text = original.to_json_string();
    let parsed = netart_obs::Json::parse(&text).expect("rendered manifest parses");
    let read_back = BatchManifest::from_json(&parsed).expect("manifest reads back");
    assert_eq!(read_back, original);
    assert_eq!(read_back.to_json_string(), text, "roundtrip is byte-stable");
}

#[test]
fn summary_and_exit_code_cover_every_status() {
    let m = exemplar();
    assert_eq!(m.summary.ok, 1);
    assert_eq!(m.summary.degraded, 1);
    assert_eq!(m.summary.failed, 1);
    assert_eq!(m.summary.quarantined, 1);
    assert_eq!(m.summary.skipped, 1);
    assert_eq!(m.summary.total_attempts, 6);
    assert_eq!(m.exit_code(), 2);
}

#[test]
fn normalized_manifest_is_free_of_wall_clock() {
    let n = exemplar().normalized();
    assert_eq!(n.summary.duration_ns, 0);
    for job in &n.jobs {
        assert_eq!(job.duration_ns, 0);
        if let Some(r) = &job.report {
            assert!(r.phases.iter().all(|p| p.wall_ns == 0));
        }
    }
    // Two normalisations render identically (the determinism contract
    // the batch tests compare with).
    assert_eq!(n.to_json_string(), exemplar().normalized().to_json_string());
}
