//! Golden-file test pinning the `RunReport` JSON schema.
//!
//! The rendered report for a fully-populated, fixed-value `RunReport`
//! must match `tests/golden/run_report.json` byte for byte. Any shape
//! change — a renamed member, a reordered key, a different number
//! rendering — shows up as a diff here. Additive changes regenerate the
//! golden with `UPDATE_GOLDEN=1 cargo test -p netart-obs --test
//! golden_schema`; renames and removals also require bumping
//! [`netart_obs::SCHEMA_VERSION`].

use std::path::PathBuf;

use netart_obs::{
    DegradationReport, Metrics, NetReport, NetworkReport, PhaseReport, QualityReport, RunReport,
};

/// A report exercising every member of the schema with fixed values.
fn exemplar() -> RunReport {
    let mut metrics = Metrics::new();
    metrics.inc("route.nets_routed", 2);
    metrics.inc("route.nets_failed", 1);
    metrics.inc("route.nodes_expanded", 190);
    metrics.set("quality.total_bends", 4);
    metrics.observe("phase.route_ns", 1_500);
    metrics.observe("route.net_nodes", 40);
    metrics.observe("route.net_nodes", 150);

    let mut report = RunReport {
        tool: "netart".to_owned(),
        network: NetworkReport {
            modules: 3,
            nets: 3,
            system_terminals: 1,
        },
        phases: vec![
            PhaseReport {
                name: "parse".to_owned(),
                wall_ns: 250,
                ..PhaseReport::default()
            },
            PhaseReport {
                name: "place".to_owned(),
                wall_ns: 1_000,
                ..PhaseReport::default()
            },
            PhaseReport {
                name: "route".to_owned(),
                wall_ns: 1_500,
                alloc_count: Some(12),
                alloc_bytes: Some(2_048),
                peak_bytes: Some(8_192),
                ..PhaseReport::default()
            },
            PhaseReport {
                name: "emit".to_owned(),
                wall_ns: 75,
                ..PhaseReport::default()
            },
        ],
        nets: vec![
            NetReport {
                net: "clk".to_owned(),
                routed: true,
                prerouted: false,
                nodes_expanded: 40,
                over_budget: false,
                retried: false,
                salvage: None,
                ripup_victims: 0,
            },
            NetReport {
                net: "rst".to_owned(),
                routed: true,
                prerouted: false,
                nodes_expanded: 150,
                over_budget: true,
                retried: true,
                salvage: Some("rip_up_retry".to_owned()),
                ripup_victims: 1,
            },
        ],
        degradations: vec![DegradationReport {
            kind: "net_salvaged".to_owned(),
            net: Some("rst".to_owned()),
            stage: Some("rip_up_retry".to_owned()),
            routed: Some(true),
            over_budget: Some(true),
            nodes_expanded: Some(150),
            detail: None,
        }],
        quality: QualityReport {
            routed_nets: 2,
            unrouted_nets: 1,
            total_length: 64,
            total_bends: 4,
            crossovers: 1,
            branch_points: 2,
            bounding_area: 1_200,
            completion: 2.0 / 3.0,
        },
        metrics: metrics.snapshot(),
        is_clean: false,
    };
    // The `route` phase has a `phase.route_ns` histogram, so it alone
    // gains quantiles — the other phases keep `null`s.
    report.attach_phase_quantiles();
    report
}

#[test]
fn run_report_matches_golden() {
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_report.json");
    let rendered = exemplar().to_json_string();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &rendered).expect("write golden");
        return;
    }

    let expected = std::fs::read_to_string(&golden)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        rendered,
        expected,
        "RunReport JSON schema drifted from tests/golden/run_report.json;\n\
         if the change is intentional, regenerate with UPDATE_GOLDEN=1 and\n\
         bump SCHEMA_VERSION when members were renamed or removed"
    );
}

#[test]
fn golden_parses_and_roundtrips_key_facts() {
    // Independent of the byte-level pin: the rendered tree reports the
    // same facts the struct holds.
    let r = exemplar();
    let j = r.to_json();
    assert_eq!(
        j.get("schema_version"),
        Some(&netart_obs::Json::Uint(u64::from(netart_obs::SCHEMA_VERSION)))
    );
    let phases = match j.get("phases") {
        Some(netart_obs::Json::Arr(p)) => p,
        other => panic!("phases not an array: {other:?}"),
    };
    assert_eq!(phases.len(), 4);
    assert_eq!(
        j.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("route.nets_routed")),
        Some(&netart_obs::Json::Uint(2))
    );
}

#[test]
fn report_roundtrips_through_json() {
    let original = exemplar();
    let text = original.to_json_string();
    let parsed = netart_obs::Json::parse(&text).expect("rendered report parses");
    let read_back = RunReport::from_json(&parsed).expect("report reads back");
    assert_eq!(read_back, original);
    // And the roundtrip is byte-stable, which is what `report diff`
    // relies on when reading committed baselines.
    assert_eq!(read_back.to_json_string(), text);
}

#[test]
fn normalized_report_is_free_of_wall_clock() {
    let normalized = exemplar().normalized();
    for phase in &normalized.phases {
        assert_eq!(phase.wall_ns, 0);
        assert_eq!(phase.p50_ns, None);
    }
    assert!(
        normalized.metrics.histograms.keys().all(|k| !k.ends_with("_ns")),
        "timing histograms must be dropped: {:?}",
        normalized.metrics.histograms.keys().collect::<Vec<_>>()
    );
    // Deterministic content survives.
    assert!(normalized.metrics.histograms.contains_key("route.net_nodes"));
    assert_eq!(normalized.nets.len(), 2);
    assert_eq!(normalized.quality.total_bends, 4);
}
