//! The baseline differ: compares two [`RunReport`]s and classifies
//! every difference, so `netart report diff` and the CI perf-gate can
//! fail on regressions instead of eyeballing JSON.
//!
//! Comparison semantics follow the report's own determinism split:
//!
//! * **counters, per-net effort, degradations and quality are exact**
//!   — they are deterministic for a given input, so *any* drift is
//!   surfaced (regressions fail the gate; improvements are reported
//!   and require blessing a new baseline);
//! * **phase wall times are band-tolerant** — both sides are dropped
//!   into the log-2 buckets of [`Histogram::bucket_of`] and a phase
//!   only regresses when the current time lands more than
//!   [`DiffConfig::band_buckets`] buckets above the baseline;
//! * a baseline phase with `wall_ns == 0` (a [`RunReport::normalized`]
//!   baseline, which is what `baselines/*.json` commit) opts out of
//!   time comparison entirely.

use crate::json::Json;
use crate::metrics::Histogram;
use crate::report::RunReport;

/// Tunables for [`ReportDiff::diff_with`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// How many log-2 buckets above the baseline a phase wall time may
    /// land before it counts as a regression. The default of 1 allows
    /// roughly a 2–4× excursion — wide enough for shared CI runners,
    /// tight enough to catch complexity blowups.
    pub band_buckets: usize,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig { band_buckets: 1 }
    }
}

/// How one differing metric affects the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffSeverity {
    /// The current run is worse; the gate fails.
    Regression,
    /// The current run is better; bless a new baseline to keep it.
    Improvement,
    /// A difference with no quality direction (tool name, …).
    Info,
}

impl DiffSeverity {
    /// Lower-case name used in JSON and text output.
    pub fn as_str(self) -> &'static str {
        match self {
            DiffSeverity::Regression => "regression",
            DiffSeverity::Improvement => "improvement",
            DiffSeverity::Info => "info",
        }
    }
}

/// One differing metric between baseline and current.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Dotted metric path (`quality.total_bends`,
    /// `nets.clk.nodes_expanded`, `phase.route.wall_ns`, …).
    pub metric: String,
    /// The baseline value.
    pub baseline: Json,
    /// The current value.
    pub current: Json,
    /// Verdict for this metric.
    pub severity: DiffSeverity,
    /// Human-readable explanation.
    pub note: String,
}

/// The result of diffing two reports: every differing metric,
/// classified.
#[derive(Debug, Clone, Default)]
pub struct ReportDiff {
    /// All differing metrics, in comparison order.
    pub entries: Vec<DiffEntry>,
}

impl ReportDiff {
    /// Diffs `current` against `baseline` with default tolerances.
    pub fn diff(baseline: &RunReport, current: &RunReport) -> ReportDiff {
        Self::diff_with(baseline, current, DiffConfig::default())
    }

    /// Diffs `current` against `baseline` with explicit tolerances.
    pub fn diff_with(baseline: &RunReport, current: &RunReport, config: DiffConfig) -> ReportDiff {
        let mut diff = ReportDiff::default();
        diff.compare_network(baseline, current);
        diff.compare_phases(baseline, current, config);
        diff.compare_counters(baseline, current);
        diff.compare_nets(baseline, current);
        diff.compare_degradations(baseline, current);
        diff.compare_quality(baseline, current);
        diff
    }

    /// Whether any entry is a [`DiffSeverity::Regression`] — the exit
    /// code 3 condition.
    pub fn is_regression(&self) -> bool {
        self.entries
            .iter()
            .any(|e| e.severity == DiffSeverity::Regression)
    }

    /// The regressions alone, for naming offenders in output.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries
            .iter()
            .filter(|e| e.severity == DiffSeverity::Regression)
    }

    /// The machine-readable diff document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("regression", self.is_regression())
            .with(
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::obj()
                                .with("metric", e.metric.as_str())
                                .with("severity", e.severity.as_str())
                                .with("baseline", e.baseline.clone())
                                .with("current", e.current.clone())
                                .with("note", e.note.as_str())
                        })
                        .collect(),
                ),
            )
    }

    /// A short human-readable summary, one line per entry.
    pub fn render_text(&self) -> String {
        if self.entries.is_empty() {
            return "no differences".to_owned();
        }
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{:<11} {}: {} -> {} ({})\n",
                e.severity.as_str(),
                e.metric,
                e.baseline.render(),
                e.current.render(),
                e.note
            ));
        }
        out.pop();
        out
    }

    fn push(
        &mut self,
        metric: impl Into<String>,
        baseline: impl Into<Json>,
        current: impl Into<Json>,
        severity: DiffSeverity,
        note: impl Into<String>,
    ) {
        self.entries.push(DiffEntry {
            metric: metric.into(),
            baseline: baseline.into(),
            current: current.into(),
            severity,
            note: note.into(),
        });
    }

    /// An exact comparison where *any* change regresses (the metric is
    /// deterministic, so drift means the pipeline changed behaviour).
    fn exact(&mut self, metric: String, baseline: u64, current: u64, note: &str) {
        if baseline != current {
            self.push(metric, baseline, current, DiffSeverity::Regression, note);
        }
    }

    /// A directional comparison: moving toward `bad_direction` is a
    /// regression, away from it an improvement.
    fn directional(&mut self, metric: String, baseline: u64, current: u64, lower_is_better: bool) {
        if baseline == current {
            return;
        }
        let worse = (current > baseline) == lower_is_better;
        let severity = if worse {
            DiffSeverity::Regression
        } else {
            DiffSeverity::Improvement
        };
        let note = if worse { "got worse" } else { "got better" };
        self.push(metric, baseline, current, severity, note);
    }

    fn compare_network(&mut self, baseline: &RunReport, current: &RunReport) {
        let pairs = [
            ("network.modules", baseline.network.modules, current.network.modules),
            ("network.nets", baseline.network.nets, current.network.nets),
            (
                "network.system_terminals",
                baseline.network.system_terminals,
                current.network.system_terminals,
            ),
        ];
        for (metric, b, c) in pairs {
            self.exact(
                metric.to_owned(),
                b as u64,
                c as u64,
                "input sizes differ; the runs are not comparable",
            );
        }
    }

    fn compare_phases(&mut self, baseline: &RunReport, current: &RunReport, config: DiffConfig) {
        for b in &baseline.phases {
            let Some(c) = current.phases.iter().find(|p| p.name == b.name) else {
                self.push(
                    format!("phase.{}", b.name),
                    b.wall_ns,
                    Json::Null,
                    DiffSeverity::Regression,
                    "phase missing from current run",
                );
                continue;
            };
            // Allocation attribution survives normalization, so it is
            // compared whenever both sides carry it (a `null` on
            // either side — an unprofiled build — opts out).
            let alloc_pairs = [
                ("alloc_count", b.alloc_count, c.alloc_count),
                ("alloc_bytes", b.alloc_bytes, c.alloc_bytes),
                ("peak_bytes", b.peak_bytes, c.peak_bytes),
            ];
            for (member, b_val, c_val) in alloc_pairs {
                let (Some(b_val), Some(c_val)) = (b_val, c_val) else {
                    continue;
                };
                self.banded(
                    format!("phase.{}.{member}", b.name),
                    b_val,
                    c_val,
                    "allocation",
                    config,
                );
            }
            // A normalized baseline (wall_ns == 0) carries no timing
            // to compare against.
            if b.wall_ns == 0 {
                continue;
            }
            self.banded(
                format!("phase.{}.wall_ns", b.name),
                b.wall_ns,
                c.wall_ns,
                "wall time",
                config,
            );
        }
    }

    /// A band-tolerant comparison: both sides drop into the log-2
    /// buckets of [`Histogram::bucket_of`] and only an excursion of
    /// more than [`DiffConfig::band_buckets`] buckets counts (up is a
    /// regression, down an improvement).
    fn banded(&mut self, metric: String, baseline: u64, current: u64, what: &str, config: DiffConfig) {
        let b_bucket = Histogram::bucket_of(baseline);
        let c_bucket = Histogram::bucket_of(current);
        if c_bucket > b_bucket + config.band_buckets {
            self.push(
                metric,
                baseline,
                current,
                DiffSeverity::Regression,
                format!(
                    "{what} moved up {} log2 buckets (band allows {})",
                    c_bucket - b_bucket,
                    config.band_buckets
                ),
            );
        } else if b_bucket > c_bucket + config.band_buckets {
            self.push(
                metric,
                baseline,
                current,
                DiffSeverity::Improvement,
                format!("{what} moved down {} log2 buckets", b_bucket - c_bucket),
            );
        }
    }

    fn compare_counters(&mut self, baseline: &RunReport, current: &RunReport) {
        for (name, &b) in &baseline.metrics.counters {
            let c = current.metrics.counters.get(name).copied().unwrap_or(0);
            self.exact(
                format!("counters.{name}"),
                b,
                c,
                "deterministic counter drifted",
            );
        }
        for (name, &c) in &current.metrics.counters {
            if !baseline.metrics.counters.contains_key(name) {
                self.push(
                    format!("counters.{name}"),
                    Json::Null,
                    c,
                    DiffSeverity::Regression,
                    "counter absent from baseline",
                );
            }
        }
    }

    fn compare_nets(&mut self, baseline: &RunReport, current: &RunReport) {
        for b in &baseline.nets {
            let Some(c) = current.nets.iter().find(|n| n.net == b.net) else {
                self.push(
                    format!("nets.{}", b.net),
                    b.routed,
                    Json::Null,
                    DiffSeverity::Regression,
                    "net missing from current run",
                );
                continue;
            };
            if b.routed && !c.routed {
                self.push(
                    format!("nets.{}.routed", b.net),
                    true,
                    false,
                    DiffSeverity::Regression,
                    "net lost its route",
                );
            } else if !b.routed && c.routed {
                self.push(
                    format!("nets.{}.routed", b.net),
                    false,
                    true,
                    DiffSeverity::Improvement,
                    "net gained a route",
                );
            }
            if !b.over_budget && c.over_budget {
                self.push(
                    format!("nets.{}.over_budget", b.net),
                    false,
                    true,
                    DiffSeverity::Regression,
                    "net newly breaches its search budget",
                );
            }
            self.directional(
                format!("nets.{}.nodes_expanded", b.net),
                b.nodes_expanded,
                c.nodes_expanded,
                true,
            );
        }
    }

    fn compare_degradations(&mut self, baseline: &RunReport, current: &RunReport) {
        let count_by_kind = |r: &RunReport| {
            let mut counts = std::collections::BTreeMap::<String, u64>::new();
            for d in &r.degradations {
                *counts.entry(d.kind.clone()).or_insert(0) += 1;
            }
            counts
        };
        let b_counts = count_by_kind(baseline);
        let c_counts = count_by_kind(current);
        let kinds: std::collections::BTreeSet<&String> =
            b_counts.keys().chain(c_counts.keys()).collect();
        for kind in kinds {
            let b = b_counts.get(kind).copied().unwrap_or(0);
            let c = c_counts.get(kind).copied().unwrap_or(0);
            self.directional(format!("degradations.{kind}"), b, c, true);
        }
    }

    fn compare_quality(&mut self, baseline: &RunReport, current: &RunReport) {
        let b = &baseline.quality;
        let c = &current.quality;
        self.directional(
            "quality.routed_nets".to_owned(),
            b.routed_nets as u64,
            c.routed_nets as u64,
            false,
        );
        self.directional(
            "quality.unrouted_nets".to_owned(),
            b.unrouted_nets as u64,
            c.unrouted_nets as u64,
            true,
        );
        self.directional("quality.total_length".to_owned(), b.total_length, c.total_length, true);
        self.directional("quality.total_bends".to_owned(), b.total_bends, c.total_bends, true);
        self.directional("quality.crossovers".to_owned(), b.crossovers, c.crossovers, true);
        self.directional(
            "quality.branch_points".to_owned(),
            b.branch_points,
            c.branch_points,
            true,
        );
        self.directional(
            "quality.bounding_area".to_owned(),
            b.bounding_area,
            c.bounding_area,
            true,
        );
        if c.completion < b.completion {
            self.push(
                "quality.completion".to_owned(),
                b.completion,
                c.completion,
                DiffSeverity::Regression,
                "completion fraction dropped",
            );
        } else if c.completion > b.completion {
            self.push(
                "quality.completion".to_owned(),
                b.completion,
                c.completion,
                DiffSeverity::Improvement,
                "completion fraction rose",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DegradationReport, NetReport, QualityReport};

    fn sample_report() -> RunReport {
        let mut r = RunReport {
            tool: "netart".into(),
            quality: QualityReport {
                routed_nets: 3,
                unrouted_nets: 0,
                total_length: 40,
                total_bends: 5,
                crossovers: 1,
                branch_points: 2,
                bounding_area: 100,
                completion: 1.0,
            },
            is_clean: true,
            ..RunReport::default()
        };
        r.push_phase("place", 1_000);
        r.push_phase("route", 2_000);
        r.nets.push(NetReport {
            net: "clk".into(),
            routed: true,
            prerouted: false,
            nodes_expanded: 50,
            over_budget: false,
            retried: false,
            salvage: None,
            ripup_victims: 0,
        });
        r.metrics.counters.insert("route.nets_routed".into(), 3);
        r
    }

    #[test]
    fn self_diff_is_clean() {
        let r = sample_report();
        let diff = ReportDiff::diff(&r, &r);
        assert!(!diff.is_regression());
        assert!(diff.entries.is_empty(), "{:?}", diff.entries);
        assert_eq!(diff.render_text(), "no differences");
    }

    #[test]
    fn quality_regressions_are_named() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.quality.total_bends = 9;
        current.metrics.counters.insert("route.nets_routed".into(), 2);
        let diff = ReportDiff::diff(&baseline, &current);
        assert!(diff.is_regression());
        let names: Vec<&str> = diff.regressions().map(|e| e.metric.as_str()).collect();
        assert!(names.contains(&"quality.total_bends"), "{names:?}");
        assert!(names.contains(&"counters.route.nets_routed"), "{names:?}");
    }

    #[test]
    fn improvements_do_not_fail_the_gate() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.quality.total_length = 30;
        current.nets[0].nodes_expanded = 40;
        let diff = ReportDiff::diff(&baseline, &current);
        assert!(!diff.is_regression());
        assert!(diff
            .entries
            .iter()
            .all(|e| e.severity == DiffSeverity::Improvement));
        assert_eq!(diff.entries.len(), 2);
    }

    #[test]
    fn wall_time_band_tolerates_noise_but_not_blowups() {
        let baseline = sample_report();
        let mut noisy = sample_report();
        // Same log2 bucket neighbourhood: 2000ns -> 3500ns is fine.
        noisy.phases[1].wall_ns = 3_500;
        assert!(!ReportDiff::diff(&baseline, &noisy).is_regression());
        let mut blowup = sample_report();
        // 2000ns -> 64000ns crosses more than one bucket: regression.
        blowup.phases[1].wall_ns = 64_000;
        let diff = ReportDiff::diff(&baseline, &blowup);
        assert!(diff.is_regression());
        assert_eq!(diff.regressions().next().unwrap().metric, "phase.route.wall_ns");
    }

    #[test]
    fn alloc_counters_band_like_wall_time() {
        let mut baseline = sample_report().normalized();
        baseline.phases[1].alloc_count = Some(100);
        baseline.phases[1].alloc_bytes = Some(10_000);
        baseline.phases[1].peak_bytes = Some(20_000);

        // Within the band: same bucket neighbourhood, no verdict.
        let mut noisy = baseline.clone();
        noisy.phases[1].alloc_bytes = Some(15_000);
        assert!(!ReportDiff::diff(&baseline, &noisy).is_regression());

        // A 8x allocation blowup crosses more than one bucket even on
        // a normalized (timing-free) baseline: the gate fails.
        let mut blowup = baseline.clone();
        blowup.phases[1].alloc_bytes = Some(80_000);
        let diff = ReportDiff::diff(&baseline, &blowup);
        assert!(diff.is_regression());
        assert_eq!(
            diff.regressions().next().unwrap().metric,
            "phase.route.alloc_bytes"
        );

        // Dropping well below the baseline is an improvement, not a
        // failure.
        let mut slimmer = baseline.clone();
        slimmer.phases[1].peak_bytes = Some(1_000);
        let diff = ReportDiff::diff(&baseline, &slimmer);
        assert!(!diff.is_regression());
        assert_eq!(diff.entries[0].severity, DiffSeverity::Improvement);
    }

    #[test]
    fn unprofiled_side_opts_out_of_alloc_comparison() {
        let mut baseline = sample_report();
        baseline.phases[1].alloc_bytes = Some(10_000);
        let current = sample_report(); // alloc members all None
        assert!(!ReportDiff::diff(&baseline, &current).is_regression());
        assert!(!ReportDiff::diff(&current, &baseline).is_regression());
    }

    #[test]
    fn normalized_baseline_skips_timing() {
        let baseline = sample_report().normalized();
        let mut current = sample_report();
        current.phases[1].wall_ns = u64::MAX / 2;
        assert!(!ReportDiff::diff(&baseline, &current).is_regression());
    }

    #[test]
    fn lost_route_and_new_degradation_regress() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.nets[0].routed = false;
        current.push_degradation(DegradationReport {
            kind: "net_unrouted".into(),
            net: Some("clk".into()),
            stage: None,
            routed: None,
            over_budget: None,
            nodes_expanded: None,
            detail: None,
        });
        let diff = ReportDiff::diff(&baseline, &current);
        let names: Vec<&str> = diff.regressions().map(|e| e.metric.as_str()).collect();
        assert!(names.contains(&"nets.clk.routed"), "{names:?}");
        assert!(names.contains(&"degradations.net_unrouted"), "{names:?}");
    }

    #[test]
    fn diff_json_shape() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.quality.crossovers = 5;
        let diff = ReportDiff::diff(&baseline, &current);
        let j = diff.to_json();
        assert_eq!(j.get("regression"), Some(&Json::Bool(true)));
        let entries = j.get("entries").and_then(Json::as_arr).unwrap();
        assert_eq!(entries[0].get("metric"), Some(&Json::Str("quality.crossovers".into())));
        assert_eq!(entries[0].get("severity"), Some(&Json::Str("regression".into())));
    }
}
