//! The flight recorder: a bounded ring-buffer subscriber for
//! post-mortem "blackbox" dumps.
//!
//! The JSONL/Perfetto subscribers answer "show me everything" and are
//! opt-in because everything is expensive. The flight recorder is the
//! opposite trade: always on (in `netart serve`), fixed memory, and
//! silent until something goes wrong. It keeps the last
//! [`FlightRecorder::capacity`] span-close/event records in a ring;
//! when a panic, deadline breach, injected fault, quarantine, or
//! SIGUSR1 hits, the ring is frozen into a schema-versioned
//! [`BlackboxDump`] naming the request, the active spans, and the most
//! recent degradations — the last seconds of telemetry before the
//! incident, without having traced the happy path.
//!
//! `netart blackbox <dump>` renders a dump as a timeline
//! ([`BlackboxDump::render_timeline`]); `/debug/flight` serves a live
//! snapshot when the operator opted into debug endpoints.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tracing::{Event, Level, SpanRecord, Subscriber};

use crate::json::{expect_schema_version, Json};
use crate::subscribe::fields_json;

/// Version of the blackbox dump shape. Bump when members are renamed,
/// removed, or change meaning.
///
/// History: **1** — initial shape.
pub const BLACKBOX_SCHEMA_VERSION: u32 = 1;

/// How many recent degradation notes a dump carries.
const DEGRADATION_RING: usize = 16;

/// One record in the flight ring: a span close or an event, with
/// enough context to reconstruct a timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic sequence number since the recorder was built; gaps
    /// never occur, so `seq` of the first retained record tells how
    /// many older records the ring has forgotten.
    pub seq: u64,
    /// Microseconds since the recorder was constructed.
    pub ts_us: f64,
    /// Ordinal of the recording thread.
    pub tid: u64,
    /// The record's level.
    pub level: Level,
    /// `span` for a span close, `event` for an event.
    pub kind: &'static str,
    /// Span name or event message.
    pub name: String,
    /// Span wall time (span closes only).
    pub elapsed_ns: Option<u64>,
    /// Structured fields, as a JSON object.
    pub fields: Json,
}

impl FlightRecord {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("seq", self.seq)
            .with("ts_us", self.ts_us)
            .with("tid", self.tid)
            .with("level", self.level.as_str())
            .with("kind", self.kind)
            .with("name", self.name.as_str())
            .with("elapsed_ns", self.elapsed_ns.map(Json::from))
            .with("fields", self.fields.clone())
    }

    fn from_json(json: &Json) -> FlightRecord {
        let kind = match json.get("kind").and_then(Json::as_str) {
            Some("span") => "span",
            _ => "event",
        };
        FlightRecord {
            seq: json.get("seq").and_then(Json::as_u64).unwrap_or(0),
            ts_us: json.get("ts_us").and_then(Json::as_f64).unwrap_or(0.0),
            tid: json.get("tid").and_then(Json::as_u64).unwrap_or(0),
            level: json
                .get("level")
                .and_then(Json::as_str)
                .and_then(|s| s.parse().ok())
                .unwrap_or(Level::INFO),
            kind,
            name: json
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            elapsed_ns: json.get("elapsed_ns").and_then(Json::as_u64),
            fields: json.get("fields").cloned().unwrap_or_else(Json::obj),
        }
    }
}

/// The shared ring state behind recorder and handle.
#[derive(Debug)]
struct Ring {
    records: VecDeque<FlightRecord>,
    capacity: usize,
    seq: u64,
    degradations: VecDeque<String>,
}

impl Ring {
    fn push(&mut self, mut record: FlightRecord) {
        record.seq = self.seq;
        self.seq += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }
}

/// Clonable handle onto a [`FlightRecorder`]'s ring. The recorder is
/// consumed by subscriber installation; the handle is what the server
/// keeps to freeze dumps and note degradations.
#[derive(Debug, Clone)]
pub struct FlightHandle {
    ring: Arc<Mutex<Ring>>,
    origin: Instant,
}

impl FlightHandle {
    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().map(|r| r.records.len()).unwrap_or(0)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Notes a degradation for future dumps (the last
    /// few are carried in every [`BlackboxDump`]).
    pub fn note_degradation(&self, note: impl Into<String>) {
        if let Ok(mut ring) = self.ring.lock() {
            if ring.degradations.len() == DEGRADATION_RING {
                ring.degradations.pop_front();
            }
            let note = note.into();
            ring.degradations.push_back(note);
        }
    }

    /// Freezes the ring into a dump. `reason` names the trigger
    /// (`panic`, `deadline`, `fault`, `signal`, `quarantine`,
    /// `debug`); `rid` is the request being dumped about, when there
    /// is one. Active spans are the dumping thread's span stack — for
    /// a panic dump taken on the worker that means the spans open at
    /// the moment of failure.
    pub fn snapshot(&self, reason: &str, rid: Option<&str>) -> BlackboxDump {
        let (records, seq, degradations) = match self.ring.lock() {
            Ok(ring) => (
                ring.records.iter().cloned().collect::<Vec<_>>(),
                ring.seq,
                ring.degradations.iter().cloned().collect::<Vec<_>>(),
            ),
            Err(_) => (Vec::new(), 0, Vec::new()),
        };
        let dropped = seq - records.len() as u64;
        BlackboxDump {
            reason: reason.to_owned(),
            rid: rid.map(str::to_owned),
            uptime_us: self.origin.elapsed().as_secs_f64() * 1e6,
            dropped,
            active_spans: tracing::current_spans()
                .into_iter()
                .map(str::to_owned)
                .collect(),
            degradations,
            records,
        }
    }
}

/// Records span closes and events into a bounded ring. Install alone
/// or as a [`crate::FanoutSubscriber`] child; the returned
/// [`FlightHandle`] freezes dumps afterwards.
pub struct FlightRecorder {
    max: Level,
    ring: Arc<Mutex<Ring>>,
    origin: Instant,
}

impl FlightRecorder {
    /// Default ring capacity: enough for the last few requests' phase
    /// spans and degradation events at a few hundred bytes each.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A recorder retaining the last `capacity` records at `max`
    /// verbosity and everything less verbose.
    pub fn new(capacity: usize, max: Level) -> (FlightRecorder, FlightHandle) {
        let ring = Arc::new(Mutex::new(Ring {
            records: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            seq: 0,
            degradations: VecDeque::new(),
        }));
        let origin = Instant::now();
        (
            FlightRecorder {
                max,
                ring: Arc::clone(&ring),
                origin,
            },
            FlightHandle { ring, origin },
        )
    }

    fn push(&self, kind: &'static str, name: &str, level: Level, elapsed_ns: Option<u64>, fields: &[tracing::Field]) {
        let record = FlightRecord {
            seq: 0, // assigned under the lock
            ts_us: self.origin.elapsed().as_secs_f64() * 1e6,
            tid: tracing::thread_ordinal(),
            level,
            kind,
            name: name.to_owned(),
            elapsed_ns,
            fields: fields_json(fields),
        };
        if let Ok(mut ring) = self.ring.lock() {
            ring.push(record);
        }
    }
}

impl Subscriber for FlightRecorder {
    fn max_verbosity(&self) -> Level {
        self.max
    }

    fn on_event(&self, event: &Event<'_>) {
        self.push("event", event.message, event.level, None, event.fields);
    }

    fn on_span_close(&self, span: &SpanRecord<'_>) {
        let elapsed = span
            .elapsed
            .map(|e| e.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.push("span", span.name, span.level, elapsed, span.fields);
    }
}

/// A frozen flight ring: what `blackbox.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackboxDump {
    /// What triggered the dump: `panic`, `deadline`, `fault`,
    /// `signal`, `quarantine`, or `debug`.
    pub reason: String,
    /// The request being dumped about, when there is one.
    pub rid: Option<String>,
    /// Microseconds the recorder had been alive at dump time.
    pub uptime_us: f64,
    /// Records the ring had already forgotten.
    pub dropped: u64,
    /// Span stack of the dumping thread, outermost first.
    pub active_spans: Vec<String>,
    /// The most recent degradation notes, oldest first.
    pub degradations: Vec<String>,
    /// Retained records, oldest first.
    pub records: Vec<FlightRecord>,
}

impl BlackboxDump {
    /// The dump as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", BLACKBOX_SCHEMA_VERSION)
            .with("reason", self.reason.as_str())
            .with("rid", self.rid.as_deref().map(Json::from))
            .with("uptime_us", self.uptime_us)
            .with("dropped", self.dropped)
            .with(
                "active_spans",
                Json::Arr(self.active_spans.iter().map(|s| Json::from(s.as_str())).collect()),
            )
            .with(
                "degradations",
                Json::Arr(self.degradations.iter().map(|s| Json::from(s.as_str())).collect()),
            )
            .with(
                "records",
                Json::Arr(self.records.iter().map(FlightRecord::to_json).collect()),
            )
    }

    /// The pretty-printed dump document (what `blackbox.json` holds).
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reads a dump back from its [`BlackboxDump::to_json`] shape.
    ///
    /// # Errors
    ///
    /// A message naming the problem when the document is not an
    /// object or carries an unsupported `schema_version`.
    pub fn from_json(json: &Json) -> Result<BlackboxDump, String> {
        if json.as_obj().is_none() {
            return Err("blackbox dump is not a JSON object".to_owned());
        }
        expect_schema_version(json, BLACKBOX_SCHEMA_VERSION, BLACKBOX_SCHEMA_VERSION)?;
        let strings = |name: &str| -> Vec<String> {
            json.get(name)
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_str)
                        .map(str::to_owned)
                        .collect()
                })
                .unwrap_or_default()
        };
        Ok(BlackboxDump {
            reason: json
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            rid: json.get("rid").and_then(Json::as_str).map(str::to_owned),
            uptime_us: json.get("uptime_us").and_then(Json::as_f64).unwrap_or(0.0),
            dropped: json.get("dropped").and_then(Json::as_u64).unwrap_or(0),
            active_spans: strings("active_spans"),
            degradations: strings("degradations"),
            records: json
                .get("records")
                .and_then(Json::as_arr)
                .map(|a| a.iter().map(FlightRecord::from_json).collect())
                .unwrap_or_default(),
        })
    }

    /// Renders the dump as a human-readable timeline (what `netart
    /// blackbox <dump>` prints): a header naming trigger and request,
    /// then one aligned line per record, oldest first.
    pub fn render_timeline(&self) -> String {
        let mut out = format!(
            "blackbox: reason={} rid={} records={} dropped={} uptime={:.3}s\n",
            self.reason,
            self.rid.as_deref().unwrap_or("-"),
            self.records.len(),
            self.dropped,
            self.uptime_us / 1e6,
        );
        if !self.active_spans.is_empty() {
            out.push_str(&format!("active spans: {}\n", self.active_spans.join(" > ")));
        }
        if !self.degradations.is_empty() {
            out.push_str(&format!(
                "recent degradations: {}\n",
                self.degradations.join(", ")
            ));
        }
        out.push_str("      seq    ts(ms)  tid level  record\n");
        for r in &self.records {
            let mut line = format!(
                "{:>9} {:>9.3} {:>4} {:>5}  ",
                r.seq,
                r.ts_us / 1e3,
                format!("t{}", r.tid),
                r.level.as_str(),
            );
            line.push_str(&r.name);
            if let Some(elapsed) = r.elapsed_ns {
                line.push_str(&format!(" ({:.3} ms)", elapsed as f64 / 1e6));
            }
            if let Some(members) = r.fields.as_obj() {
                for (key, value) in members {
                    line.push_str(&format!(" {key}={}", value.render()));
                }
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tracing::{Field, Value};

    fn event(message: &'static str) -> Event<'static> {
        Event {
            level: Level::WARN,
            message,
            fields: &[],
            spans: &[],
        }
    }

    #[test]
    fn ring_retains_only_the_last_capacity_records() {
        let (recorder, handle) = FlightRecorder::new(3, Level::TRACE);
        for message in ["a", "b", "c", "d", "e"] {
            recorder.on_event(&event(message));
        }
        let dump = handle.snapshot("debug", None);
        assert_eq!(dump.records.len(), 3);
        assert_eq!(dump.dropped, 2);
        let names: Vec<&str> = dump.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["c", "d", "e"]);
        // Sequence numbers survive the wrap, so the timeline shows
        // where the retained window starts.
        assert_eq!(dump.records[0].seq, 2);
    }

    #[test]
    fn span_closes_carry_elapsed_and_fields() {
        let (recorder, handle) = FlightRecorder::new(8, Level::TRACE);
        recorder.on_span_close(&SpanRecord {
            name: "netart.route",
            level: Level::INFO,
            fields: &[Field {
                name: "nets",
                value: Value::Uint(6),
            }],
            elapsed: Some(Duration::from_micros(1500)),
        });
        let dump = handle.snapshot("debug", None);
        assert_eq!(dump.records[0].kind, "span");
        assert_eq!(dump.records[0].elapsed_ns, Some(1_500_000));
        assert_eq!(dump.records[0].fields.get("nets"), Some(&Json::Uint(6)));
    }

    #[test]
    fn dump_round_trips_through_json() {
        let (recorder, handle) = FlightRecorder::new(8, Level::TRACE);
        recorder.on_event(&event("deadline tripped"));
        handle.note_degradation("deadline_cancelled");
        let dump = handle.snapshot("deadline", Some("r000042"));
        let text = dump.to_json_string();
        let parsed = Json::parse(&text).expect("dump renders valid JSON");
        assert_eq!(
            parsed.get("schema_version"),
            Some(&Json::Uint(u64::from(BLACKBOX_SCHEMA_VERSION)))
        );
        let back = BlackboxDump::from_json(&parsed).expect("dump reads back");
        assert_eq!(back, dump);
        assert_eq!(back.rid.as_deref(), Some("r000042"));
        assert_eq!(back.degradations, ["deadline_cancelled"]);
    }

    #[test]
    fn unsupported_dump_version_is_named() {
        let bad = Json::obj().with("schema_version", 99u64);
        let err = BlackboxDump::from_json(&bad).unwrap_err();
        assert!(err.contains("unsupported schema_version 99"), "{err}");
    }

    #[test]
    fn timeline_renders_header_and_records() {
        let (recorder, handle) = FlightRecorder::new(8, Level::TRACE);
        recorder.on_event(&Event {
            level: Level::ERROR,
            message: "routing panicked",
            fields: &[Field {
                name: "detail",
                value: Value::Str("index out of bounds".into()),
            }],
            spans: &[],
        });
        let mut dump = handle.snapshot("panic", Some("r000007"));
        dump.degradations = vec!["net_salvaged".to_owned()];
        let text = dump.render_timeline();
        assert!(text.contains("reason=panic"), "{text}");
        assert!(text.contains("rid=r000007"), "{text}");
        assert!(text.contains("routing panicked"), "{text}");
        assert!(text.contains("detail=\"index out of bounds\""), "{text}");
        assert!(text.contains("recent degradations: net_salvaged"), "{text}");
    }

    #[test]
    fn degradation_notes_are_bounded() {
        let (_recorder, handle) = FlightRecorder::new(2, Level::TRACE);
        for i in 0..40 {
            handle.note_degradation(format!("deg{i}"));
        }
        let dump = handle.snapshot("debug", None);
        assert_eq!(dump.degradations.len(), DEGRADATION_RING);
        assert_eq!(dump.degradations.last().map(String::as_str), Some("deg39"));
    }
}
