//! Tracing subscribers: human-readable text lines, JSON lines, and a
//! fan-out that feeds several subscribers at once.
//!
//! Library crates never write to stderr themselves — they emit spans
//! and events, and one of these subscribers (installed by the CLI from
//! `--trace-level` / `--log-json`) decides how the stream looks.
//! Stdout is never touched, so piping a tool's output stays clean.
//! When a run wants both a log stream and a trace file, the CLI wraps
//! both subscribers in a [`FanoutSubscriber`] — the global slot only
//! holds one.

use std::io::Write;
use std::sync::Mutex;

use tracing::{Event, Level, SpanRecord, Subscriber, Value};

use crate::json::Json;

/// Renders events (and closing spans at `DEBUG` and below) as aligned
/// text lines on stderr:
/// `[LEVEL] span.path: message key=value …`.
#[derive(Debug)]
pub struct TextSubscriber {
    max: Level,
}

impl TextSubscriber {
    /// A text subscriber showing `max` and everything less verbose.
    pub fn new(max: Level) -> TextSubscriber {
        TextSubscriber { max }
    }

    fn format_line(level: Level, path: &str, message: &str, fields: &[tracing::Field]) -> String {
        let mut line = format!("[{:>5}]", level.as_str());
        if !path.is_empty() {
            line.push(' ');
            line.push_str(path);
            line.push(':');
        }
        line.push(' ');
        line.push_str(message);
        for f in fields {
            match &f.value {
                Value::Str(s) => {
                    line.push_str(&format!(" {}=`{s}`", f.name));
                }
                v => line.push_str(&format!(" {}={v}", f.name)),
            }
        }
        line
    }
}

impl Subscriber for TextSubscriber {
    fn max_verbosity(&self) -> Level {
        self.max
    }

    fn on_event(&self, event: &Event<'_>) {
        let line = Self::format_line(
            event.level,
            &event.spans.join("."),
            event.message,
            event.fields,
        );
        let _ = writeln!(std::io::stderr(), "{line}");
    }

    fn on_span_close(&self, span: &SpanRecord<'_>) {
        // Span timings are detail, not progress: only show them when
        // the operator asked for a verbose stream.
        if self.max < Level::DEBUG {
            return;
        }
        let elapsed = span.elapsed.unwrap_or_default();
        let line = Self::format_line(
            span.level,
            &tracing::current_spans().join("."),
            &format!("{} closed ({:.3} ms)", span.name, elapsed.as_secs_f64() * 1e3),
            span.fields,
        );
        let _ = writeln!(std::io::stderr(), "{line}");
    }
}

/// Renders every event and span close as one JSON object per line,
/// for machine consumption (`--log-json`). Lines go to stderr unless
/// a sink is supplied with [`JsonLinesSubscriber::with_sink`].
pub struct JsonLinesSubscriber {
    max: Level,
    sink: Option<Mutex<Box<dyn Write + Send>>>,
}

impl JsonLinesSubscriber {
    /// A JSON-lines subscriber showing `max` and everything less
    /// verbose, writing to stderr.
    pub fn new(max: Level) -> JsonLinesSubscriber {
        JsonLinesSubscriber { max, sink: None }
    }

    /// A JSON-lines subscriber writing to `sink` instead of stderr
    /// (tests capture the stream this way).
    pub fn with_sink(max: Level, sink: Box<dyn Write + Send>) -> JsonLinesSubscriber {
        JsonLinesSubscriber {
            max,
            sink: Some(Mutex::new(sink)),
        }
    }

    fn write_line(&self, line: &str) {
        match &self.sink {
            Some(sink) => {
                if let Ok(mut sink) = sink.lock() {
                    let _ = writeln!(sink, "{line}");
                }
            }
            None => {
                let _ = writeln!(std::io::stderr(), "{line}");
            }
        }
    }

    /// The JSON-lines rendering of one event (exactly what
    /// [`Subscriber::on_event`] writes, without the newline).
    pub fn event_line(event: &Event<'_>) -> String {
        Json::obj()
            .with("type", "event")
            .with("level", event.level.as_str())
            .with(
                "spans",
                Json::Arr(event.spans.iter().map(|&s| Json::from(s)).collect()),
            )
            .with("message", event.message)
            .with("fields", fields_json(event.fields))
            .render()
    }

    /// The JSON-lines rendering of one span close (exactly what
    /// [`Subscriber::on_span_close`] writes, without the newline).
    pub fn span_line(span: &SpanRecord<'_>) -> String {
        Json::obj()
            .with("type", "span")
            .with("level", span.level.as_str())
            .with("name", span.name)
            .with(
                "elapsed_ns",
                span.elapsed.map_or(0, |e| e.as_nanos().min(u128::from(u64::MAX)) as u64),
            )
            .with("fields", fields_json(span.fields))
            .render()
    }
}

/// The JSON value of one structured field.
fn field_json(value: &Value) -> Json {
    match value {
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Uint(u) => Json::Uint(*u),
        Value::Float(x) => Json::Float(*x),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

pub(crate) fn fields_json(fields: &[tracing::Field]) -> Json {
    let mut obj = Json::obj();
    for f in fields {
        obj.set(f.name, field_json(&f.value));
    }
    obj
}

impl Subscriber for JsonLinesSubscriber {
    fn max_verbosity(&self) -> Level {
        self.max
    }

    fn on_event(&self, event: &Event<'_>) {
        self.write_line(&Self::event_line(event));
    }

    fn on_span_close(&self, span: &SpanRecord<'_>) {
        self.write_line(&Self::span_line(span));
    }
}

/// Forwards everything to several child subscribers, each behind its
/// own level gate. The global subscriber slot holds exactly one value,
/// so runs that want both a log stream and a trace recorder compose
/// them here.
pub struct FanoutSubscriber {
    children: Vec<Box<dyn Subscriber>>,
}

impl FanoutSubscriber {
    /// A fan-out over `children`.
    pub fn new(children: Vec<Box<dyn Subscriber>>) -> FanoutSubscriber {
        FanoutSubscriber { children }
    }

    /// The children that want records at `level`.
    fn wanting(&self, level: Level) -> impl Iterator<Item = &dyn Subscriber> {
        self.children
            .iter()
            .map(Box::as_ref)
            .filter(move |c| level.verbosity() <= c.max_verbosity().verbosity())
    }
}

impl Subscriber for FanoutSubscriber {
    /// The most verbose child wins; the per-child gate in dispatch
    /// keeps quieter children from seeing what they did not ask for.
    fn max_verbosity(&self) -> Level {
        self.children
            .iter()
            .map(|c| c.max_verbosity())
            .max()
            .unwrap_or(Level::ERROR)
    }

    fn on_event(&self, event: &Event<'_>) {
        for child in self.wanting(event.level) {
            child.on_event(event);
        }
    }

    fn on_span_enter(&self, span: &SpanRecord<'_>) {
        for child in self.wanting(span.level) {
            child.on_span_enter(span);
        }
    }

    fn on_span_close(&self, span: &SpanRecord<'_>) {
        for child in self.wanting(span.level) {
            child.on_span_close(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracing::Field;

    #[test]
    fn text_line_shape() {
        let line = TextSubscriber::format_line(
            Level::WARN,
            "route.net",
            "salvaged",
            &[
                Field {
                    name: "net",
                    value: Value::Str("clk".into()),
                },
                Field {
                    name: "nodes",
                    value: Value::Uint(17),
                },
            ],
        );
        assert_eq!(line, "[ WARN] route.net: salvaged net=`clk` nodes=17");
    }

    #[test]
    fn text_line_without_spans() {
        let line = TextSubscriber::format_line(Level::INFO, "", "starting", &[]);
        assert_eq!(line, "[ INFO] starting");
    }

    #[test]
    fn json_fields_preserve_kinds() {
        let j = fields_json(&[
            Field {
                name: "n",
                value: Value::Uint(3),
            },
            Field {
                name: "ok",
                value: Value::Bool(true),
            },
        ]);
        assert_eq!(j.render(), r#"{"n":3,"ok":true}"#);
    }
}
