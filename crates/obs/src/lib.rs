//! `netart-obs` — the observability layer of the `netart` pipeline.
//!
//! Three pieces, all free of global state:
//!
//! * a [`Metrics`] registry (counters + log-2 histograms) that the
//!   `Generator` owns per run and freezes into a [`MetricsSnapshot`]
//!   on the outcome — counters are deterministic for a given input,
//!   histograms absorb the wall-clock observations;
//! * the [`RunReport`] schema (versioned, golden-file pinned): network
//!   size, per-phase wall times, per-net router effort, degradation
//!   context, §4.4 quality metrics and the metrics snapshot, rendered
//!   through the hand-rolled [`json::Json`] writer;
//! * `tracing` subscribers ([`TextSubscriber`], [`JsonLinesSubscriber`],
//!   the Chrome trace-event recorder [`TraceEventSubscriber`] and the
//!   composing [`FanoutSubscriber`]) that turn the spans and events the
//!   phase crates emit into stderr streams or trace files — installed
//!   by the CLI, never by library code;
//! * the cross-run layer: [`Json::parse`] reads written reports back,
//!   and [`baseline`]'s [`ReportDiff`] compares two [`RunReport`]s so
//!   `netart report diff` and the CI perf-gate can fail on regressions;
//! * the live layer: a process-lifetime [`Telemetry`] registry
//!   (counters, gauges, rolling-window histograms) with Prometheus
//!   text exposition behind `netart serve`'s `/metrics`, and the
//!   [`ProfileReport`] heat-map schema behind `netart profile`;
//! * the post-mortem layer: the [`FlightRecorder`] ring subscriber
//!   whose [`BlackboxDump`]s freeze the last moments before a panic,
//!   deadline breach, or SIGUSR1, and the [`alloc`] profiler that
//!   attributes heap traffic to phases when the `alloc-profile`
//!   feature is on.
//!
//! The span/event vocabulary itself lives in the vendored `tracing`
//! stand-in; this crate is about *collecting* and *exporting*.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod alloc;
pub mod baseline;
mod batch;
mod flight;
pub mod json;
mod metrics;
mod profile;
mod report;
mod serve;
mod subscribe;
mod telemetry;
mod trace;

pub use alloc::{attach_alloc_profile, enter_phase, profiling_enabled, AllocSnapshot, PhaseAlloc};
#[cfg(feature = "alloc-profile")]
pub use alloc::PhaseTagSubscriber;
pub use baseline::{DiffConfig, DiffEntry, DiffSeverity, ReportDiff};
pub use batch::{
    BatchManifest, BatchSummary, JobRecord, JobStatus, QuarantineReport, BATCH_SCHEMA_VERSION,
};
pub use flight::{
    BlackboxDump, FlightHandle, FlightRecord, FlightRecorder, BLACKBOX_SCHEMA_VERSION,
};
pub use json::{expect_schema_version, Json, JsonParseError};
pub use metrics::{Histogram, HistogramSummary, Metrics, MetricsSnapshot};
pub use profile::{
    ProfileCell, ProfileReport, ProfileTotals, PROFILE_KIND, PROFILE_SCHEMA_VERSION,
};
pub use report::{
    DegradationReport, NetReport, NetworkReport, PhaseReport, QualityReport, RunReport,
    SCHEMA_VERSION,
};
pub use serve::{CacheOutcome, ServeReport, ServeStats, ServeStatus, SERVE_SCHEMA_VERSION};
pub use subscribe::{FanoutSubscriber, JsonLinesSubscriber, TextSubscriber};
pub use telemetry::{RollingHistogram, Telemetry, WindowSummary};
pub use trace::{TraceBuffer, TraceEvent, TraceEventSubscriber};
