//! The allocation profiler: per-phase heap attribution behind the
//! `alloc-profile` feature.
//!
//! With the feature on, a counting [`std::alloc::GlobalAlloc`]
//! wrapper around the system allocator attributes every allocation to
//! the pipeline phase that is *current* on the allocating thread. The
//! current phase is a `const`-initialized thread-local tag, set
//! either by the [`PhaseTagSubscriber`] when the existing
//! `netart.place`/`netart.route` (and pass-level) spans are entered
//! and closed, or directly by the CLI around its own parse/emit
//! sections via [`enter_phase`]. The allocator itself touches only
//! that tag and a handful of relaxed atomics — no allocation, no
//! locks — so the profiled binary stays usable for timing work too.
//!
//! Without the feature every type here is a no-op stub and the crate
//! does not declare a `#[global_allocator]` at all: release builds
//! carry zero overhead, and [`profiling_enabled`] tells callers which
//! world they are in.
//!
//! Attribution is per-thread and the counters are process-global:
//! concurrent pipelines (a busy `netart serve`) therefore blur each
//! other's deltas. The single-run CLI tools and the bench harness —
//! where the numbers feed `RunReport` schema v3 and the perf gate —
//! run one pipeline at a time, which is the deterministic case the
//! committed baselines rely on.

use crate::report::RunReport;

/// Phase names the profiler attributes to, in tag order. Index 0 is
/// the catch-all for allocations outside any recognized phase.
pub const PHASES: [&str; 6] = ["other", "parse", "doctor", "place", "route", "emit"];

/// Per-phase allocation totals attributed since a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseAlloc {
    /// Allocations attributed to the phase.
    pub count: u64,
    /// Bytes allocated while the phase was current.
    pub bytes: u64,
    /// Peak live heap bytes observed while the phase was current.
    pub peak: u64,
}

/// Maps a span name onto a phase tag, if it belongs to one.
#[cfg_attr(not(feature = "alloc-profile"), allow(dead_code))]
fn phase_of_span(name: &str) -> Option<usize> {
    match name {
        "netart.place" => Some(3),
        "netart.route" => Some(4),
        _ if name.starts_with("pablo.") => Some(3),
        _ if name.starts_with("eureka.") => Some(4),
        _ if name.starts_with("doctor") => Some(2),
        _ if name.starts_with("parse") => Some(1),
        _ if name.starts_with("emit") => Some(5),
        _ => None,
    }
}

/// Maps a report phase name onto a phase tag.
fn phase_index(name: &str) -> Option<usize> {
    PHASES.iter().position(|&p| p == name)
}

/// Fills each phase's allocation members from the profiler's totals
/// accumulated since `snapshot`. Without the `alloc-profile` feature
/// this leaves every member `None`, keeping the report shape
/// identical across builds.
pub fn attach_alloc_profile(report: &mut RunReport, snapshot: &AllocSnapshot) {
    if !profiling_enabled() {
        return;
    }
    let since = snapshot.since();
    for phase in &mut report.phases {
        if let Some(idx) = phase_index(&phase.name) {
            let totals = since[idx];
            phase.alloc_count = Some(totals.count);
            phase.alloc_bytes = Some(totals.bytes);
            phase.peak_bytes = Some(totals.peak);
        }
    }
}

#[cfg(feature = "alloc-profile")]
mod profiled {
    use super::{phase_of_span, PhaseAlloc, PHASES};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicU64, Ordering};

    use tracing::{Event, Level, SpanRecord, Subscriber};

    const N: usize = PHASES.len();

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static ALLOC_COUNT: [AtomicU64; N] = [ZERO; N];
    static ALLOC_BYTES: [AtomicU64; N] = [ZERO; N];
    static PEAK: [AtomicU64; N] = [ZERO; N];
    static LIVE: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        /// The allocating thread's current phase tag. `const`
        /// initialization matters: a lazily-initialized thread-local
        /// would allocate inside the allocator.
        static PHASE: Cell<usize> = const { Cell::new(0) };
        /// Saved tags of enclosing recognized spans, so nested phase
        /// spans restore correctly on close.
        static SAVED: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    #[inline]
    fn current_phase() -> usize {
        // `try_with`: the allocator runs during thread teardown too,
        // after the thread-local is gone.
        PHASE.try_with(Cell::get).unwrap_or(0)
    }

    #[inline]
    fn record_alloc(size: usize) {
        let phase = current_phase();
        ALLOC_COUNT[phase].fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES[phase].fetch_add(size as u64, Ordering::Relaxed);
        let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK[phase].fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn record_dealloc(size: usize) {
        let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
            Some(live.saturating_sub(size as u64))
        });
    }

    /// The counting wrapper around the system allocator.
    pub struct CountingAlloc;

    // SAFETY: every method forwards verbatim to `System` and only adds
    // relaxed atomic bookkeeping around the forwarded call.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc(layout);
            if !ptr.is_null() {
                record_alloc(layout.size());
            }
            ptr
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc_zeroed(layout);
            if !ptr.is_null() {
                record_alloc(layout.size());
            }
            ptr
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            record_dealloc(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_ptr = System.realloc(ptr, layout, new_size);
            if !new_ptr.is_null() {
                record_dealloc(layout.size());
                record_alloc(new_size);
            }
            new_ptr
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Whether this build carries the counting allocator.
    pub fn profiling_enabled() -> bool {
        true
    }

    /// Sets the calling thread's phase tag until the guard drops; for
    /// code sections that are a phase without being a span (the CLI's
    /// parse/emit work).
    pub fn enter_phase(name: &str) -> PhaseGuard {
        let previous = current_phase();
        let tag = super::phase_index(name).unwrap_or(0);
        let _ = PHASE.try_with(|c| c.set(tag));
        PhaseGuard { previous }
    }

    /// Restores the phase tag that was current at [`enter_phase`].
    pub struct PhaseGuard {
        previous: usize,
    }

    impl Drop for PhaseGuard {
        fn drop(&mut self) {
            let _ = PHASE.try_with(|c| c.set(self.previous));
        }
    }

    /// A point-in-time reading of the per-phase totals.
    ///
    /// Capturing also rebases every phase's peak tracker to the
    /// current live-byte count, so the peaks reported by
    /// [`AllocSnapshot::since`] are peaks *within* the window, not
    /// since process start.
    #[derive(Debug, Clone, Copy)]
    pub struct AllocSnapshot {
        counts: [u64; N],
        bytes: [u64; N],
    }

    impl AllocSnapshot {
        /// Captures the totals now and rebases the peak trackers.
        pub fn capture() -> AllocSnapshot {
            let mut counts = [0; N];
            let mut bytes = [0; N];
            let live = LIVE.load(Ordering::Relaxed);
            for i in 0..N {
                counts[i] = ALLOC_COUNT[i].load(Ordering::Relaxed);
                bytes[i] = ALLOC_BYTES[i].load(Ordering::Relaxed);
                PEAK[i].store(live, Ordering::Relaxed);
            }
            AllocSnapshot { counts, bytes }
        }

        /// Per-phase totals accumulated since this snapshot, indexed
        /// like [`PHASES`].
        pub fn since(&self) -> [PhaseAlloc; N] {
            let mut out = [PhaseAlloc::default(); N];
            for (i, slot) in out.iter_mut().enumerate() {
                slot.count = ALLOC_COUNT[i]
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.counts[i]);
                slot.bytes = ALLOC_BYTES[i]
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.bytes[i]);
                slot.peak = PEAK[i].load(Ordering::Relaxed);
            }
            out
        }
    }

    /// Keeps the thread-local phase tag in step with the pipeline's
    /// existing spans. Install as a fan-out child; it records nothing
    /// itself.
    pub struct PhaseTagSubscriber;

    impl Subscriber for PhaseTagSubscriber {
        fn max_verbosity(&self) -> Level {
            // INFO reaches the phase spans without forcing the per-net
            // DEBUG spans through dispatch.
            Level::INFO
        }

        fn on_event(&self, _event: &Event<'_>) {}

        fn on_span_enter(&self, span: &SpanRecord<'_>) {
            if let Some(tag) = phase_of_span(span.name) {
                let _ = SAVED.try_with(|saved| {
                    if let Ok(mut saved) = saved.try_borrow_mut() {
                        saved.push(current_phase());
                    }
                });
                let _ = PHASE.try_with(|c| c.set(tag));
            }
        }

        fn on_span_close(&self, span: &SpanRecord<'_>) {
            if phase_of_span(span.name).is_some() {
                let previous = SAVED
                    .try_with(|saved| {
                        saved
                            .try_borrow_mut()
                            .ok()
                            .and_then(|mut saved| saved.pop())
                    })
                    .ok()
                    .flatten()
                    .unwrap_or(0);
                let _ = PHASE.try_with(|c| c.set(previous));
            }
        }
    }
}

#[cfg(feature = "alloc-profile")]
pub use profiled::{enter_phase, profiling_enabled, AllocSnapshot, PhaseGuard, PhaseTagSubscriber};

#[cfg(not(feature = "alloc-profile"))]
mod stubbed {
    use super::{PhaseAlloc, PHASES};

    /// Whether this build carries the counting allocator.
    pub fn profiling_enabled() -> bool {
        false
    }

    /// No-op phase guard (the `alloc-profile` feature is off).
    pub struct PhaseGuard;

    // The explicit (empty) Drop keeps `drop(guard)` meaningful at the
    // call sites whichever way the feature flag points.
    impl Drop for PhaseGuard {
        fn drop(&mut self) {}
    }

    /// No-op phase tagging (the `alloc-profile` feature is off).
    pub fn enter_phase(_name: &str) -> PhaseGuard {
        PhaseGuard
    }

    /// No-op snapshot (the `alloc-profile` feature is off).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AllocSnapshot;

    impl AllocSnapshot {
        /// Captures nothing; [`AllocSnapshot::since`] reports zeros.
        pub fn capture() -> AllocSnapshot {
            AllocSnapshot
        }

        /// All-zero totals.
        pub fn since(&self) -> [PhaseAlloc; PHASES.len()] {
            [PhaseAlloc::default(); PHASES.len()]
        }
    }
}

#[cfg(not(feature = "alloc-profile"))]
pub use stubbed::{enter_phase, profiling_enabled, AllocSnapshot, PhaseGuard};

#[cfg(all(test, feature = "alloc-profile"))]
mod tests {
    use super::*;
    use std::time::Duration;
    use tracing::{Level, SpanRecord, Subscriber};

    fn route_span() -> SpanRecord<'static> {
        SpanRecord {
            name: "netart.route",
            level: Level::INFO,
            fields: &[],
            elapsed: Some(Duration::ZERO),
        }
    }

    #[test]
    fn allocations_inside_a_phase_are_attributed_to_it() {
        let tags = PhaseTagSubscriber;
        let snapshot = AllocSnapshot::capture();
        tags.on_span_enter(&route_span());
        let block = vec![0u8; 1 << 20];
        tags.on_span_close(&route_span());
        let since = snapshot.since();
        let route = since[4];
        assert!(route.count >= 1, "route phase saw no allocations");
        assert!(route.bytes >= 1 << 20, "route bytes: {}", route.bytes);
        assert!(route.peak >= 1 << 20, "route peak: {}", route.peak);
        drop(block);
    }

    #[test]
    fn nested_phase_spans_restore_the_outer_tag() {
        let tags = PhaseTagSubscriber;
        tags.on_span_enter(&route_span());
        let inner = SpanRecord {
            name: "eureka.net",
            level: Level::DEBUG,
            fields: &[],
            elapsed: Some(Duration::ZERO),
        };
        tags.on_span_enter(&inner);
        tags.on_span_close(&inner);
        // Still attributing to route after the nested span closed.
        let snapshot = AllocSnapshot::capture();
        let block = vec![0u8; 4096];
        let since = snapshot.since();
        assert!(since[4].bytes >= 4096, "route bytes: {}", since[4].bytes);
        drop(block);
        tags.on_span_close(&route_span());
    }

    #[test]
    fn attach_fills_matching_phases_only() {
        use crate::report::RunReport;
        let mut report = RunReport::default();
        report.push_phase("route", 1);
        report.push_phase("weird", 1);
        let snapshot = AllocSnapshot::capture();
        attach_alloc_profile(&mut report, &snapshot);
        assert!(report.phases[0].alloc_count.is_some());
        assert!(report.phases[1].alloc_count.is_none(), "unknown phase stays null");
    }
}
