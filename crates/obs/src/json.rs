//! A minimal JSON value, writer and reader.
//!
//! The build environment has no `serde`, so reports are assembled as
//! explicit [`Json`] trees and rendered by hand. Object members keep
//! insertion order, which is what makes the `RunReport` golden file
//! stable across runs and platforms. [`Json::parse`] reads documents
//! back — the baseline differ and the trace-file tests consume the
//! same files the writers produce.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    Uint(u64),
    /// A finite float (NaN/infinity render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a member to an object; panics on non-objects (a
    /// programming error in report assembly, not a data condition).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_owned(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Member lookup on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer ([`Json::Int`]s that fit
    /// convert), `None` elsewhere.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer (unsigned values that fit
    /// convert), `None` elsewhere.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Uint(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert), `None` elsewhere.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Uint(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, `None` elsewhere.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, `None` elsewhere.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, `None` on non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members in document order, `None` on non-objects.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parses a JSON document into a [`Json`] tree. Numbers without a
    /// fraction or exponent become [`Json::Uint`]/[`Json::Int`], so a
    /// written report reparses into the kinds it was built from.
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// The pretty rendering: two-space indent, one member per line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) if x.is_finite() => {
                // `{:?}` keeps a decimal point or exponent, so the
                // value reparses as a float rather than an integer.
                let _ = write!(out, "{x:?}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_items(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_items(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

/// Shared array/object layout: compact when `indent` is `None`, one
/// item per line otherwise.
fn write_items(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`]: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the defect.
    pub message: String,
    /// Byte offset into the document where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Recursive-descent reader over the document bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let joined =
                                    0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(joined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 left pos on the char after the four
                            // digits; skip the +1 below.
                            continue;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the document came from a
                    // &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Four hex digits starting at `pos`; leaves `pos` after them.
    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            return text
                .parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"));
        }
        if let Some(negative) = text.strip_prefix('-') {
            return negative
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Json::Int)
                .ok_or_else(|| self.err("integer out of range"));
        }
        text.parse::<u64>()
            .map(Json::Uint)
            .map_err(|_| self.err("integer out of range"))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Uint(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Uint(u64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Uint(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Reads and validates the `schema_version` member every versioned
/// document in this crate starts with. Accepts versions in
/// `min..=max`; the common single-version case passes `min == max`.
///
/// # Errors
///
/// `missing schema_version` when the member is absent or not a
/// number, and `unsupported schema_version <v> (this build reads …)`
/// when it is out of range — the exact wording the CLI shows when
/// pointed at the wrong file.
pub fn expect_schema_version(json: &Json, min: u32, max: u32) -> Result<u64, String> {
    let version = json
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing schema_version".to_owned())?;
    if !(u64::from(min)..=u64::from(max)).contains(&version) {
        let reads = if min == max {
            format!("{max}")
        } else {
            format!("{min}..={max}")
        };
        return Err(format!(
            "unsupported schema_version {version} (this build reads {reads})"
        ));
    }
    Ok(version)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj()
            .with("a", 1u64)
            .with("b", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .with("c", "x\"y");
        assert_eq!(j.render(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_is_line_per_member() {
        let j = Json::obj().with("n", 2u64).with("arr", Json::Arr(vec![Json::Uint(1)]));
        assert_eq!(j.render_pretty(), "{\n  \"n\": 2,\n  \"arr\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn escaping_and_floats() {
        let escaped = Json::Str("a\nb\t\u{1}".into()).render();
        assert_eq!(escaped, "\"a\\nb\\t\\u0001\"");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(1.0).render(), "1.0", "floats keep a decimal point");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Int(-3).render(), "-3");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().render_pretty(), "{}\n");
        assert_eq!(Json::Arr(vec![]).render(), "[]");
    }

    #[test]
    fn get_looks_up_members() {
        let j = Json::obj().with("k", 7u64);
        assert_eq!(j.get("k"), Some(&Json::Uint(7)));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::Uint(3));
    }

    #[test]
    fn schema_version_in_range_is_returned() {
        let j = Json::obj().with("schema_version", 2u64);
        assert_eq!(expect_schema_version(&j, 1, 3), Ok(2));
        assert_eq!(expect_schema_version(&j, 2, 2), Ok(2));
    }

    #[test]
    fn schema_version_missing_or_wrong_kind_is_named() {
        assert_eq!(
            expect_schema_version(&Json::obj(), 1, 1),
            Err("missing schema_version".to_owned())
        );
        let j = Json::obj().with("schema_version", "two");
        assert_eq!(
            expect_schema_version(&j, 1, 1),
            Err("missing schema_version".to_owned())
        );
    }

    #[test]
    fn unsupported_schema_version_error_message() {
        let j = Json::obj().with("schema_version", 99u64);
        assert_eq!(
            expect_schema_version(&j, 1, 1),
            Err("unsupported schema_version 99 (this build reads 1)".to_owned())
        );
        assert_eq!(
            expect_schema_version(&j, 1, 3),
            Err("unsupported schema_version 99 (this build reads 1..=3)".to_owned())
        );
    }
}
