//! A minimal JSON value and writer.
//!
//! The build environment has no `serde`, so reports are assembled as
//! explicit [`Json`] trees and rendered by hand. Object members keep
//! insertion order, which is what makes the `RunReport` golden file
//! stable across runs and platforms.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    Uint(u64),
    /// A finite float (NaN/infinity render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a member to an object; panics on non-objects (a
    /// programming error in report assembly, not a data condition).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_owned(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Member lookup on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// The pretty rendering: two-space indent, one member per line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) if x.is_finite() => {
                // `{:?}` keeps a decimal point or exponent, so the
                // value reparses as a float rather than an integer.
                let _ = write!(out, "{x:?}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_items(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_items(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

/// Shared array/object layout: compact when `indent` is `None`, one
/// item per line otherwise.
fn write_items(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Uint(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Uint(u64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Uint(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj()
            .with("a", 1u64)
            .with("b", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .with("c", "x\"y");
        assert_eq!(j.render(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_is_line_per_member() {
        let j = Json::obj().with("n", 2u64).with("arr", Json::Arr(vec![Json::Uint(1)]));
        assert_eq!(j.render_pretty(), "{\n  \"n\": 2,\n  \"arr\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn escaping_and_floats() {
        let escaped = Json::Str("a\nb\t\u{1}".into()).render();
        assert_eq!(escaped, "\"a\\nb\\t\\u0001\"");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(1.0).render(), "1.0", "floats keep a decimal point");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Int(-3).render(), "-3");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().render_pretty(), "{}\n");
        assert_eq!(Json::Arr(vec![]).render(), "[]");
    }

    #[test]
    fn get_looks_up_members() {
        let j = Json::obj().with("k", 7u64);
        assert_eq!(j.get("k"), Some(&Json::Uint(7)));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::Uint(3));
    }
}
