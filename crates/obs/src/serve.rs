//! The machine-readable serve response schema.
//!
//! `netart serve` answers every diagram request with a
//! [`ServeReport`]: the artifact id and bodies, how the cache treated
//! the request, and the same status taxonomy the CLI's exit codes
//! carry (`clean`/`degraded`/`failed` mirroring exit `0`/`2`/`1`),
//! with the pipeline's full [`RunReport`] inline. Like the run report
//! and batch manifest, the shape is versioned and additions are
//! allowed within a version; renames and removals require a bump.
//!
//! [`ServeStats`] is the `/stats` endpoint's body: the service's
//! lifetime counters (sheds, cache hits, coalesced requests, panics
//! contained) plus point-in-time gauges. Counters are cumulative and
//! monotone; gauges are racy snapshots.

use crate::json::Json;
use crate::report::RunReport;

/// Version of the serve response shape. Bump when members are
/// renamed, removed, or change meaning.
pub const SERVE_SCHEMA_VERSION: u32 = 1;

/// The response-level status taxonomy, mirroring the CLI exit codes:
/// clean run → `0`, degraded-but-emitted → `2`, failed → `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeStatus {
    /// The pipeline ran clean; artifacts are present.
    Clean,
    /// The pipeline emitted artifacts but needed fallbacks (salvage,
    /// doctor repairs, a deadline cancellation mid-route, …).
    Degraded,
    /// No artifacts: the input was rejected or the pipeline failed.
    Failed,
}

impl ServeStatus {
    /// The status as its response string.
    pub fn as_str(&self) -> &'static str {
        match self {
            ServeStatus::Clean => "clean",
            ServeStatus::Degraded => "degraded",
            ServeStatus::Failed => "failed",
        }
    }

    /// Parses a response status string.
    pub fn parse(s: &str) -> Option<ServeStatus> {
        match s {
            "clean" => Some(ServeStatus::Clean),
            "degraded" => Some(ServeStatus::Degraded),
            "failed" => Some(ServeStatus::Failed),
            _ => None,
        }
    }
}

/// How the artifact cache treated one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache without recomputing.
    Hit,
    /// Computed fresh (and, when cacheable, inserted).
    Miss,
    /// Coalesced onto a concurrent identical request's computation
    /// (single-flight follower).
    Coalesced,
}

impl CacheOutcome {
    /// The outcome as its response string.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }

    /// Parses a response cache-outcome string.
    pub fn parse(s: &str) -> Option<CacheOutcome> {
        match s {
            "hit" => Some(CacheOutcome::Hit),
            "miss" => Some(CacheOutcome::Miss),
            "coalesced" => Some(CacheOutcome::Coalesced),
            _ => None,
        }
    }
}

/// One diagram request's response body.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Response status (`clean`/`degraded`/`failed`).
    pub status: ServeStatus,
    /// How the cache treated the request.
    pub cache: CacheOutcome,
    /// The content address of the artifact: a stable hash of the
    /// doctored-normalized input plus the rendering options. Two
    /// requests with the same artifact id receive byte-identical
    /// bodies. Empty on failed requests.
    pub artifact: String,
    /// The ESCHER diagram text. Empty on failed requests.
    pub escher: String,
    /// The SVG rendering. Empty on failed requests.
    pub svg: String,
    /// The failure message, for failed requests.
    pub error: Option<String>,
    /// The pipeline's run report, when one was produced.
    pub report: Option<RunReport>,
}

impl ServeReport {
    /// A failed response carrying only an error message.
    pub fn failure(message: impl Into<String>) -> Self {
        ServeReport {
            status: ServeStatus::Failed,
            cache: CacheOutcome::Miss,
            artifact: String::new(),
            escher: String::new(),
            svg: String::new(),
            error: Some(message.into()),
            report: None,
        }
    }

    /// The response as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", SERVE_SCHEMA_VERSION)
            .with("status", self.status.as_str())
            .with("cache", self.cache.as_str())
            .with("artifact", self.artifact.as_str())
            .with("escher", self.escher.as_str())
            .with("svg", self.svg.as_str())
            .with("error", self.error.as_deref().map(Json::from))
            .with("report", self.report.as_ref().map(RunReport::to_json))
    }

    /// The rendered JSON document (one response body).
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reads a response back from its [`ServeReport::to_json`] shape.
    pub fn from_json(json: &Json) -> Result<ServeReport, String> {
        if json.as_obj().is_none() {
            return Err("serve report is not a JSON object".to_owned());
        }
        crate::json::expect_schema_version(json, SERVE_SCHEMA_VERSION, SERVE_SCHEMA_VERSION)?;
        let status_str = json.get("status").and_then(Json::as_str).unwrap_or_default();
        let status = ServeStatus::parse(status_str)
            .ok_or_else(|| format!("unknown serve status {status_str:?}"))?;
        let cache_str = json.get("cache").and_then(Json::as_str).unwrap_or_default();
        let cache = CacheOutcome::parse(cache_str)
            .ok_or_else(|| format!("unknown cache outcome {cache_str:?}"))?;
        let report = match json.get("report") {
            Some(Json::Null) | None => None,
            Some(r) => Some(RunReport::from_json(r)?),
        };
        Ok(ServeReport {
            status,
            cache,
            artifact: json
                .get("artifact")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            escher: json
                .get("escher")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            svg: json
                .get("svg")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            error: json.get("error").and_then(Json::as_str).map(str::to_owned),
            report,
        })
    }
}

/// The `/stats` endpoint's body: lifetime counters and current
/// gauges of one serve process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests that reached admission (every `POST /v1/diagram`).
    pub requests: u64,
    /// Responses per status.
    pub clean: u64,
    /// See [`ServeStatus::Degraded`].
    pub degraded: u64,
    /// See [`ServeStatus::Failed`].
    pub failed: u64,
    /// Requests shed with `429` because the queue was full.
    pub shed: u64,
    /// Requests refused with `413` for an oversized body.
    pub too_large: u64,
    /// Requests refused with `503` during drain.
    pub drain_rejects: u64,
    /// Requests whose deadline cancelled the pipeline mid-run.
    pub deadline_cancelled: u64,
    /// Requests whose handler panicked (contained, answered `500`).
    pub panics: u64,
    /// Artifact-cache hits.
    pub cache_hits: u64,
    /// Artifact-cache misses (fresh computes).
    pub cache_misses: u64,
    /// Requests coalesced onto a concurrent identical computation.
    pub coalesced: u64,
    /// Artifact-cache bytes resident (gauge).
    pub cache_bytes: u64,
    /// Artifact-cache entries resident (gauge).
    pub cache_entries: u64,
    /// Requests executing right now (gauge).
    pub in_flight: u64,
    /// Requests admitted but not yet started (gauge).
    pub queued: u64,
    /// Sharded serving only: shards currently live, per the latest
    /// supervisor broadcast (gauge; 0 when not sharded).
    pub shard_live: u64,
    /// Sharded serving only: cumulative worker respawns across the
    /// fleet (0 when not sharded).
    pub shard_restarts: u64,
    /// Requests observed inside the rolling latency window.
    pub win_latency_count: u64,
    /// Windowed median request latency (bucket upper bound, ns).
    pub win_latency_p50_ns: u64,
    /// Windowed 90th-percentile request latency (ns).
    pub win_latency_p90_ns: u64,
    /// Windowed 99th-percentile request latency (ns).
    pub win_latency_p99_ns: u64,
}

impl ServeStats {
    /// The stats as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", SERVE_SCHEMA_VERSION)
            .with("requests", self.requests)
            .with("clean", self.clean)
            .with("degraded", self.degraded)
            .with("failed", self.failed)
            .with("shed", self.shed)
            .with("too_large", self.too_large)
            .with("drain_rejects", self.drain_rejects)
            .with("deadline_cancelled", self.deadline_cancelled)
            .with("panics", self.panics)
            .with("cache_hits", self.cache_hits)
            .with("cache_misses", self.cache_misses)
            .with("coalesced", self.coalesced)
            .with("cache_bytes", self.cache_bytes)
            .with("cache_entries", self.cache_entries)
            .with("in_flight", self.in_flight)
            .with("queued", self.queued)
            .with("shard_live", self.shard_live)
            .with("shard_restarts", self.shard_restarts)
            .with("win_latency_count", self.win_latency_count)
            .with("win_latency_p50_ns", self.win_latency_p50_ns)
            .with("win_latency_p90_ns", self.win_latency_p90_ns)
            .with("win_latency_p99_ns", self.win_latency_p99_ns)
    }

    /// The rendered JSON document (the `/stats` body).
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reads stats back from their [`ServeStats::to_json`] shape.
    /// The schema version must be present and supported; within a
    /// version, missing counters read as zero so additions stay
    /// compatible.
    pub fn from_json(json: &Json) -> Result<ServeStats, String> {
        if json.as_obj().is_none() {
            return Err("serve stats is not a JSON object".to_owned());
        }
        crate::json::expect_schema_version(json, SERVE_SCHEMA_VERSION, SERVE_SCHEMA_VERSION)?;
        let field = |name: &str| json.get(name).and_then(Json::as_u64).unwrap_or(0);
        Ok(ServeStats {
            requests: field("requests"),
            clean: field("clean"),
            degraded: field("degraded"),
            failed: field("failed"),
            shed: field("shed"),
            too_large: field("too_large"),
            drain_rejects: field("drain_rejects"),
            deadline_cancelled: field("deadline_cancelled"),
            panics: field("panics"),
            cache_hits: field("cache_hits"),
            cache_misses: field("cache_misses"),
            coalesced: field("coalesced"),
            cache_bytes: field("cache_bytes"),
            cache_entries: field("cache_entries"),
            in_flight: field("in_flight"),
            queued: field("queued"),
            shard_live: field("shard_live"),
            shard_restarts: field("shard_restarts"),
            win_latency_count: field("win_latency_count"),
            win_latency_p50_ns: field("win_latency_p50_ns"),
            win_latency_p90_ns: field("win_latency_p90_ns"),
            win_latency_p99_ns: field("win_latency_p99_ns"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            status: ServeStatus::Degraded,
            cache: CacheOutcome::Miss,
            artifact: "a1b2c3d4e5f60718".to_owned(),
            escher: "module top 10 10\n".to_owned(),
            svg: "<svg/>".to_owned(),
            error: None,
            report: Some(RunReport {
                tool: "netart".to_owned(),
                is_clean: false,
                ..RunReport::default()
            }),
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let original = sample();
        let text = original.to_json_string();
        let parsed = Json::parse(&text).expect("rendered report parses");
        let read_back = ServeReport::from_json(&parsed).expect("report reads back");
        assert_eq!(read_back, original);
        assert_eq!(read_back.to_json_string(), text, "roundtrip is byte-stable");
    }

    #[test]
    fn failure_report_is_failed_with_empty_artifacts() {
        let r = ServeReport::failure("doctor rejected the netlist");
        assert_eq!(r.status, ServeStatus::Failed);
        assert!(r.artifact.is_empty() && r.escher.is_empty() && r.svg.is_empty());
        let text = r.to_json_string();
        let read_back = ServeReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(read_back, r);
    }

    #[test]
    fn unknown_status_and_version_are_errors() {
        let bad = Json::parse(r#"{"schema_version":99}"#).unwrap();
        assert!(ServeReport::from_json(&bad).unwrap_err().contains("schema_version"));
        let bad =
            Json::parse(r#"{"schema_version":1,"status":"exploded","cache":"hit"}"#).unwrap();
        assert!(ServeReport::from_json(&bad).unwrap_err().contains("exploded"));
        let bad =
            Json::parse(r#"{"schema_version":1,"status":"clean","cache":"warmish"}"#).unwrap();
        assert!(ServeReport::from_json(&bad).unwrap_err().contains("warmish"));
    }

    #[test]
    fn status_and_cache_strings_roundtrip() {
        for s in [ServeStatus::Clean, ServeStatus::Degraded, ServeStatus::Failed] {
            assert_eq!(ServeStatus::parse(s.as_str()), Some(s));
        }
        for c in [CacheOutcome::Hit, CacheOutcome::Miss, CacheOutcome::Coalesced] {
            assert_eq!(CacheOutcome::parse(c.as_str()), Some(c));
        }
        assert_eq!(ServeStatus::parse("nope"), None);
        assert_eq!(CacheOutcome::parse("nope"), None);
    }

    #[test]
    fn stats_roundtrip_with_missing_fields_reading_zero() {
        let stats = ServeStats {
            requests: 10,
            clean: 6,
            degraded: 2,
            failed: 1,
            shed: 1,
            cache_hits: 4,
            coalesced: 3,
            ..ServeStats::default()
        };
        let read_back =
            ServeStats::from_json(&Json::parse(&stats.to_json_string()).unwrap()).unwrap();
        assert_eq!(read_back, stats);
        let sparse = Json::parse(r#"{"schema_version":1,"requests":3}"#).unwrap();
        let read_back = ServeStats::from_json(&sparse).unwrap();
        assert_eq!(read_back.requests, 3);
        assert_eq!(read_back.shed, 0, "missing counters read as zero");
    }

    #[test]
    fn stats_require_a_supported_schema_version() {
        let missing = Json::parse(r#"{"requests":3}"#).unwrap();
        assert!(ServeStats::from_json(&missing)
            .unwrap_err()
            .contains("missing schema_version"));
        let wrong = Json::parse(r#"{"schema_version":99,"requests":3}"#).unwrap();
        assert!(ServeStats::from_json(&wrong)
            .unwrap_err()
            .contains("unsupported schema_version 99"));
    }
}
