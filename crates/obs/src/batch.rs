//! The machine-readable batch manifest.
//!
//! A [`BatchManifest`] is what `netart batch` writes: one record per
//! input job (status, attempts, duration, degradation count, and the
//! job's full [`RunReport`] when the pipeline produced one), plus an
//! aggregate summary. Like the run report, the shape is versioned and
//! pinned by a golden-file test; adding members is allowed within a
//! version, renaming or removing them requires a bump.
//!
//! Records are kept sorted by input path and the JSON rendering is
//! fully deterministic, so two batch runs over the same inputs can be
//! compared byte-for-byte once [`BatchManifest::normalized`] has
//! stripped the wall-clock quantities.

use crate::json::Json;
use crate::report::RunReport;

/// Version of the manifest shape. Bump when members are renamed,
/// removed, or change meaning.
pub const BATCH_SCHEMA_VERSION: u32 = 1;

/// Terminal status of one batch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobStatus {
    /// Pipeline ran clean on some attempt.
    Ok,
    /// Pipeline finished but needed fallbacks (salvage, doctor
    /// repairs, emit retries, …).
    Degraded,
    /// Permanent failure (parse/IO error, or cancelled mid-flight
    /// during drain) — retrying would not help.
    Failed,
    /// Circuit breaker: the input failed every retry with transient
    /// symptoms (panic, injected fault, budget exhaustion) and was
    /// quarantined so it cannot starve the rest of the batch.
    Quarantined,
    /// Never started: the job was still queued when the batch drained.
    Skipped,
}

impl JobStatus {
    /// The status as its manifest string.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Degraded => "degraded",
            JobStatus::Failed => "failed",
            JobStatus::Quarantined => "quarantined",
            JobStatus::Skipped => "skipped",
        }
    }

    /// Parses a manifest status string.
    pub fn parse(s: &str) -> Option<JobStatus> {
        match s {
            "ok" => Some(JobStatus::Ok),
            "degraded" => Some(JobStatus::Degraded),
            "failed" => Some(JobStatus::Failed),
            "quarantined" => Some(JobStatus::Quarantined),
            "skipped" => Some(JobStatus::Skipped),
            _ => None,
        }
    }
}

/// Why the circuit breaker quarantined a job: which symptom burned
/// the final attempt, and how many attempts it took to trip. Present
/// exactly on [`JobStatus::Quarantined`] records, so batch and serve
/// consumers can report breaker decisions without re-deriving them
/// from free-text errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Attempts burned before the breaker tripped.
    pub after_attempts: u32,
    /// The transient symptom of the final attempt (panic message,
    /// injected fault, budget exhaustion, …).
    pub symptom: String,
}

/// One input's journey through the batch engine.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job's input path (the manifest's ordering key).
    pub input: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Pipeline attempts made (0 for skipped jobs).
    pub attempts: u32,
    /// Wall-clock nanoseconds across all attempts (zeroed by
    /// [`BatchManifest::normalized`]).
    pub duration_ns: u64,
    /// Degradations recorded by the final attempt's run report.
    pub degradations: usize,
    /// The last failure message, for failed/quarantined jobs.
    pub error: Option<String>,
    /// The breaker's decision context, for quarantined jobs.
    pub quarantine: Option<QuarantineReport>,
    /// The final attempt's run report, when the pipeline produced one.
    pub report: Option<RunReport>,
}

/// Aggregate counts over a manifest's jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Jobs per terminal status.
    pub ok: usize,
    /// See [`JobStatus::Degraded`].
    pub degraded: usize,
    /// See [`JobStatus::Failed`].
    pub failed: usize,
    /// See [`JobStatus::Quarantined`].
    pub quarantined: usize,
    /// See [`JobStatus::Skipped`].
    pub skipped: usize,
    /// Pipeline attempts across all jobs (retries included).
    pub total_attempts: u32,
    /// Batch wall-clock nanoseconds (zeroed by
    /// [`BatchManifest::normalized`]).
    pub duration_ns: u64,
}

/// Everything one batch run reports, in a stable JSON shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchManifest {
    /// Which tool produced the manifest (`netart batch`).
    pub tool: String,
    /// Worker threads the batch ran with.
    pub jobs_in_flight: u32,
    /// Whether the batch drained early on a signal.
    pub drained: bool,
    /// One record per input, sorted by input path.
    pub jobs: Vec<JobRecord>,
    /// Aggregate counts.
    pub summary: BatchSummary,
}

impl BatchManifest {
    /// A manifest over `jobs`, with records sorted by input path and
    /// the summary recomputed. `jobs_in_flight` is the worker count;
    /// `drained` records an early drain.
    pub fn new(tool: &str, jobs_in_flight: u32, drained: bool, mut jobs: Vec<JobRecord>) -> Self {
        jobs.sort_by(|a, b| a.input.cmp(&b.input));
        let mut summary = BatchSummary::default();
        for job in &jobs {
            match job.status {
                JobStatus::Ok => summary.ok += 1,
                JobStatus::Degraded => summary.degraded += 1,
                JobStatus::Failed => summary.failed += 1,
                JobStatus::Quarantined => summary.quarantined += 1,
                JobStatus::Skipped => summary.skipped += 1,
            }
            summary.total_attempts += job.attempts;
        }
        BatchManifest {
            tool: tool.to_owned(),
            jobs_in_flight,
            drained,
            jobs,
            summary,
        }
    }

    /// The batch exit code, mirroring the single-run CLI contract:
    /// `0` when every job is `ok`, `2` when the batch completed but
    /// some jobs degraded, failed, were quarantined or skipped. (Exit
    /// `1` is reserved for the engine itself failing — no inputs,
    /// unwritable manifest — which never produces a manifest at all.)
    pub fn exit_code(&self) -> i32 {
        let s = &self.summary;
        if s.degraded + s.failed + s.quarantined + s.skipped == 0 {
            0
        } else {
            2
        }
    }

    /// The manifest as a JSON tree.
    pub fn to_json(&self) -> Json {
        let jobs = Json::Arr(
            self.jobs
                .iter()
                .map(|j| {
                    Json::obj()
                        .with("input", j.input.as_str())
                        .with("status", j.status.as_str())
                        .with("attempts", j.attempts)
                        .with("duration_ns", j.duration_ns)
                        .with("degradations", j.degradations)
                        .with("error", j.error.as_deref().map(Json::from))
                        .with(
                            "quarantine",
                            j.quarantine.as_ref().map(|q| {
                                Json::obj()
                                    .with("after_attempts", q.after_attempts)
                                    .with("symptom", q.symptom.as_str())
                            }),
                        )
                        .with("report", j.report.as_ref().map(RunReport::to_json))
                })
                .collect(),
        );
        let summary = Json::obj()
            .with("ok", self.summary.ok)
            .with("degraded", self.summary.degraded)
            .with("failed", self.summary.failed)
            .with("quarantined", self.summary.quarantined)
            .with("skipped", self.summary.skipped)
            .with("total_attempts", self.summary.total_attempts)
            .with("duration_ns", self.summary.duration_ns);
        Json::obj()
            .with("schema_version", BATCH_SCHEMA_VERSION)
            .with("tool", self.tool.as_str())
            .with("jobs_in_flight", self.jobs_in_flight)
            .with("drained", self.drained)
            .with("jobs", jobs)
            .with("summary", summary)
    }

    /// The pretty-printed JSON document (what `netart batch
    /// --report-json` writes).
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reads a manifest back from its [`BatchManifest::to_json`]
    /// shape, with the same error discipline as
    /// [`RunReport::from_json`].
    pub fn from_json(json: &Json) -> Result<BatchManifest, String> {
        if json.as_obj().is_none() {
            return Err("manifest is not a JSON object".to_owned());
        }
        crate::json::expect_schema_version(json, BATCH_SCHEMA_VERSION, BATCH_SCHEMA_VERSION)?;
        let mut jobs = Vec::new();
        if let Some(arr) = json.get("jobs").and_then(Json::as_arr) {
            for j in arr {
                let status_str = j.get("status").and_then(Json::as_str).unwrap_or_default();
                let status = JobStatus::parse(status_str)
                    .ok_or_else(|| format!("unknown job status {status_str:?}"))?;
                let report = match j.get("report") {
                    Some(Json::Null) | None => None,
                    Some(r) => Some(RunReport::from_json(r)?),
                };
                jobs.push(JobRecord {
                    input: j
                        .get("input")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned(),
                    status,
                    attempts: j.get("attempts").and_then(Json::as_u64).unwrap_or(0) as u32,
                    duration_ns: j.get("duration_ns").and_then(Json::as_u64).unwrap_or(0),
                    degradations: j.get("degradations").and_then(Json::as_u64).unwrap_or(0)
                        as usize,
                    error: j.get("error").and_then(Json::as_str).map(str::to_owned),
                    quarantine: j.get("quarantine").and_then(|q| {
                        q.as_obj()?;
                        Some(QuarantineReport {
                            after_attempts: q
                                .get("after_attempts")
                                .and_then(Json::as_u64)
                                .unwrap_or(0) as u32,
                            symptom: q
                                .get("symptom")
                                .and_then(Json::as_str)
                                .unwrap_or_default()
                                .to_owned(),
                        })
                    }),
                    report,
                });
            }
        }
        let mut manifest = BatchManifest::new(
            json.get("tool").and_then(Json::as_str).unwrap_or_default(),
            json.get("jobs_in_flight").and_then(Json::as_u64).unwrap_or(0) as u32,
            json.get("drained").and_then(Json::as_bool).unwrap_or(false),
            jobs,
        );
        // Keep the on-disk summary durations (recomputation only
        // covers counts).
        if let Some(summary) = json.get("summary") {
            manifest.summary.duration_ns =
                summary.get("duration_ns").and_then(Json::as_u64).unwrap_or(0);
        }
        Ok(manifest)
    }

    /// The manifest with every wall-clock quantity zeroed — job and
    /// summary durations, plus [`RunReport::normalized`] applied to
    /// every embedded report. Two batch runs over the same inputs
    /// render this form byte-identically regardless of `--jobs` or
    /// machine speed.
    pub fn normalized(&self) -> BatchManifest {
        let mut manifest = self.clone();
        manifest.summary.duration_ns = 0;
        for job in &mut manifest.jobs {
            job.duration_ns = 0;
            job.report = job.report.as_ref().map(RunReport::normalized);
        }
        manifest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchManifest {
        BatchManifest::new(
            "netart batch",
            4,
            false,
            vec![
                JobRecord {
                    input: "b.net".into(),
                    status: JobStatus::Quarantined,
                    attempts: 3,
                    duration_ns: 500,
                    degradations: 0,
                    error: Some("injected panic".into()),
                    quarantine: Some(QuarantineReport {
                        after_attempts: 3,
                        symptom: "injected panic".into(),
                    }),
                    report: None,
                },
                JobRecord {
                    input: "a.net".into(),
                    status: JobStatus::Ok,
                    attempts: 1,
                    duration_ns: 900,
                    degradations: 0,
                    error: None,
                    quarantine: None,
                    report: Some(RunReport {
                        tool: "netart".into(),
                        is_clean: true,
                        ..RunReport::default()
                    }),
                },
            ],
        )
    }

    #[test]
    fn jobs_sort_by_input_and_summary_counts() {
        let m = sample();
        let inputs: Vec<&str> = m.jobs.iter().map(|j| j.input.as_str()).collect();
        assert_eq!(inputs, ["a.net", "b.net"]);
        assert_eq!(m.summary.ok, 1);
        assert_eq!(m.summary.quarantined, 1);
        assert_eq!(m.summary.total_attempts, 4);
        assert_eq!(m.exit_code(), 2);
    }

    #[test]
    fn all_ok_exits_zero() {
        let m = BatchManifest::new(
            "netart batch",
            1,
            false,
            vec![JobRecord {
                input: "a.net".into(),
                status: JobStatus::Ok,
                attempts: 1,
                duration_ns: 1,
                degradations: 0,
                error: None,
                quarantine: None,
                report: None,
            }],
        );
        assert_eq!(m.exit_code(), 0);
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let parsed = BatchManifest::from_json(&Json::parse(&m.to_json_string()).unwrap())
            .expect("manifest re-parses");
        assert_eq!(parsed, m);
    }

    #[test]
    fn unknown_status_and_version_are_errors() {
        let bad = Json::parse(r#"{"schema_version":99}"#).unwrap();
        assert!(BatchManifest::from_json(&bad).unwrap_err().contains("schema_version"));
        let bad = Json::parse(
            r#"{"schema_version":1,"jobs":[{"input":"x","status":"exploded"}]}"#,
        )
        .unwrap();
        assert!(BatchManifest::from_json(&bad).unwrap_err().contains("exploded"));
    }

    #[test]
    fn normalized_zeroes_every_duration() {
        let n = sample().normalized();
        assert_eq!(n.summary.duration_ns, 0);
        assert!(n.jobs.iter().all(|j| j.duration_ns == 0));
        assert_eq!(
            n.to_json_string(),
            sample().normalized().to_json_string(),
            "normalisation is deterministic"
        );
    }

    #[test]
    fn status_strings_roundtrip() {
        for s in [
            JobStatus::Ok,
            JobStatus::Degraded,
            JobStatus::Failed,
            JobStatus::Quarantined,
            JobStatus::Skipped,
        ] {
            assert_eq!(JobStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobStatus::parse("nope"), None);
    }
}
