//! The routing heat-map profile schema.
//!
//! `netart profile` aggregates the per-net EUREKA counters
//! (`NetRouteStats`) into a spatial grid over the diagram: each cell
//! counts search expansions, rip-up victims, salvage settlements and
//! touching nets attributed to that region. The result is a
//! [`ProfileReport`] — schema-versioned JSON (`"kind": "profile"`)
//! plus an ASCII rendering — built only from deterministic counters,
//! so two runs over the same input produce bit-identical documents.
//!
//! For `netart report diff`, a profile converts to a synthetic
//! [`RunReport`] whose metrics counters carry the totals and the
//! per-cell counts; diffing two profiles then reuses the exact-counter
//! semantics of [`ReportDiff`](crate::ReportDiff), and a self-diff is
//! empty.

use crate::json::Json;
use crate::report::{NetworkReport, RunReport};

/// Version of the profile shape. Bump when members are renamed,
/// removed, or change meaning.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// The `kind` discriminator of a profile document, distinguishing it
/// from run reports in `report diff` inputs.
pub const PROFILE_KIND: &str = "profile";

/// One non-empty grid cell of the heat map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileCell {
    /// Column index, 0-based from the left edge of the bounds.
    pub col: u32,
    /// Row index, 0-based from the top edge of the bounds.
    pub row: u32,
    /// Search nodes expanded attributed to this cell.
    pub expansions: u64,
    /// Rip-up victims attributed to this cell.
    pub ripup_victims: u64,
    /// Nets whose salvage cascade settled in this cell.
    pub salvaged: u64,
    /// Nets touching this cell.
    pub nets: u64,
}

/// Whole-diagram totals (the sums of the per-net counters, before any
/// grid attribution — cell counts sum back to these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileTotals {
    /// Nets profiled.
    pub nets: u64,
    /// Nets that ended with a real route.
    pub routed: u64,
    /// Search nodes expanded across all nets and passes.
    pub expansions: u64,
    /// Routed victims ripped up while salvaging.
    pub ripup_victims: u64,
    /// Nets settled by the salvage cascade.
    pub salvaged: u64,
}

/// A spatial congestion profile of one routing run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// Which tool produced the profile (`netart profile`).
    pub tool: String,
    /// Grid columns.
    pub cols: u32,
    /// Grid rows.
    pub rows: u32,
    /// Diagram-coordinate bounds the grid covers: `(x0, y0, x1, y1)`,
    /// inclusive of `x0`/`y0`, exclusive of `x1`/`y1`.
    pub bounds: (i64, i64, i64, i64),
    /// Whole-run totals.
    pub totals: ProfileTotals,
    /// Non-empty cells in row-major order.
    pub cells: Vec<ProfileCell>,
}

impl ProfileReport {
    /// The profile as a JSON tree.
    pub fn to_json(&self) -> Json {
        let cells = Json::Arr(
            self.cells
                .iter()
                .map(|c| {
                    Json::obj()
                        .with("col", c.col)
                        .with("row", c.row)
                        .with("expansions", c.expansions)
                        .with("ripup_victims", c.ripup_victims)
                        .with("salvaged", c.salvaged)
                        .with("nets", c.nets)
                })
                .collect(),
        );
        let (x0, y0, x1, y1) = self.bounds;
        Json::obj()
            .with("schema_version", PROFILE_SCHEMA_VERSION)
            .with("kind", PROFILE_KIND)
            .with("tool", self.tool.as_str())
            .with("cols", self.cols)
            .with("rows", self.rows)
            .with(
                "bounds",
                Json::obj().with("x0", x0).with("y0", y0).with("x1", x1).with("y1", y1),
            )
            .with(
                "totals",
                Json::obj()
                    .with("nets", self.totals.nets)
                    .with("routed", self.totals.routed)
                    .with("expansions", self.totals.expansions)
                    .with("ripup_victims", self.totals.ripup_victims)
                    .with("salvaged", self.totals.salvaged),
            )
            .with("cells", cells)
    }

    /// The pretty-printed JSON document (what `--heat-json` writes).
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Whether a parsed document is a profile (as opposed to a run
    /// report) — the discriminator `report diff` keys on.
    pub fn is_profile_json(json: &Json) -> bool {
        json.get("kind").and_then(Json::as_str) == Some(PROFILE_KIND)
    }

    /// Reads a profile back from its [`ProfileReport::to_json`] shape.
    pub fn from_json(json: &Json) -> Result<ProfileReport, String> {
        if json.as_obj().is_none() {
            return Err("profile is not a JSON object".to_owned());
        }
        crate::json::expect_schema_version(json, PROFILE_SCHEMA_VERSION, PROFILE_SCHEMA_VERSION)?;
        if !Self::is_profile_json(json) {
            return Err("document kind is not \"profile\"".to_owned());
        }
        let u = |node: &Json, name: &str| node.get(name).and_then(Json::as_u64).unwrap_or(0);
        let bounds = json.get("bounds").cloned().unwrap_or_else(Json::obj);
        let i = |name: &str| bounds.get(name).and_then(Json::as_i64).unwrap_or(0);
        let totals_json = json.get("totals").cloned().unwrap_or_else(Json::obj);
        let mut report = ProfileReport {
            tool: json
                .get("tool")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            cols: u(json, "cols") as u32,
            rows: u(json, "rows") as u32,
            bounds: (i("x0"), i("y0"), i("x1"), i("y1")),
            totals: ProfileTotals {
                nets: u(&totals_json, "nets"),
                routed: u(&totals_json, "routed"),
                expansions: u(&totals_json, "expansions"),
                ripup_victims: u(&totals_json, "ripup_victims"),
                salvaged: u(&totals_json, "salvaged"),
            },
            cells: Vec::new(),
        };
        if let Some(cells) = json.get("cells").and_then(Json::as_arr) {
            for c in cells {
                report.cells.push(ProfileCell {
                    col: u(c, "col") as u32,
                    row: u(c, "row") as u32,
                    expansions: u(c, "expansions"),
                    ripup_victims: u(c, "ripup_victims"),
                    salvaged: u(c, "salvaged"),
                    nets: u(c, "nets"),
                });
            }
        }
        Ok(report)
    }

    /// The heat map as ASCII art: one character per cell on an
    /// intensity ramp over expansions (linear in the cell's share of
    /// the hottest cell), `!` overlaid where rip-up victims landed.
    pub fn render_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let hottest = self.cells.iter().map(|c| c.expansions).max().unwrap_or(0);
        let mut grid = vec![vec![b' '; self.cols as usize]; self.rows as usize];
        for c in &self.cells {
            if c.row >= self.rows || c.col >= self.cols {
                continue;
            }
            let glyph = if c.ripup_victims > 0 {
                b'!'
            } else if hottest == 0 || c.expansions == 0 {
                if c.nets > 0 { b'.' } else { b' ' }
            } else {
                // Map (0, hottest] onto ramp indices 1..=9.
                let idx = 1 + (c.expansions.saturating_mul(8) / hottest) as usize;
                RAMP[idx.min(RAMP.len() - 1)]
            };
            grid[c.row as usize][c.col as usize] = glyph;
        }
        let mut out = String::new();
        out.push('+');
        out.push_str(&"-".repeat(self.cols as usize));
        out.push_str("+\n");
        for row in &grid {
            out.push('|');
            for &b in row {
                out.push(b as char);
            }
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(self.cols as usize));
        out.push_str("+\n");
        out.push_str(&format!(
            "{} nets ({} routed), {} expansions (hottest cell {}), {} rip-up victims (!), {} salvaged\n",
            self.totals.nets,
            self.totals.routed,
            self.totals.expansions,
            hottest,
            self.totals.ripup_victims,
            self.totals.salvaged,
        ));
        out
    }

    /// The profile as a synthetic [`RunReport`] whose counters carry
    /// the totals and the per-cell counts, so two profiles diff with
    /// the exact-counter semantics of `report diff`. Both sides of a
    /// diff must be converted the same way (the CLI does); a self-diff
    /// yields no entries.
    pub fn to_run_report(&self) -> RunReport {
        let mut report = RunReport {
            tool: self.tool.clone(),
            network: NetworkReport {
                modules: 0,
                nets: self.totals.nets as usize,
                system_terminals: 0,
            },
            is_clean: true,
            ..RunReport::default()
        };
        let counters = &mut report.metrics.counters;
        counters.insert("heat.grid.cols".to_owned(), u64::from(self.cols));
        counters.insert("heat.grid.rows".to_owned(), u64::from(self.rows));
        counters.insert("heat.total.nets".to_owned(), self.totals.nets);
        counters.insert("heat.total.routed".to_owned(), self.totals.routed);
        counters.insert("heat.total.expansions".to_owned(), self.totals.expansions);
        counters.insert("heat.total.ripup_victims".to_owned(), self.totals.ripup_victims);
        counters.insert("heat.total.salvaged".to_owned(), self.totals.salvaged);
        for c in &self.cells {
            let cell = format!("heat.cell.{:03}x{:03}", c.col, c.row);
            counters.insert(format!("{cell}.expansions"), c.expansions);
            counters.insert(format!("{cell}.ripup_victims"), c.ripup_victims);
            counters.insert(format!("{cell}.salvaged"), c.salvaged);
            counters.insert(format!("{cell}.nets"), c.nets);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReportDiff;

    fn sample() -> ProfileReport {
        ProfileReport {
            tool: "netart profile".to_owned(),
            cols: 4,
            rows: 2,
            bounds: (0, -4, 40, 20),
            totals: ProfileTotals {
                nets: 3,
                routed: 2,
                expansions: 190,
                ripup_victims: 1,
                salvaged: 1,
            },
            cells: vec![
                ProfileCell {
                    col: 0,
                    row: 0,
                    expansions: 150,
                    ripup_victims: 0,
                    salvaged: 0,
                    nets: 2,
                },
                ProfileCell {
                    col: 2,
                    row: 1,
                    expansions: 40,
                    ripup_victims: 1,
                    salvaged: 1,
                    nets: 1,
                },
            ],
        }
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let original = sample();
        let text = original.to_json_string();
        let parsed = Json::parse(&text).expect("rendered profile parses");
        assert!(ProfileReport::is_profile_json(&parsed));
        let read_back = ProfileReport::from_json(&parsed).expect("profile reads back");
        assert_eq!(read_back, original);
        assert_eq!(read_back.to_json_string(), text, "roundtrip is byte-stable");
    }

    #[test]
    fn version_and_kind_are_validated() {
        let missing = Json::parse(r#"{"kind":"profile"}"#).unwrap();
        assert!(ProfileReport::from_json(&missing)
            .unwrap_err()
            .contains("missing schema_version"));
        let wrong = Json::parse(r#"{"schema_version":9,"kind":"profile"}"#).unwrap();
        assert!(ProfileReport::from_json(&wrong)
            .unwrap_err()
            .contains("unsupported schema_version"));
        let not_profile = Json::parse(r#"{"schema_version":1,"kind":"report"}"#).unwrap();
        assert!(!ProfileReport::is_profile_json(&not_profile));
        assert!(ProfileReport::from_json(&not_profile)
            .unwrap_err()
            .contains("kind"));
    }

    #[test]
    fn synthetic_run_report_self_diffs_clean() {
        let report = sample().to_run_report();
        let diff = ReportDiff::diff(&report, &report);
        assert!(diff.entries.is_empty(), "{:?}", diff.entries);
        assert_eq!(report.metrics.counters["heat.total.expansions"], 190);
        assert_eq!(report.metrics.counters["heat.cell.000x000.expansions"], 150);
    }

    #[test]
    fn synthetic_run_report_flags_hot_cell_drift() {
        let baseline = sample().to_run_report();
        let mut hotter = sample();
        hotter.cells[0].expansions = 300;
        hotter.totals.expansions = 340;
        let diff = ReportDiff::diff(&baseline, &hotter.to_run_report());
        assert!(diff.is_regression());
        let names: Vec<&str> = diff.regressions().map(|e| e.metric.as_str()).collect();
        assert!(
            names.contains(&"counters.heat.cell.000x000.expansions"),
            "{names:?}"
        );
    }

    #[test]
    fn ascii_rendering_marks_hot_and_ripped_cells() {
        let art = sample().render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0], "+----+");
        assert_eq!(lines.len(), 2 + 2 + 1, "border + rows + legend");
        // Hottest cell renders at the top of the ramp; the rip-up cell
        // is overlaid with '!'.
        assert_eq!(&lines[1][1..2], "@");
        assert_eq!(&lines[2][3..4], "!");
        assert!(lines[4].contains("190 expansions"), "{art}");
    }

    #[test]
    fn empty_profile_renders_without_panicking() {
        let empty = ProfileReport {
            tool: "netart profile".to_owned(),
            cols: 2,
            rows: 1,
            ..ProfileReport::default()
        };
        let art = empty.render_ascii();
        assert!(art.contains("0 nets"), "{art}");
        let text = empty.to_json_string();
        let read_back = ProfileReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(read_back, empty);
    }
}
