//! The metrics registry: named counters and histograms with no global
//! state.
//!
//! A [`Metrics`] is owned by whoever runs a pipeline (the `Generator`
//! creates one per run) and snapshotted into the run's outcome. The
//! split between counters and histograms is semantic, not just
//! structural: **counters hold only deterministic quantities** (nets
//! routed, nodes expanded, bends, …) so two runs of the same input
//! produce identical counter maps — the property the determinism guard
//! test pins — while **histograms absorb the wall-clock observations**
//! (phase times, per-net durations) that legitimately vary.

use std::collections::BTreeMap;

use crate::json::Json;

/// Log-2 bucketed histogram of `u64` observations (nanoseconds, node
/// counts). Fixed buckets keep recording allocation-free and the
/// quantile estimates deterministic for a given multiset of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// `buckets[i]` counts observations with `63 - leading_zeros == i`
    /// (bucket 0 also holds the zeros).
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// Index of the log-2 bucket holding `value` (0–63). Exposed so the
    /// baseline differ can band-compare wall-clock quantities the same
    /// way the histogram buckets them: two values in the same (or
    /// adjacent) bucket are "the same time" for gating purposes.
    pub fn bucket_of(value: u64) -> usize {
        63 - u64::leading_zeros(value.max(1)) as usize
    }

    /// Upper bound (inclusive) of log-2 bucket `i`: the largest value
    /// that [`Histogram::bucket_of`] maps to `i`. Saturates at
    /// `u64::MAX` for the last bucket.
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Records one observation. Public so telemetry registries can
    /// reuse the same core the per-run [`Metrics`] uses.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw log-2 bucket counts.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Folds another histogram into this one (used to aggregate the
    /// slots of a rolling window).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation,
    /// clamped to nothing — callers clamp to [`Histogram::max`] when
    /// they want an attainable value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        self.max
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50).min(self.max),
            p90: self.quantile(0.90).min(self.max),
            p95: self.quantile(0.95).min(self.max),
        }
    }
}

/// The exported shape of one histogram: totals plus coarse quantile
/// bounds (bucket upper limits, clamped to the observed maximum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Upper bound on the median observation.
    pub p50: u64,
    /// Upper bound on the 90th-percentile observation.
    pub p90: u64,
    /// Upper bound on the 95th-percentile observation.
    pub p95: u64,
}

impl HistogramSummary {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The JSON shape used inside snapshots and reports.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("min", self.min)
            .with("max", self.max)
            .with("p50", self.p50)
            .with("p90", self.p90)
            .with("p95", self.p95)
    }

    /// Reads a summary back from its [`HistogramSummary::to_json`]
    /// shape. Missing members default to zero (older schema versions
    /// lacked `p90`).
    pub fn from_json(json: &Json) -> HistogramSummary {
        let field = |name: &str| json.get(name).and_then(Json::as_u64).unwrap_or(0);
        HistogramSummary {
            count: field("count"),
            sum: field("sum"),
            min: field("min"),
            max: field("max"),
            p50: field("p50"),
            p90: field("p90"),
            p95: field("p95"),
        }
    }
}

/// A registry of named counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `by` to the named counter, creating it at zero.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self
            .counters
            .entry(name.to_owned())
            .or_insert(0) += by;
    }

    /// Sets the named counter to `value` (for gauge-like quantities
    /// such as final quality metrics).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// The current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Freezes the registry into an exportable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// A frozen [`Metrics`]: plain maps, ready for comparison or export.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name. Deterministic for a given input.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name. Timing histograms vary run to run.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The JSON shape used inside a `RunReport`.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.set(k, *v);
        }
        let mut histograms = Json::obj();
        for (k, v) in &self.histograms {
            histograms.set(k, v.to_json());
        }
        Json::obj()
            .with("counters", counters)
            .with("histograms", histograms)
    }

    /// Reads a snapshot back from its [`MetricsSnapshot::to_json`]
    /// shape; non-numeric counters and malformed histograms are
    /// skipped rather than rejected.
    pub fn from_json(json: &Json) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        if let Some(members) = json.get("counters").and_then(Json::as_obj) {
            for (name, value) in members {
                if let Some(v) = value.as_u64() {
                    snapshot.counters.insert(name.clone(), v);
                }
            }
        }
        if let Some(members) = json.get("histograms").and_then(Json::as_obj) {
            for (name, value) in members {
                if value.as_obj().is_some() {
                    snapshot
                        .histograms
                        .insert(name.clone(), HistogramSummary::from_json(value));
                }
            }
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set() {
        let mut m = Metrics::new();
        m.inc("route.nets", 3);
        m.inc("route.nets", 2);
        m.set("quality.bends", 7);
        assert_eq!(m.counter("route.nets"), 5);
        assert_eq!(m.counter("quality.bends"), 7);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_summary_totals() {
        let mut m = Metrics::new();
        for v in [1u64, 2, 3, 100] {
            m.observe("lat", v);
        }
        let s = m.snapshot().histograms["lat"];
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 26.5).abs() < 1e-9);
        assert!(s.p50 >= 2 && s.p50 <= s.max);
        assert!(s.p95 >= s.p50);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(10); // bucket 3, upper bound 15
        }
        h.record(1000); // bucket 9
        let s = h.summary();
        assert_eq!(s.p50, 15);
        assert_eq!(s.p95, 15);
        assert_eq!(s.max, 1000);
        assert_eq!(Histogram::default().summary(), HistogramSummary::default());
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.summary().min, 0);
        assert_eq!(h.summary().p50, 0, "bucket upper bound clamped to max");
    }

    #[test]
    fn snapshots_of_equal_runs_compare_equal() {
        let run = || {
            let mut m = Metrics::new();
            m.inc("a", 1);
            m.observe("h", 42);
            m.snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_json_shape() {
        let mut m = Metrics::new();
        m.inc("c", 2);
        m.observe("h", 5);
        let j = m.snapshot().to_json();
        assert_eq!(j.get("counters").and_then(|c| c.get("c")), Some(&Json::Uint(2)));
        let h = j.get("histograms").and_then(|h| h.get("h")).expect("histogram");
        assert_eq!(h.get("count"), Some(&Json::Uint(1)));
        assert_eq!(h.get("sum"), Some(&Json::Uint(5)));
    }
}
