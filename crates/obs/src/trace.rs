//! Chrome trace-event export: spans become `ph:"B"/"E"` duration
//! events, events become `ph:"i"` instants.
//!
//! A [`TraceEventSubscriber`] records everything the tracing layer
//! sees into a shared [`TraceBuffer`]; after the run the CLI drains
//! the buffer into a trace-event JSON array (`--trace-out`) that loads
//! directly in `ui.perfetto.dev` or `chrome://tracing`. Timestamps are
//! microseconds from a single [`Instant`] taken at subscriber
//! construction, so the file is self-consistent regardless of wall
//! clocks, and `tid` is [`tracing::thread_ordinal`] so per-thread
//! tracks stay small and stable.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use tracing::{Event, Level, SpanRecord, Subscriber};

use crate::json::Json;
use crate::subscribe::fields_json;

/// One recorded trace event, already in trace-event vocabulary.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (span name or event message).
    pub name: String,
    /// Phase: `B` (span enter), `E` (span close), `i` (instant).
    pub ph: char,
    /// Microseconds since the subscriber was constructed.
    pub ts: f64,
    /// Ordinal of the recording thread.
    pub tid: u64,
    /// The record's level, exported as the event category.
    pub level: Level,
    /// Structured fields, exported as `args`.
    pub args: Json,
}

/// Shared, clonable store of recorded [`TraceEvent`]s. The CLI keeps
/// one clone and hands the other to the subscriber it installs in the
/// global slot — installation consumes the subscriber, so the buffer
/// is the only handle left to drain after the run.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().map(|e| e.len()).unwrap_or(0)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, event: TraceEvent) {
        if let Ok(mut events) = self.events.lock() {
            events.push(event);
        }
    }

    /// The recorded events as a trace-event JSON array (the document
    /// `--trace-out` writes). The buffer keeps its contents, so
    /// rendering twice gives the same document.
    pub fn to_json(&self) -> Json {
        let pid = u64::from(std::process::id());
        let events = self.events.lock().map(|e| e.clone()).unwrap_or_default();
        Json::Arr(
            events
                .iter()
                .map(|e| {
                    Json::obj()
                        .with("name", e.name.as_str())
                        .with("cat", e.level.as_str())
                        .with("ph", e.ph.to_string())
                        .with("ts", e.ts)
                        .with("pid", pid)
                        .with("tid", e.tid)
                        .with("args", e.args.clone())
                })
                .collect(),
        )
    }

    /// The pretty-printed trace document.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }
}

/// Records spans and events into a [`TraceBuffer`] in trace-event
/// form. Install alone or as a [`crate::FanoutSubscriber`] child.
pub struct TraceEventSubscriber {
    max: Level,
    buffer: TraceBuffer,
    origin: Instant,
}

impl TraceEventSubscriber {
    /// A recorder keeping `max` and everything less verbose. Returns
    /// the subscriber and the buffer handle to drain afterwards.
    pub fn new(max: Level) -> (TraceEventSubscriber, TraceBuffer) {
        let buffer = TraceBuffer::new();
        (
            TraceEventSubscriber {
                max,
                buffer: buffer.clone(),
                origin: Instant::now(),
            },
            buffer,
        )
    }

    fn now_us(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e6
    }

    fn record(&self, name: &str, ph: char, level: Level, fields: &[tracing::Field]) {
        self.buffer.push(TraceEvent {
            name: name.to_owned(),
            ph,
            ts: self.now_us(),
            tid: tracing::thread_ordinal(),
            level,
            args: fields_json(fields),
        });
    }
}

impl Subscriber for TraceEventSubscriber {
    fn max_verbosity(&self) -> Level {
        self.max
    }

    fn on_event(&self, event: &Event<'_>) {
        self.record(event.message, 'i', event.level, event.fields);
    }

    fn on_span_enter(&self, span: &SpanRecord<'_>) {
        self.record(span.name, 'B', span.level, span.fields);
    }

    fn on_span_close(&self, span: &SpanRecord<'_>) {
        self.record(span.name, 'E', span.level, span.fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracing::{Field, Value};

    fn record_of(name: &'static str, elapsed: Option<std::time::Duration>) -> SpanRecord<'static> {
        SpanRecord {
            name,
            level: Level::INFO,
            fields: &[],
            elapsed,
        }
    }

    #[test]
    fn spans_record_balanced_b_e() {
        let (sub, buf) = TraceEventSubscriber::new(Level::TRACE);
        sub.on_span_enter(&record_of("route", None));
        sub.on_span_close(&record_of("route", Some(std::time::Duration::from_micros(5))));
        assert_eq!(buf.len(), 2);
        let json = buf.to_json();
        let events = json.as_arr().unwrap();
        assert_eq!(events[0].get("ph"), Some(&Json::Str("B".into())));
        assert_eq!(events[1].get("ph"), Some(&Json::Str("E".into())));
        assert_eq!(events[0].get("name"), Some(&Json::Str("route".into())));
        let t0 = events[0].get("ts").and_then(Json::as_f64).unwrap();
        let t1 = events[1].get("ts").and_then(Json::as_f64).unwrap();
        assert!(t1 >= t0, "timestamps are monotonic");
    }

    #[test]
    fn events_record_instants_with_args() {
        let (sub, buf) = TraceEventSubscriber::new(Level::TRACE);
        sub.on_event(&Event {
            level: Level::WARN,
            message: "net salvaged",
            fields: &[Field {
                name: "net",
                value: Value::Str("clk".into()),
            }],
            spans: &[],
        });
        let json = buf.to_json();
        let e = &json.as_arr().unwrap()[0];
        assert_eq!(e.get("ph"), Some(&Json::Str("i".into())));
        assert_eq!(e.get("cat"), Some(&Json::Str("WARN".into())));
        assert_eq!(
            e.get("args").and_then(|a| a.get("net")),
            Some(&Json::Str("clk".into()))
        );
        assert!(e.get("pid").and_then(Json::as_u64).is_some());
        assert!(e.get("tid").and_then(Json::as_u64).unwrap() >= 1);
    }

    #[test]
    fn rendered_trace_reparses() {
        let (sub, buf) = TraceEventSubscriber::new(Level::TRACE);
        sub.on_span_enter(&record_of("place", None));
        sub.on_span_close(&record_of("place", Some(std::time::Duration::ZERO)));
        let text = buf.to_json_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.as_arr().unwrap().len(), 2);
    }

    #[test]
    fn empty_buffer_renders_empty_array() {
        let buf = TraceBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.to_json().render(), "[]");
    }
}
