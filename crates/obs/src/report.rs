//! The machine-readable run report.
//!
//! A [`RunReport`] is the stable JSON contract between the pipeline
//! and everything downstream: the `--report-json` CLI flag, the bench
//! harness's `BENCH_*.json` files, and CI validation. The shape is
//! versioned by [`SCHEMA_VERSION`] and pinned by a golden-file test;
//! adding members is allowed within a version, renaming or removing
//! them requires a bump.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;

/// Version of the report shape. Bump when members are renamed,
/// removed, or change meaning.
///
/// History: **1** — initial shape; **2** — phase entries carry
/// histogram quantiles (`p50_ns`/`p90_ns`/`max_ns`) and histogram
/// summaries gained `p90`; **3** — phase entries carry allocation
/// attribution (`alloc_count`/`alloc_bytes`/`peak_bytes`, `null`
/// unless the binary was built with the `alloc-profile` feature).
pub const SCHEMA_VERSION: u32 = 3;

/// Size of the input network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkReport {
    /// Module instances.
    pub modules: usize,
    /// Nets.
    pub nets: usize,
    /// System terminals.
    pub system_terminals: usize,
}

/// One pipeline phase and its wall time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseReport {
    /// Phase name: `parse`, `place`, `route`, `emit`.
    pub name: String,
    /// Wall-clock nanoseconds spent in the phase.
    pub wall_ns: u64,
    /// Median of the phase's timing histogram (`phase.<name>_ns`),
    /// when the run recorded one.
    pub p50_ns: Option<u64>,
    /// 90th percentile of the phase's timing histogram.
    pub p90_ns: Option<u64>,
    /// Largest observation in the phase's timing histogram.
    pub max_ns: Option<u64>,
    /// Heap allocations attributed to the phase (`alloc-profile`
    /// builds only; `None` otherwise).
    pub alloc_count: Option<u64>,
    /// Bytes allocated while the phase was current.
    pub alloc_bytes: Option<u64>,
    /// Peak live heap bytes observed while the phase was current.
    pub peak_bytes: Option<u64>,
}

/// Router effort and outcome for one net (the per-net span data,
/// frozen).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetReport {
    /// The net's name.
    pub net: String,
    /// Whether the net ended with a real route.
    pub routed: bool,
    /// Whether the route was taken verbatim from the input diagram.
    pub prerouted: bool,
    /// Search nodes expanded on this net across all passes.
    pub nodes_expanded: u64,
    /// Whether any pass breached the net's budget.
    pub over_budget: bool,
    /// Whether the claim-lifted retry pass ran for this net.
    pub retried: bool,
    /// Salvage-cascade stage that settled the net, if any:
    /// `rip_up_retry`, `lee_fallback` or `ghost_wire`.
    pub salvage: Option<String>,
    /// Routed victims ripped up while salvaging this net.
    pub ripup_victims: u32,
}

/// One degradation with its context — not just the variant, but which
/// net, at which stage, and in what budget state it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationReport {
    /// Kind: `placement_recovered`, `routing_aborted`, `net_salvaged`,
    /// `net_unrouted`, `doctor_repair`, `parse_recovered`,
    /// `emit_retried`.
    pub kind: String,
    /// The net involved, for per-net kinds.
    pub net: Option<String>,
    /// The salvage stage reached (`net_salvaged` only).
    pub stage: Option<String>,
    /// Whether a real route resulted (`net_salvaged` only).
    pub routed: Option<bool>,
    /// Whether the original failure was a budget breach.
    pub over_budget: Option<bool>,
    /// Search nodes spent on the net before it was given up on.
    pub nodes_expanded: Option<u64>,
    /// Free-form detail (panic message for phase-level kinds).
    pub detail: Option<String>,
}

/// Final diagram quality, the quantities of the paper's §4.4 and
/// table 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualityReport {
    /// Nets with a routed path.
    pub routed_nets: usize,
    /// Nets without a routed path.
    pub unrouted_nets: usize,
    /// Sum of wire lengths over all routed nets.
    pub total_length: u64,
    /// Sum of bends over all routed nets.
    pub total_bends: u64,
    /// Crossing points between different nets.
    pub crossovers: u64,
    /// Branching nodes over all routed nets.
    pub branch_points: u64,
    /// Area of the placement bounding box.
    pub bounding_area: u64,
    /// Fraction of nets routed, in `[0, 1]`.
    pub completion: f64,
}

/// Everything one pipeline run reports, in a stable JSON shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Which tool produced the report (`netart`, `eureka`, a bench
    /// label, …).
    pub tool: String,
    /// Input network size.
    pub network: NetworkReport,
    /// Phases in execution order with wall times.
    pub phases: Vec<PhaseReport>,
    /// Per-net router records, in net-definition order.
    pub nets: Vec<NetReport>,
    /// Everything that went wrong without stopping the run.
    pub degradations: Vec<DegradationReport>,
    /// Final diagram quality.
    pub quality: QualityReport,
    /// The run's metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// `true` when the run needed no fallbacks at all.
    pub is_clean: bool,
}

impl RunReport {
    /// Adds a phase at the front (for work that ran before the
    /// pipeline's own phases, like CLI parsing).
    pub fn push_phase_front(&mut self, name: &str, wall_ns: u64) {
        self.phases.insert(
            0,
            PhaseReport {
                name: name.to_owned(),
                wall_ns,
                ..PhaseReport::default()
            },
        );
    }

    /// Adds a phase at the back (like CLI emit).
    pub fn push_phase(&mut self, name: &str, wall_ns: u64) {
        self.phases.push(PhaseReport {
            name: name.to_owned(),
            wall_ns,
            ..PhaseReport::default()
        });
    }

    /// Fills each phase's quantile members from the matching
    /// `phase.<name>_ns` histogram in the report's metrics snapshot.
    /// Phases without a histogram (CLI-added `parse`/`emit`) keep
    /// `None`.
    pub fn attach_phase_quantiles(&mut self) {
        for phase in &mut self.phases {
            if let Some(h) = self.metrics.histograms.get(&format!("phase.{}_ns", phase.name)) {
                phase.p50_ns = Some(h.p50);
                phase.p90_ns = Some(h.p90);
                phase.max_ns = Some(h.max);
            }
        }
    }

    /// Records a degradation discovered outside the core pipeline
    /// (doctor repairs, parse retries, emit retries). A run with any
    /// degradation is by definition not clean, so this also clears
    /// [`RunReport::is_clean`] — keeping the report's invariant
    /// `is_clean == degradations.is_empty()` intact for CI.
    pub fn push_degradation(&mut self, degradation: DegradationReport) {
        self.is_clean = false;
        self.degradations.push(degradation);
    }

    /// The wall time of a named phase, if present.
    pub fn phase_ns(&self, name: &str) -> Option<u64> {
        self.phases.iter().find(|p| p.name == name).map(|p| p.wall_ns)
    }

    /// The report as a JSON tree.
    pub fn to_json(&self) -> Json {
        let network = Json::obj()
            .with("modules", self.network.modules)
            .with("nets", self.network.nets)
            .with("system_terminals", self.network.system_terminals);
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::obj()
                        .with("name", p.name.as_str())
                        .with("wall_ns", p.wall_ns)
                        .with("p50_ns", p.p50_ns.map(Json::from))
                        .with("p90_ns", p.p90_ns.map(Json::from))
                        .with("max_ns", p.max_ns.map(Json::from))
                        .with("alloc_count", p.alloc_count.map(Json::from))
                        .with("alloc_bytes", p.alloc_bytes.map(Json::from))
                        .with("peak_bytes", p.peak_bytes.map(Json::from))
                })
                .collect(),
        );
        let nets = Json::Arr(
            self.nets
                .iter()
                .map(|n| {
                    Json::obj()
                        .with("net", n.net.as_str())
                        .with("routed", n.routed)
                        .with("prerouted", n.prerouted)
                        .with("nodes_expanded", n.nodes_expanded)
                        .with("over_budget", n.over_budget)
                        .with("retried", n.retried)
                        .with("salvage", n.salvage.as_deref().map(Json::from))
                        .with("ripup_victims", n.ripup_victims)
                })
                .collect(),
        );
        let degradations = Json::Arr(
            self.degradations
                .iter()
                .map(|d| {
                    Json::obj()
                        .with("kind", d.kind.as_str())
                        .with("net", d.net.as_deref().map(Json::from))
                        .with("stage", d.stage.as_deref().map(Json::from))
                        .with("routed", d.routed.map(Json::from))
                        .with("over_budget", d.over_budget.map(Json::from))
                        .with("nodes_expanded", d.nodes_expanded.map(Json::from))
                        .with("detail", d.detail.as_deref().map(Json::from))
                })
                .collect(),
        );
        let quality = Json::obj()
            .with("routed_nets", self.quality.routed_nets)
            .with("unrouted_nets", self.quality.unrouted_nets)
            .with("total_length", self.quality.total_length)
            .with("total_bends", self.quality.total_bends)
            .with("crossovers", self.quality.crossovers)
            .with("branch_points", self.quality.branch_points)
            .with("bounding_area", self.quality.bounding_area)
            .with("completion", self.quality.completion);
        Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("tool", self.tool.as_str())
            .with("network", network)
            .with("phases", phases)
            .with("nets", nets)
            .with("degradations", degradations)
            .with("quality", quality)
            .with("metrics", self.metrics.to_json())
            .with("is_clean", self.is_clean)
    }

    /// The pretty-printed JSON document (what `--report-json` writes).
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Reads a report back from its [`RunReport::to_json`] shape.
    ///
    /// Accepts schema versions 1 through [`SCHEMA_VERSION`] (older
    /// reports simply lack the later members). Anything else — or a
    /// document that is not an object — is an error naming what was
    /// wrong, so the `report diff` CLI can point at the offending
    /// file.
    pub fn from_json(json: &Json) -> Result<RunReport, String> {
        if json.as_obj().is_none() {
            return Err("report is not a JSON object".to_owned());
        }
        crate::json::expect_schema_version(json, 1, SCHEMA_VERSION)?;
        let mut report = RunReport {
            tool: json
                .get("tool")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            is_clean: json.get("is_clean").and_then(Json::as_bool).unwrap_or(false),
            ..RunReport::default()
        };
        if let Some(network) = json.get("network") {
            let field = |name: &str| network.get(name).and_then(Json::as_u64).unwrap_or(0) as usize;
            report.network = NetworkReport {
                modules: field("modules"),
                nets: field("nets"),
                system_terminals: field("system_terminals"),
            };
        }
        if let Some(phases) = json.get("phases").and_then(Json::as_arr) {
            for p in phases {
                report.phases.push(PhaseReport {
                    name: p.get("name").and_then(Json::as_str).unwrap_or_default().to_owned(),
                    wall_ns: p.get("wall_ns").and_then(Json::as_u64).unwrap_or(0),
                    p50_ns: p.get("p50_ns").and_then(Json::as_u64),
                    p90_ns: p.get("p90_ns").and_then(Json::as_u64),
                    max_ns: p.get("max_ns").and_then(Json::as_u64),
                    alloc_count: p.get("alloc_count").and_then(Json::as_u64),
                    alloc_bytes: p.get("alloc_bytes").and_then(Json::as_u64),
                    peak_bytes: p.get("peak_bytes").and_then(Json::as_u64),
                });
            }
        }
        if let Some(nets) = json.get("nets").and_then(Json::as_arr) {
            for n in nets {
                report.nets.push(NetReport {
                    net: n.get("net").and_then(Json::as_str).unwrap_or_default().to_owned(),
                    routed: n.get("routed").and_then(Json::as_bool).unwrap_or(false),
                    prerouted: n.get("prerouted").and_then(Json::as_bool).unwrap_or(false),
                    nodes_expanded: n.get("nodes_expanded").and_then(Json::as_u64).unwrap_or(0),
                    over_budget: n.get("over_budget").and_then(Json::as_bool).unwrap_or(false),
                    retried: n.get("retried").and_then(Json::as_bool).unwrap_or(false),
                    salvage: n.get("salvage").and_then(Json::as_str).map(str::to_owned),
                    ripup_victims: n.get("ripup_victims").and_then(Json::as_u64).unwrap_or(0) as u32,
                });
            }
        }
        if let Some(degradations) = json.get("degradations").and_then(Json::as_arr) {
            for d in degradations {
                report.degradations.push(DegradationReport {
                    kind: d.get("kind").and_then(Json::as_str).unwrap_or_default().to_owned(),
                    net: d.get("net").and_then(Json::as_str).map(str::to_owned),
                    stage: d.get("stage").and_then(Json::as_str).map(str::to_owned),
                    routed: d.get("routed").and_then(Json::as_bool),
                    over_budget: d.get("over_budget").and_then(Json::as_bool),
                    nodes_expanded: d.get("nodes_expanded").and_then(Json::as_u64),
                    detail: d.get("detail").and_then(Json::as_str).map(str::to_owned),
                });
            }
        }
        if let Some(quality) = json.get("quality") {
            let field = |name: &str| quality.get(name).and_then(Json::as_u64).unwrap_or(0);
            report.quality = QualityReport {
                routed_nets: field("routed_nets") as usize,
                unrouted_nets: field("unrouted_nets") as usize,
                total_length: field("total_length"),
                total_bends: field("total_bends"),
                crossovers: field("crossovers"),
                branch_points: field("branch_points"),
                bounding_area: field("bounding_area"),
                completion: quality.get("completion").and_then(Json::as_f64).unwrap_or(0.0),
            };
        }
        if let Some(metrics) = json.get("metrics") {
            report.metrics = MetricsSnapshot::from_json(metrics);
        }
        Ok(report)
    }

    /// The report with every wall-clock quantity zeroed: phase times
    /// and quantiles cleared and `*_ns` histograms dropped. What
    /// remains is bit-deterministic for a given input, which is what
    /// the committed `baselines/*.json` store — counters, per-net
    /// effort, degradations, quality, and allocation attribution
    /// survive; timings do not.
    pub fn normalized(&self) -> RunReport {
        let mut report = self.clone();
        for phase in &mut report.phases {
            phase.wall_ns = 0;
            phase.p50_ns = None;
            phase.p90_ns = None;
            phase.max_ns = None;
        }
        report.metrics.histograms.retain(|name, _| !name.ends_with("_ns"));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_helpers_keep_order() {
        let mut r = RunReport {
            tool: "netart".into(),
            ..RunReport::default()
        };
        r.push_phase("place", 10);
        r.push_phase("route", 20);
        r.push_phase_front("parse", 5);
        r.push_phase("emit", 1);
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["parse", "place", "route", "emit"]);
        assert_eq!(r.phase_ns("route"), Some(20));
        assert_eq!(r.phase_ns("nope"), None);
    }

    #[test]
    fn json_has_versioned_top_level() {
        let r = RunReport {
            tool: "eureka".into(),
            is_clean: true,
            ..RunReport::default()
        };
        let j = r.to_json();
        assert_eq!(j.get("schema_version"), Some(&Json::Uint(u64::from(SCHEMA_VERSION))));
        assert_eq!(j.get("tool"), Some(&Json::Str("eureka".into())));
        assert_eq!(j.get("is_clean"), Some(&Json::Bool(true)));
        for key in ["network", "phases", "nets", "degradations", "quality", "metrics"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn v3_alloc_members_round_trip() {
        let mut r = RunReport {
            tool: "netart".into(),
            ..RunReport::default()
        };
        r.push_phase("route", 9);
        r.phases[0].alloc_count = Some(41);
        r.phases[0].alloc_bytes = Some(1_024);
        r.phases[0].peak_bytes = Some(4_096);
        let rendered = r.to_json().render();
        assert!(rendered.contains(r#""alloc_bytes":1024"#), "{rendered}");
        let back = RunReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.phases[0].alloc_count, Some(41));
        assert_eq!(back.phases[0].alloc_bytes, Some(1_024));
        assert_eq!(back.phases[0].peak_bytes, Some(4_096));
        // Normalization zeroes timings but keeps the (deterministic)
        // allocation attribution.
        let normal = back.normalized();
        assert_eq!(normal.phases[0].wall_ns, 0);
        assert_eq!(normal.phases[0].alloc_bytes, Some(1_024));
    }

    #[test]
    fn unprofiled_phases_render_null_alloc_members() {
        let mut r = RunReport::default();
        r.push_phase("place", 1);
        let rendered = r.to_json().render();
        assert!(rendered.contains(r#""alloc_count":null"#), "{rendered}");
        assert!(rendered.contains(r#""peak_bytes":null"#), "{rendered}");
    }

    #[test]
    fn optional_members_render_as_null() {
        let r = RunReport {
            degradations: vec![DegradationReport {
                kind: "net_unrouted".into(),
                net: Some("clk".into()),
                stage: None,
                routed: None,
                over_budget: None,
                nodes_expanded: None,
                detail: None,
            }],
            ..RunReport::default()
        };
        let rendered = r.to_json().render();
        assert!(rendered.contains(r#""kind":"net_unrouted""#), "{rendered}");
        assert!(rendered.contains(r#""stage":null"#), "{rendered}");
    }
}
