//! The live telemetry registry behind `netart serve`'s `/metrics`
//! endpoint.
//!
//! Where [`Metrics`](crate::Metrics) is per-run and frozen into the
//! outcome, a [`Telemetry`] lives for the whole process and is shared
//! across threads: monotone counters (optionally labelled), gauges,
//! and histograms that keep **two** views of every series — a lifetime
//! [`Histogram`] whose buckets only ever grow (what Prometheus
//! exposition requires of a `histogram` type) and a rolling ring of
//! time slots whose aggregate answers "what were the quantiles over
//! the last minute" for `/stats`.
//!
//! The exposition is the hand-rolled Prometheus text format (version
//! `0.0.4`): `# TYPE` lines, `_total` counters, cumulative `le`
//! buckets with `+Inf`, `_sum` and `_count`. No dependencies, same as
//! the rest of the repo.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::Histogram;

/// How many ring slots a rolling histogram keeps.
const WINDOW_SLOTS: usize = 6;

/// How long one ring slot covers, in seconds. Six slots of ten
/// seconds: the window is "roughly the last minute".
const SLOT_SECONDS: u64 = 10;

/// One histogram series: the monotone lifetime view plus the rolling
/// window ring.
#[derive(Debug, Clone, Default)]
pub struct RollingHistogram {
    lifetime: Histogram,
    ring: [Histogram; WINDOW_SLOTS],
    /// The epoch (elapsed-seconds / slot-seconds) the ring head is at.
    head_epoch: u64,
}

impl RollingHistogram {
    /// Records one observation at the given epoch (slot index of
    /// wall-clock time). Slots older than the window are cleared as
    /// time advances; the lifetime histogram only grows.
    pub fn record_at(&mut self, epoch: u64, value: u64) {
        self.rotate_to(epoch);
        self.lifetime.record(value);
        self.ring[(epoch as usize) % WINDOW_SLOTS].record(value);
    }

    /// The monotone lifetime histogram (for exposition).
    pub fn lifetime(&self) -> &Histogram {
        &self.lifetime
    }

    /// The aggregate of the ring at the given epoch: everything
    /// observed in the last `WINDOW_SLOTS * SLOT_SECONDS` seconds.
    pub fn window_at(&mut self, epoch: u64) -> Histogram {
        self.rotate_to(epoch);
        let mut agg = Histogram::default();
        for slot in &self.ring {
            agg.merge(slot);
        }
        agg
    }

    fn rotate_to(&mut self, epoch: u64) {
        if epoch <= self.head_epoch {
            return;
        }
        let advanced = epoch - self.head_epoch;
        if advanced as usize >= WINDOW_SLOTS {
            self.ring = Default::default();
        } else {
            for e in (self.head_epoch + 1)..=epoch {
                self.ring[(e as usize) % WINDOW_SLOTS] = Histogram::default();
            }
        }
        self.head_epoch = epoch;
    }
}

/// The windowed quantiles `/stats` reports: counts plus bucket-bound
/// percentiles, clamped to the observed maximum so they are attainable
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSummary {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of the windowed observations.
    pub sum: u64,
    /// Upper bound on the windowed median.
    pub p50: u64,
    /// Upper bound on the windowed 90th percentile.
    pub p90: u64,
    /// Upper bound on the windowed 99th percentile.
    pub p99: u64,
}

impl WindowSummary {
    fn of(h: &Histogram) -> WindowSummary {
        WindowSummary {
            count: h.count(),
            sum: h.sum(),
            p50: h.quantile(0.50).min(h.max()),
            p90: h.quantile(0.90).min(h.max()),
            p99: h.quantile(0.99).min(h.max()),
        }
    }
}

/// A counter or gauge series: one value per label set (the empty label
/// set for plain series). Keys are rendered label strings
/// (`outcome="clean"`), kept sorted by the map for deterministic
/// exposition.
type LabelledSeries = BTreeMap<String, u64>;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, LabelledSeries>,
    gauges: BTreeMap<String, LabelledSeries>,
    histograms: BTreeMap<String, RollingHistogram>,
}

/// A process-lifetime, thread-safe metrics registry with Prometheus
/// text exposition.
///
/// # Examples
///
/// ```
/// let t = netart_obs::Telemetry::new();
/// t.inc("requests_total", &[("outcome", "clean")], 1);
/// t.set_gauge("queue_depth", 3);
/// t.observe("latency_ns", 1_500);
/// let text = t.render_prometheus();
/// assert!(text.contains("# TYPE requests_total counter"));
/// assert!(text.contains("requests_total{outcome=\"clean\"} 1"));
/// assert!(text.contains("queue_depth 3"));
/// assert!(text.contains("latency_ns_count 1"));
/// ```
pub struct Telemetry {
    inner: Mutex<Inner>,
    born: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An empty registry; the rolling-window clock starts now.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Mutex::new(Inner::default()),
            born: Instant::now(),
        }
    }

    fn epoch(&self) -> u64 {
        self.born.elapsed().as_secs() / SLOT_SECONDS
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means a panic mid-record; the maps
        // are still structurally sound, so keep serving metrics.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `by` to the counter named `name` with the given labels
    /// (pass `&[]` for an unlabelled counter). Counters are monotone;
    /// there is deliberately no way to decrement or reset one.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        let key = render_labels(labels);
        let mut inner = self.lock();
        *inner
            .counters
            .entry(name.to_owned())
            .or_default()
            .entry(key)
            .or_insert(0) += by;
    }

    /// Sets the gauge named `name` to `value`. Gauges are racy
    /// point-in-time snapshots, typically set just before a scrape.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.set_gauge_labelled(name, &[], value);
    }

    /// Sets a labelled gauge, as the `netart_build_info{version,git} 1`
    /// info-metric idiom needs. Pass `&[]` for a plain gauge.
    pub fn set_gauge_labelled(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = render_labels(labels);
        self.lock()
            .gauges
            .entry(name.to_owned())
            .or_default()
            .insert(key, value);
    }

    /// Records one observation into the named rolling histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let epoch = self.epoch();
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record_at(epoch, value);
    }

    /// The current value of a labelled counter (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = render_labels(labels);
        self.lock()
            .counters
            .get(name)
            .and_then(|series| series.get(&key))
            .copied()
            .unwrap_or(0)
    }

    /// The rolling-window quantiles of the named histogram (all zeros
    /// when the series does not exist or the window is empty).
    pub fn window_summary(&self, name: &str) -> WindowSummary {
        let epoch = self.epoch();
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => WindowSummary::of(&h.window_at(epoch)),
            None => WindowSummary::default(),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (`text/plain; version=0.0.4`). Counters come out as
    /// `counter` families, gauges as `gauge`, histograms as cumulative
    /// `le`-bucket `histogram` families built on the lifetime view (so
    /// every bucket count is monotone scrape over scrape).
    pub fn render_prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, series) in &inner.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (labels, value) in series {
                if labels.is_empty() {
                    let _ = writeln!(out, "{name} {value}");
                } else {
                    let _ = writeln!(out, "{name}{{{labels}}} {value}");
                }
            }
        }
        for (name, series) in &inner.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (labels, value) in series {
                if labels.is_empty() {
                    let _ = writeln!(out, "{name} {value}");
                } else {
                    let _ = writeln!(out, "{name}{{{labels}}} {value}");
                }
            }
        }
        for (name, series) in &inner.histograms {
            let h = series.lifetime();
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            let buckets = h.buckets();
            // Every log-2 bucket up to the highest one ever used plus
            // one, so the layout is stable once observations arrive
            // and short for idle series.
            let top = buckets
                .iter()
                .rposition(|&n| n > 0)
                .map_or(0, |i| (i + 1).min(63));
            for (i, &n) in buckets.iter().enumerate().take(top + 1) {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    Histogram::bucket_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

/// Renders a label set as it appears between the exposition braces:
/// `key="value",key2="value2"`, values escaped per the format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let t = Telemetry::new();
        t.inc("req_total", &[("outcome", "clean")], 1);
        t.inc("req_total", &[("outcome", "clean")], 2);
        t.inc("req_total", &[("outcome", "failed")], 1);
        t.inc("plain_total", &[], 5);
        assert_eq!(t.counter("req_total", &[("outcome", "clean")]), 3);
        assert_eq!(t.counter("req_total", &[("outcome", "failed")]), 1);
        assert_eq!(t.counter("plain_total", &[]), 5);
        assert_eq!(t.counter("absent_total", &[]), 0);
    }

    #[test]
    fn exposition_has_types_labels_and_cumulative_buckets() {
        let t = Telemetry::new();
        t.inc("req_total", &[("outcome", "clean")], 2);
        t.set_gauge("depth", 4);
        for v in [1u64, 3, 3, 200] {
            t.observe("lat_ns", v);
        }
        let text = t.render_prometheus();
        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total{outcome=\"clean\"} 2"), "{text}");
        assert!(text.contains("# TYPE depth gauge\ndepth 4"), "{text}");
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        // Cumulative buckets: le="1" sees one observation, le="3" all
        // three small ones, +Inf everything.
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_ns_sum 207"), "{text}");
        assert!(text.contains("lat_ns_count 4"), "{text}");

        // Bucket counts are monotone non-decreasing down the family.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn labelled_gauges_render_like_info_metrics() {
        let t = Telemetry::new();
        t.set_gauge_labelled(
            "netart_build_info",
            &[("version", "1.2.3"), ("git", "unknown")],
            1,
        );
        t.set_gauge("netart_serve_start_time_seconds", 1_700_000_000);
        let text = t.render_prometheus();
        assert!(text.contains("# TYPE netart_build_info gauge"), "{text}");
        assert!(
            text.contains("netart_build_info{version=\"1.2.3\",git=\"unknown\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("netart_serve_start_time_seconds 1700000000"),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            render_labels(&[("k", "a\"b\\c\nd")]),
            "k=\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn rolling_window_forgets_old_slots_but_lifetime_does_not() {
        let mut h = RollingHistogram::default();
        h.record_at(0, 10);
        h.record_at(1, 20);
        assert_eq!(h.window_at(1).count(), 2);
        // Advance past the whole window: the ring is empty, the
        // lifetime view still remembers.
        let far = (WINDOW_SLOTS as u64) + 2;
        assert_eq!(h.window_at(far).count(), 0);
        assert_eq!(h.lifetime().count(), 2);
        // New observations land in the fresh window.
        h.record_at(far, 30);
        assert_eq!(h.window_at(far).count(), 1);
        assert_eq!(h.lifetime().count(), 3);
    }

    #[test]
    fn partial_rotation_clears_only_expired_slots() {
        let mut h = RollingHistogram::default();
        h.record_at(0, 1);
        h.record_at(2, 2);
        // Epoch WINDOW_SLOTS reuses slot 0, expiring only it.
        let e = WINDOW_SLOTS as u64;
        assert_eq!(h.window_at(e).count(), 1, "slot 2's observation survives");
        h.record_at(e, 3);
        assert_eq!(h.window_at(e).count(), 2);
    }

    #[test]
    fn window_expires_samples_exactly_at_the_boundary() {
        let mut h = RollingHistogram::default();
        h.record_at(0, 100);
        // One epoch short of a full window: the slot-0 sample is still
        // inside and drives the quantiles.
        let last_inside = WINDOW_SLOTS as u64 - 1;
        let w = h.window_at(last_inside);
        assert_eq!(w.count(), 1);
        assert!(WindowSummary::of(&w).p99 >= 100);
        // Exactly one more epoch reuses slot 0 and must expire it: the
        // 60s-old sample no longer contributes to any quantile.
        let w = h.window_at(last_inside + 1);
        assert_eq!(w.count(), 0, "boundary epoch must drop the expired slot");
        assert_eq!(WindowSummary::of(&w), WindowSummary::default());
    }

    #[test]
    fn empty_window_quantiles_never_panic() {
        let mut h = RollingHistogram::default();
        // Never-recorded ring.
        let s = WindowSummary::of(&h.window_at(0));
        assert_eq!(s, WindowSummary::default());
        // Recorded once, then rotated far past the window: empty again.
        h.record_at(0, 42);
        let s = WindowSummary::of(&h.window_at(WINDOW_SLOTS as u64 * 3));
        assert_eq!((s.count, s.p50, s.p90, s.p99), (0, 0, 0, 0));
        // And via the registry path, which is what `/stats` calls.
        let t = Telemetry::new();
        t.observe("lat", 7);
        assert_eq!(t.window_summary("never_observed"), WindowSummary::default());
    }

    #[test]
    fn time_never_rotates_backwards() {
        let mut h = RollingHistogram::default();
        h.record_at(5, 1);
        h.record_at(3, 2); // a late record lands in the current window
        assert_eq!(h.window_at(5).count(), 2);
    }

    #[test]
    fn window_summary_quantiles_are_clamped_bucket_bounds() {
        let t = Telemetry::new();
        for _ in 0..99 {
            t.observe("h", 10);
        }
        t.observe("h", 1000);
        let s = t.window_summary("h");
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 15, "bucket upper bound of 10");
        assert_eq!(s.p90, 15);
        assert_eq!(s.p99, 15);
        assert_eq!(t.window_summary("absent"), WindowSummary::default());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let t = std::sync::Arc::new(Telemetry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                scope.spawn(move || {
                    for _ in 0..100 {
                        t.inc("n_total", &[], 1);
                        t.observe("h", 7);
                    }
                });
            }
        });
        assert_eq!(t.counter("n_total", &[]), 400);
        assert_eq!(t.window_summary("h").count, 400);
    }
}
