//! `netart serve` — a hardened resident diagram service.
//!
//! The batch engine answers "run this list and exit"; serving answers
//! "stay up and answer diagram requests until told to stop". The
//! robustness posture is the point, not the transport:
//!
//! * **admission control** — requests pass through the engine
//!   [`Service`]'s bounded queue; a full queue sheds with `429
//!   Retry-After` instead of queueing unboundedly, and a declared
//!   body over the cap is refused with `413` before it is buffered;
//! * **deadline propagation** — each request's `timeout_ms` (capped
//!   by the server-side ceiling) becomes the service deadline *and*
//!   the per-net routing budget ceiling, so the watchdog trips the
//!   request's [`CancelToken`](netart::route::CancelToken) and the
//!   router surfaces mid-expansion; the client gets a structured
//!   degraded response, not a hung connection;
//! * **content-addressed artifact cache** — the response artifacts
//!   are keyed by a hash of the line-normalized input plus the
//!   rendering options; concurrent identical requests coalesce onto
//!   one computation ([`SingleFlight`]) and replays are byte-identical
//!   ([`ByteCache`], byte-budgeted LRU);
//! * **lifecycle** — `/healthz` says the process is alive, `/readyz`
//!   flips to `503` the moment SIGINT/SIGTERM arrives, in-flight work
//!   drains within the grace bound, and a panicking request answers
//!   `500` while the listener lives on;
//! * **live telemetry** — `GET /metrics` exposes the
//!   [`Telemetry`] registry in Prometheus text exposition (counters
//!   by outcome, queue/cache gauges, latency and routing-effort
//!   histograms), `--access-log` appends one JSON line per request
//!   (request id, cache outcome, deadline fate, phase timings), and
//!   the same request id stamps the `tracing` spans so a
//!   `--trace-out` Perfetto trace correlates line-for-line with the
//!   access log. A fault at `serve.telemetry` degrades to "metrics
//!   unavailable" — observing a request never fails it.
//!
//! The response taxonomy mirrors the CLI exit codes: exit `0`/`2`/`1`
//! become `200` clean / `200` degraded / `422` (rejected input) or
//! `500` (pipeline failure), each carrying a [`ServeReport`] body
//! with the full run report inline.

use std::fs::File;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::os::fd::FromRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use netart::netlist::doctor::{self, DoctorCode, InputPolicy};
use netart::netlist::ingest::records_from_str;
use netart::netlist::Library;
use netart_govern::MemBudget;
use netart::obs::{
    AllocSnapshot, CacheOutcome, FlightHandle, FlightRecorder, Json, ServeReport, ServeStats,
    ServeStatus, Telemetry,
};
use netart::place::PlaceConfig;
use netart::route::{Budget, NetOrder, RouteConfig};
use netart::diagram::svg;
use netart_engine::{ByteCache, JobContext, Service, ServiceConfig, SingleFlight, SubmitError, TicketOutcome};

use crate::commands::{
    arm_faults, budget_from_args, budgets_from_args, checked_escher, cli_degradation,
    doctor_degradations, exhausted_output, input_policy, install_subscriber_with, ns, parse_bytes,
    write_trace, CliError, RunOutput,
};
use crate::http::{read_request, respond, RequestError};
use crate::shard::{FleetView, ShardRuntime};
use crate::{ArgError, ParsedArgs};

/// How long a connection may dribble its request before the read
/// times out — bounds slow-loris clients without a reactor.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// The idle tick of the accept loop (non-blocking accept poll and
/// drain-signal check).
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// Fixed per-entry overhead charged to the cache budget on top of the
/// artifact bytes (key, map entry, report structure).
const CACHE_ENTRY_OVERHEAD: usize = 512;

/// Requests by final outcome (`outcome` ∈ clean, degraded, failed,
/// shed, drain_reject, panic).
const M_REQUESTS: &str = "netart_serve_requests_total";
/// Cache consultations by result (`result` ∈ hit, miss, coalesced).
const M_CACHE: &str = "netart_serve_cache_requests_total";
/// Requests whose deadline cancelled the pipeline mid-run.
const M_DEADLINE: &str = "netart_serve_deadline_cancelled_total";
/// Telemetry recording attempts lost to an injected `serve.telemetry`
/// fault (the observed request itself is unaffected).
const M_TELEMETRY_FAULTS: &str = "netart_serve_telemetry_faults_total";
/// End-to-end request latency (parse to framed reply), nanoseconds.
const M_LATENCY: &str = "netart_serve_request_latency_ns";
/// Routing-phase wall time per computed request, nanoseconds.
const M_ROUTE_WALL: &str = "netart_serve_route_wall_ns";
/// Search nodes expanded per computed request.
const M_NODES: &str = "netart_serve_nodes_expanded";
/// Time a job waited in the admission queue, nanoseconds.
const M_QUEUE_WAIT: &str = "netart_serve_queue_wait_ns";
/// Requests refused because the `--memory-budget` governor had no room
/// (at admission or mid-parse). Each refusal answered `503
/// Retry-After`; the budget frees as in-flight work completes.
const M_MEM_REJECTIONS: &str = "netart_serve_mem_rejections_total";
/// Sharded mode only: cumulative worker respawns across the fleet, as
/// broadcast by the supervisor.
const M_SHARD_RESTARTS: &str = "netart_serve_shard_restarts_total";
/// Sharded mode only: per-shard liveness gauge (`shard` label; 1 live,
/// 0 down or quarantined), as broadcast by the supervisor.
const M_SHARD_LIVE: &str = "netart_serve_shard_live";

/// The rendering options a request may set, resolved against the
/// server's defaults. The deadline is deliberately *not* part of the
/// cache identity — the artifact a timeout produces is the same
/// artifact, just slower.
#[derive(Clone, Copy)]
struct RenderOptions {
    margin: i32,
    order: NetOrder,
}

/// One admitted diagram job, as the worker pool sees it.
struct DiagramJob {
    /// The request id, stamped on the worker's span and on any
    /// deadline-cancellation degradation so traces, access-log lines
    /// and response bodies correlate.
    rid: String,
    net: String,
    cal: String,
    io: Option<String>,
    options: RenderOptions,
    timeout: Duration,
    artifact: String,
}

/// What one pipeline run produced, before HTTP framing.
struct Computed {
    report: ServeReport,
    /// `true` for doctor rejections (`422`), `false` for pipeline
    /// failures (`500`). Meaningless unless the status is `Failed`.
    rejected: bool,
    /// Deterministic results may be cached; a deadline-cancelled run
    /// is timing-dependent and must be recomputed next time.
    cacheable: bool,
    deadline_cancelled: bool,
    /// The memory governor refused the parse (`ND015`): answer `503
    /// Retry-After`, not `422` — the input may fit once in-flight work
    /// releases its charges.
    exhausted: bool,
}

/// How a flight (one admission attempt shared by coalesced callers)
/// resolved.
enum FlightResult {
    Done(Box<Computed>),
    Shed,
    Draining,
    Panicked(String),
}

/// Everything the handler needs per request; cloned cheaply off the
/// server state (the library is the only real payload).
struct HandlerState {
    library: Library,
    policy: InputPolicy,
    base_budget: Budget,
    telemetry: Arc<Telemetry>,
    /// The process-wide `--memory-budget` governor; each job parses
    /// under a snapshot of its remaining room.
    mem_budget: Arc<MemBudget>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    clean: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    too_large: AtomicU64,
    drain_rejects: AtomicU64,
    deadline_cancelled: AtomicU64,
    panics: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
}

struct ServerState {
    service: Service<DiagramJob, Computed>,
    flight: SingleFlight<String, Arc<FlightResult>>,
    cache: ByteCache<String, Arc<ServeReport>>,
    counters: Counters,
    telemetry: Arc<Telemetry>,
    /// Monotonic request-id source (`r000000`, `r000001`, …; shard
    /// workers prefix their index: `s2-r000000`, …).
    seq: AtomicU64,
    /// The request-id prefix: `"r"` single-process, `"s{k}-r"` for
    /// shard worker `k` — keeps rids globally unique across the fleet
    /// in access logs and tracing spans.
    rid_prefix: String,
    /// Worker-mode shard identity and the supervisor-fed fleet view;
    /// `None` in the ordinary single-process mode.
    shard: Option<ShardRuntime>,
    /// The `--access-log` sink; one JSON line per diagram request.
    access_log: Option<Mutex<File>>,
    ready: AtomicBool,
    default_timeout: Duration,
    timeout_ceiling: Duration,
    max_body: usize,
    /// The `--memory-budget` governor: request bodies lease their
    /// bytes here for the life of the connection, and each job's parse
    /// runs under a snapshot of the remaining room.
    mem_budget: Arc<MemBudget>,
    default_options: RenderOptions,
    /// Handle onto the always-on flight recorder ring; frozen into a
    /// blackbox dump on panic, deadline breach, request fault, or
    /// SIGUSR1.
    recorder: FlightHandle,
    /// Where blackbox dumps land (`--blackbox`, default
    /// `blackbox.json`). The latest incident wins.
    blackbox_path: PathBuf,
    /// Whether `GET /debug/flight` is answered (`--debug-endpoints`);
    /// off by default so production deployments don't expose ring
    /// internals.
    debug_endpoints: bool,
}

/// Freezes the flight ring into the blackbox file. A faulted or
/// failed write must never disturb the request that triggered it: it
/// degrades to `false`, and the `flight_dump_failed` note is carried
/// by the ring into every later dump. Request-path callers surface
/// the same note in the response they were building.
fn dump_blackbox(state: &ServerState, reason: &str, rid: Option<&str>) -> bool {
    let dump = state.recorder.snapshot(reason, rid);
    let ok = crate::blackbox::write_dump(&state.blackbox_path, &dump);
    if !ok {
        state.recorder.note_degradation("flight_dump_failed");
    }
    ok
}

/// FNV-1a, the content-address hash: deterministic, dependency-free,
/// and plenty for a cache key spread.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn feed(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Hashes `text` line-normalized: trailing whitespace (CR
    /// included) stripped, blank lines dropped. Two spellings of the
    /// same netlist address the same artifact.
    fn feed_normalized(&mut self, text: &str) {
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            self.feed(line.as_bytes());
            self.feed(b"\n");
        }
    }

    fn separator(&mut self) {
        self.feed(&[0xff]);
    }
}

/// The content address of one request: normalized input plus the
/// options that change the artifact.
fn artifact_key(net: &str, cal: &str, io: Option<&str>, options: &RenderOptions) -> String {
    let mut h = Fnv::new();
    h.feed_normalized(net);
    h.separator();
    h.feed_normalized(cal);
    h.separator();
    h.feed_normalized(io.unwrap_or(""));
    h.separator();
    h.feed(format!("m={};order={:?}", options.margin, options.order).as_bytes());
    format!("{:016x}", h.0)
}

/// The pipeline, request-scoped: doctor → place → route (under the
/// request's token and budget ceiling) → checked emit. Runs on a
/// service worker under `catch_unwind`; a panic here is the worker's
/// problem, not the listener's.
fn handle_job(state: &HandlerState, job: DiagramJob, ctx: &JobContext) -> Computed {
    // The worker span carries the request id, so a Perfetto trace
    // correlates with the access-log line for the same request.
    let span = tracing::span!(tracing::Level::INFO, "serve.job", rid = job.rid.as_str());
    let _guard = span.enter();

    // The canonical "my handler exploded" site: inside the worker's
    // catch_unwind, so an injected panic must answer `500` and leave
    // the listener serving.
    if let Some(kind) = netart_fault::fire(netart_fault::sites::SERVE_REQUEST) {
        return Computed {
            report: ServeReport::failure(format!("injected {kind} fault at `serve.request`")),
            rejected: false,
            cacheable: false,
            deadline_cancelled: false,
            exhausted: false,
        };
    }

    let mut degs = Vec::new();
    let t_doctor = Instant::now();
    // The parse is governed by a snapshot of the global budget's
    // remaining room: the network this job materialises may not exceed
    // what the process has left. The snapshot is private to the job,
    // so its charges die with the network — nothing to release.
    let parse_budget = Arc::new(MemBudget::bytes(state.mem_budget.remaining()));
    let network = match doctor::doctor_network_records(
        state.library.clone(),
        records_from_str(&job.net),
        records_from_str(&job.cal),
        job.io.as_deref().map(records_from_str),
        state.policy,
        &parse_budget,
    ) {
        Ok((network, report)) => {
            doctor_degradations(Path::new("request"), &report, &mut degs);
            network
        }
        Err(e) => {
            let exhausted = e
                .diagnostics
                .iter()
                .any(|d| d.code == DoctorCode::ResourceExhausted);
            let verb = if exhausted { "refused" } else { "rejected" };
            return Computed {
                report: ServeReport::failure(format!("input {verb}: {e}")),
                rejected: !exhausted,
                cacheable: false,
                deadline_cancelled: false,
                exhausted,
            };
        }
    };
    let doctor_ns = ns(t_doctor.elapsed());

    // The deadline both bounds the whole request (the service
    // watchdog trips the token) and ceilings the per-net routing
    // budget, so a single pathological net cannot eat the allowance
    // the client gave the whole diagram.
    let route = RouteConfig::new()
        .with_margin(job.options.margin)
        .with_order(job.options.order)
        .with_budget(state.base_budget.with_time_ceiling(job.timeout))
        .with_cancel(ctx.cancel.clone());
    // Heap attribution window for this job (a no-op stub unless the
    // binary was built with `--features alloc-profile`). The phase
    // counters are process-global, so with several workers a
    // concurrent job's traffic blurs into this window — serve-side
    // numbers are a heat map, not an audit; `netart --report-json`
    // single runs are the precise ones.
    let alloc_base = AllocSnapshot::capture();
    let outcome = netart::Generator::new()
        .with_placing(PlaceConfig::new())
        .with_routing(route)
        .generate(network);
    let deadline_cancelled = ctx.cancel.is_cancelled();

    let t_emit = Instant::now();
    let escher = match checked_escher("netart_serve", &outcome.diagram, &mut degs) {
        Ok(text) => text,
        Err(e) => {
            return Computed {
                report: ServeReport::failure(format!("emit failed: {e}")),
                rejected: false,
                cacheable: false,
                deadline_cancelled,
                exhausted: false,
            }
        }
    };
    let svg = svg::render_with_structure(&outcome.diagram);

    let mut run_report = outcome.run_report("netart serve");
    run_report.push_phase_front("doctor", doctor_ns);
    run_report.push_phase("emit", ns(t_emit.elapsed()));
    netart::obs::attach_alloc_profile(&mut run_report, &alloc_base);
    if deadline_cancelled {
        degs.push(cli_degradation(
            "deadline_cancelled",
            Some("route".to_owned()),
            format!(
                "request {} deadline of {:?} cancelled the pipeline mid-run; the diagram is truncated",
                job.rid, job.timeout
            ),
        ));
    }
    for d in &degs {
        run_report.push_degradation(d.clone());
    }

    // Worker-side effort histograms. Fault-guarded: losing a sample
    // must never lose the request.
    record_telemetry(&state.telemetry, |t| {
        if let Some(route_ns) = run_report.phase_ns("route") {
            t.observe(M_ROUTE_WALL, route_ns);
        }
        t.observe(M_NODES, run_report.nets.iter().map(|n| n.nodes_expanded).sum::<u64>());
        t.observe(M_QUEUE_WAIT, ns(ctx.queue_wait));
        // Present only under `--features alloc-profile`: per-phase
        // heap traffic histograms, one series per phase name.
        for p in &run_report.phases {
            if let Some(bytes) = p.alloc_bytes {
                t.observe(&format!("netart_serve_alloc_bytes_{}", p.name), bytes);
            }
        }
    });

    let degraded = !outcome.is_clean() || !degs.is_empty();
    Computed {
        report: ServeReport {
            status: if degraded {
                ServeStatus::Degraded
            } else {
                ServeStatus::Clean
            },
            cache: CacheOutcome::Miss,
            artifact: job.artifact,
            escher,
            svg,
            error: None,
            report: Some(run_report),
        },
        rejected: false,
        cacheable: !deadline_cancelled,
        deadline_cancelled,
        exhausted: false,
    }
}

/// A `get` that survives an injected `serve.cache` fault: any fired
/// kind (panic included) degrades to a miss — recompute rather than
/// crash or serve garbage.
fn cache_get(state: &ServerState, key: &str) -> Option<Arc<ServeReport>> {
    catch_unwind(AssertUnwindSafe(|| {
        if netart_fault::fire(netart_fault::sites::SERVE_CACHE).is_some() {
            return None;
        }
        state.cache.get(&key.to_owned())
    }))
    .unwrap_or(None)
}

/// A `put` that survives an injected `serve.cache` fault: the insert
/// is skipped, the response already computed is unaffected.
fn cache_put(state: &ServerState, key: String, report: &ServeReport) {
    let bytes = report.escher.len() + report.svg.len() + key.len() + CACHE_ENTRY_OVERHEAD;
    let value = Arc::new(report.clone());
    let _ = catch_unwind(AssertUnwindSafe(|| {
        if netart_fault::fire(netart_fault::sites::SERVE_CACHE).is_some() {
            return;
        }
        state.cache.put(key, value, bytes);
    }));
}

/// Runs a telemetry-recording block under the `serve.telemetry` fault
/// site. Any fired kind (panic included) degrades to "sample lost":
/// the fault counter is bumped and the request being observed is
/// never affected.
fn record_telemetry(telemetry: &Telemetry, record: impl FnOnce(&Telemetry)) {
    let faulted = catch_unwind(AssertUnwindSafe(|| {
        if netart_fault::fire(netart_fault::sites::SERVE_TELEMETRY).is_some() {
            return true;
        }
        record(telemetry);
        false
    }))
    .unwrap_or(true);
    if faulted {
        telemetry.inc(M_TELEMETRY_FAULTS, &[], 1);
    }
}

/// One access-log line in the making: filled in by [`handle_diagram`]
/// as the request resolves, framed as JSON by [`access_json`].
struct AccessRecord {
    rid: String,
    outcome: &'static str,
    http_status: u16,
    cache: &'static str,
    artifact: String,
    deadline_cancelled: bool,
    latency_ns: u64,
    phases: Vec<(String, u64)>,
}

impl AccessRecord {
    fn new(rid: String) -> Self {
        AccessRecord {
            rid,
            outcome: "failed",
            http_status: 0,
            cache: "none",
            artifact: String::new(),
            deadline_cancelled: false,
            latency_ns: 0,
            phases: Vec::new(),
        }
    }
}

fn outcome_str(status: ServeStatus) -> &'static str {
    match status {
        ServeStatus::Clean => "clean",
        ServeStatus::Degraded => "degraded",
        ServeStatus::Failed => "failed",
    }
}

/// The access-log schema, one object per line: identity (`rid`,
/// `artifact`), verdict (`outcome`, `http_status`, `cache`,
/// `deadline_cancelled`), cost (`latency_ns`, per-phase wall times).
/// Strip the `*_ns` members and single-worker replays of the same
/// request sequence compare byte-identical.
fn access_json(acc: &AccessRecord) -> String {
    let phases = Json::Arr(
        acc.phases
            .iter()
            .map(|(name, wall_ns)| {
                Json::obj()
                    .with("name", name.as_str())
                    .with("wall_ns", *wall_ns)
            })
            .collect(),
    );
    Json::obj()
        .with("rid", acc.rid.as_str())
        .with("outcome", acc.outcome)
        .with("http_status", u64::from(acc.http_status))
        .with("cache", acc.cache)
        .with("artifact", acc.artifact.as_str())
        .with("deadline_cancelled", acc.deadline_cancelled)
        .with("latency_ns", acc.latency_ns)
        .with("phases", phases)
        .render()
}

/// Appends one line to the `--access-log` sink, if configured. Lock
/// poisoning and write errors are swallowed: the log is diagnostics,
/// the response is the product.
fn write_access_log(state: &ServerState, acc: &AccessRecord) {
    if let Some(log) = &state.access_log {
        let line = access_json(acc);
        if let Ok(mut file) = log.lock() {
            let _ = writeln!(file, "{line}");
        }
    }
}

fn count(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn count_status(counters: &Counters, status: ServeStatus) {
    match status {
        ServeStatus::Clean => count(&counters.clean),
        ServeStatus::Degraded => count(&counters.degraded),
        ServeStatus::Failed => count(&counters.failed),
    }
}

/// One framed response: status code, content type, extra headers,
/// body.
struct HttpReply {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl HttpReply {
    fn json(status: u16, body: String) -> Self {
        HttpReply {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    fn text(status: u16, content_type: &'static str, body: String) -> Self {
        HttpReply {
            status,
            content_type,
            headers: Vec::new(),
            body,
        }
    }

    fn report(status: u16, report: &ServeReport) -> Self {
        HttpReply::json(status, report.to_json_string())
    }
}

/// `POST /v1/diagram`: parse the request document, consult the cache,
/// coalesce with identical concurrent requests, admit through the
/// bounded queue, frame the outcome. Fills `acc` for the access log
/// as the request resolves.
fn handle_diagram(state: &Arc<ServerState>, body: &[u8], acc: &mut AccessRecord) -> HttpReply {
    count(&state.counters.requests);

    let parsed = std::str::from_utf8(body)
        .map_err(|_| "request body is not UTF-8".to_owned())
        .and_then(|text| Json::parse(text).map_err(|e| format!("request body is not JSON: {e}")));
    let doc = match parsed {
        Ok(doc) => doc,
        Err(message) => {
            count(&state.counters.failed);
            return HttpReply::report(400, &ServeReport::failure(message));
        }
    };
    let field = |name: &str| doc.get(name).and_then(Json::as_str).map(str::to_owned);
    let (Some(net), Some(cal)) = (field("net"), field("cal")) else {
        count(&state.counters.failed);
        return HttpReply::report(
            422,
            &ServeReport::failure(
                "request must carry string members `net` and `cal` (optionally `io`, `options`)",
            ),
        );
    };
    let io = field("io");
    let options_doc = doc.get("options");
    let opt = |name: &str| options_doc.and_then(|o| o.get(name));
    let margin = match opt("margin").map(|j| j.as_u64().ok_or(())) {
        None => state.default_options.margin,
        Some(Ok(m)) if i32::try_from(m).is_ok() => m as i32,
        _ => {
            count(&state.counters.failed);
            return HttpReply::report(
                422,
                &ServeReport::failure("options.margin must be a small non-negative integer"),
            );
        }
    };
    let order = match opt("order").and_then(Json::as_str) {
        None => state.default_options.order,
        Some("def") => NetOrder::Definition,
        Some("most") => NetOrder::MostPinsFirst,
        Some("few") => NetOrder::FewestPinsFirst,
        Some(other) => {
            count(&state.counters.failed);
            return HttpReply::report(
                422,
                &ServeReport::failure(format!(
                    "options.order must be def|most|few, not {other:?}"
                )),
            );
        }
    };
    let timeout = match opt("timeout_ms").map(|j| j.as_u64().ok_or(())) {
        None | Some(Ok(0)) => state.default_timeout,
        Some(Ok(ms)) => Duration::from_millis(ms),
        Some(Err(())) => {
            count(&state.counters.failed);
            return HttpReply::report(
                422,
                &ServeReport::failure("options.timeout_ms must be a non-negative integer"),
            );
        }
    }
    .min(state.timeout_ceiling);

    let options = RenderOptions { margin, order };
    let key = artifact_key(&net, &cal, io.as_deref(), &options);
    acc.artifact = key.clone();

    if let Some(cached) = cache_get(state, &key) {
        count(&state.counters.cache_hits);
        count_status(&state.counters, cached.status);
        acc.outcome = outcome_str(cached.status);
        acc.cache = "hit";
        if let Some(run) = &cached.report {
            acc.phases = run.phases.iter().map(|p| (p.name.clone(), p.wall_ns)).collect();
        }
        let mut report = (*cached).clone();
        report.cache = CacheOutcome::Hit;
        return HttpReply::report(200, &report);
    }

    if !state.ready.load(Ordering::Acquire) {
        count(&state.counters.drain_rejects);
        acc.outcome = "drain_reject";
        return HttpReply::report(503, &ServeReport::failure("draining: not accepting work"));
    }

    let job = DiagramJob {
        rid: acc.rid.clone(),
        net,
        cal,
        io,
        options,
        timeout,
        artifact: key.clone(),
    };
    let (result, leads) = state.flight.run(&key, || {
        match state.service.submit(job, Some(timeout)) {
            Err(SubmitError::Busy) => Arc::new(FlightResult::Shed),
            Err(SubmitError::Draining) => Arc::new(FlightResult::Draining),
            Ok((ticket, _token)) => match ticket.wait() {
                TicketOutcome::Panicked(message) => Arc::new(FlightResult::Panicked(message)),
                TicketOutcome::Finished(computed) => {
                    // Insert while the flight is still open: anyone
                    // arriving after the flight resolves must find the
                    // cache already warm (no recompute window).
                    if computed.cacheable && computed.report.status != ServeStatus::Failed {
                        cache_put(state, key.clone(), &computed.report);
                    }
                    Arc::new(FlightResult::Done(Box::new(computed)))
                }
            },
        }
    });

    match &*result {
        FlightResult::Done(computed) => {
            let outcome = if leads {
                count(&state.counters.cache_misses);
                acc.cache = "miss";
                CacheOutcome::Miss
            } else {
                count(&state.counters.coalesced);
                acc.cache = "coalesced";
                CacheOutcome::Coalesced
            };
            count_status(&state.counters, computed.report.status);
            if computed.deadline_cancelled {
                count(&state.counters.deadline_cancelled);
            }
            acc.outcome = outcome_str(computed.report.status);
            acc.deadline_cancelled = computed.deadline_cancelled;
            if let Some(run) = &computed.report.report {
                acc.phases = run.phases.iter().map(|p| (p.name.clone(), p.wall_ns)).collect();
            }
            let mut report = computed.report.clone();
            report.cache = outcome;
            // Post-mortem triggers, leader-only so one incident leaves
            // one dump: a deadline breach or a 500-class failure (the
            // `serve.request` fault lands here) freezes the flight
            // ring. A faulted or failed dump write never disturbs the
            // response — it surfaces as a `flight_dump_failed`
            // degradation in the very report being returned.
            let dump_reason = if computed.deadline_cancelled {
                Some("deadline")
            } else if report.status == ServeStatus::Failed
                && !computed.rejected
                && !computed.exhausted
            {
                Some("fault")
            } else {
                None
            };
            if let (true, Some(reason)) = (leads, dump_reason) {
                if !dump_blackbox(state, reason, Some(&acc.rid)) {
                    if let Some(run) = report.report.as_mut() {
                        run.push_degradation(cli_degradation(
                            "flight_dump_failed",
                            None,
                            format!(
                                "blackbox dump for request {} could not be written",
                                acc.rid
                            ),
                        ));
                    }
                }
            }
            if computed.exhausted {
                // The governor, not the input, said no: the same
                // request may fit once in-flight work releases its
                // charges, so answer retryable 503, not final 422.
                acc.outcome = "mem_reject";
                record_telemetry(&state.telemetry, |t| t.inc(M_MEM_REJECTIONS, &[], 1));
                let mut reply = HttpReply::report(503, &report);
                reply.headers.push(("Retry-After", "1".to_owned()));
                return reply;
            }
            let status = match report.status {
                ServeStatus::Clean | ServeStatus::Degraded => 200,
                ServeStatus::Failed if computed.rejected => 422,
                ServeStatus::Failed => 500,
            };
            HttpReply::report(status, &report)
        }
        FlightResult::Shed => {
            count(&state.counters.shed);
            acc.outcome = "shed";
            let mut reply = HttpReply::report(
                429,
                &ServeReport::failure("saturated: the admission queue is full; retry shortly"),
            );
            reply.headers.push(("Retry-After", "1".to_owned()));
            reply
        }
        FlightResult::Draining => {
            count(&state.counters.drain_rejects);
            acc.outcome = "drain_reject";
            HttpReply::report(503, &ServeReport::failure("draining: not accepting work"))
        }
        FlightResult::Panicked(message) => {
            count(&state.counters.panics);
            count(&state.counters.failed);
            acc.outcome = "panic";
            if leads {
                dump_blackbox(state, "panic", Some(&acc.rid));
            }
            HttpReply::report(
                500,
                &ServeReport::failure(format!("request handler panicked: {message}")),
            )
        }
    }
}

fn stats_snapshot(state: &ServerState) -> ServeStats {
    let cache = state.cache.stats();
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let win = state.telemetry.window_summary(M_LATENCY);
    let (shard_live, shard_restarts) = match &state.shard {
        Some(s) => (s.fleet.live_count() as u64, s.fleet.restarts()),
        None => (0, 0),
    };
    ServeStats {
        shard_live,
        shard_restarts,
        requests: load(&state.counters.requests),
        clean: load(&state.counters.clean),
        degraded: load(&state.counters.degraded),
        failed: load(&state.counters.failed),
        shed: load(&state.counters.shed),
        too_large: load(&state.counters.too_large),
        drain_rejects: load(&state.counters.drain_rejects),
        deadline_cancelled: load(&state.counters.deadline_cancelled),
        panics: load(&state.counters.panics),
        cache_hits: load(&state.counters.cache_hits),
        cache_misses: load(&state.counters.cache_misses),
        coalesced: load(&state.counters.coalesced),
        cache_bytes: cache.bytes as u64,
        cache_entries: cache.entries as u64,
        in_flight: state.service.in_flight() as u64,
        queued: state.service.queued() as u64,
        win_latency_count: win.count,
        win_latency_p50_ns: win.p50,
        win_latency_p90_ns: win.p90,
        win_latency_p99_ns: win.p99,
    }
}

/// `GET /metrics`: refresh the gauges from live structures, render
/// the Prometheus text exposition. The whole read path sits under the
/// `serve.telemetry` fault site — a fired fault (panic included)
/// answers `503 metrics unavailable` and leaves the server serving.
fn metrics_reply(state: &ServerState) -> HttpReply {
    let rendered = catch_unwind(AssertUnwindSafe(|| {
        if netart_fault::fire(netart_fault::sites::SERVE_TELEMETRY).is_some() {
            return None;
        }
        let cache = state.cache.stats();
        let t = &state.telemetry;
        t.set_gauge("netart_serve_queue_depth", state.service.queued() as u64);
        t.set_gauge("netart_serve_in_flight", state.service.in_flight() as u64);
        t.set_gauge("netart_serve_cache_bytes", cache.bytes as u64);
        t.set_gauge("netart_serve_cache_entries", cache.entries as u64);
        if let Some(s) = &state.shard {
            // Per-shard liveness off the latest fleet broadcast: one
            // `netart_serve_shard_live{shard="k"}` series per shard.
            for (k, phase) in s.fleet.phases().iter().enumerate() {
                let idx = k.to_string();
                t.set_gauge_labelled(
                    M_SHARD_LIVE,
                    &[("shard", idx.as_str())],
                    u64::from(*phase == netart_engine::ShardPhase::Live),
                );
            }
        }
        Some(t.render_prometheus())
    }))
    .unwrap_or(None);
    match rendered {
        Some(body) => HttpReply::text(200, "text/plain; version=0.0.4", body),
        None => {
            state.telemetry.inc(M_TELEMETRY_FAULTS, &[], 1);
            HttpReply::text(503, "text/plain", "metrics unavailable\n".to_owned())
        }
    }
}

fn route_request(state: &Arc<ServerState>, method: &str, path: &str, body: &[u8]) -> HttpReply {
    match (method, path) {
        ("GET", "/healthz") => HttpReply::json(200, "{\"status\": \"ok\"}".to_owned()),
        ("GET", "/readyz") => {
            if !state.ready.load(Ordering::Acquire) {
                HttpReply::json(503, "{\"status\": \"draining\"}".to_owned())
            } else if !state.shard.as_ref().is_none_or(|s| s.fleet.quorum_ok()) {
                // Sharded: this worker is fine, but the fleet lost its
                // readiness quorum (a sibling is down or quarantined).
                HttpReply::json(503, "{\"status\": \"quorum_lost\"}".to_owned())
            } else {
                HttpReply::json(200, "{\"status\": \"ready\"}".to_owned())
            }
        }
        ("GET", "/stats") => HttpReply::json(200, stats_snapshot(state).to_json_string()),
        ("GET", "/metrics") => metrics_reply(state),
        ("GET", "/debug/flight") => {
            if state.debug_endpoints {
                // A live snapshot of the flight ring, same schema as
                // the on-disk dumps — `netart blackbox` renders it.
                HttpReply::json(200, state.recorder.snapshot("debug", None).to_json_string())
            } else {
                HttpReply::report(
                    404,
                    &ServeReport::failure(
                        "debug endpoints are disabled; boot with --debug-endpoints",
                    ),
                )
            }
        }
        ("POST", "/v1/diagram") => {
            let rid = format!(
                "{}{:06}",
                state.rid_prefix,
                state.seq.fetch_add(1, Ordering::Relaxed)
            );
            let span = tracing::span!(tracing::Level::INFO, "serve.request", rid = rid.as_str());
            let started = Instant::now();
            let mut acc = AccessRecord::new(rid);
            let reply = span.in_scope(|| handle_diagram(state, body, &mut acc));
            acc.http_status = reply.status;
            acc.latency_ns = ns(started.elapsed());
            record_telemetry(&state.telemetry, |t| {
                t.inc(M_REQUESTS, &[("outcome", acc.outcome)], 1);
                if acc.cache != "none" {
                    t.inc(M_CACHE, &[("result", acc.cache)], 1);
                }
                if acc.deadline_cancelled {
                    t.inc(M_DEADLINE, &[], 1);
                }
                t.observe(M_LATENCY, acc.latency_ns);
            });
            write_access_log(state, &acc);
            reply
        }
        (_, "/healthz" | "/readyz" | "/stats" | "/metrics" | "/debug/flight" | "/v1/diagram") => HttpReply::report(
            405,
            &ServeReport::failure(format!("{method} is not supported on {path}")),
        ),
        _ => HttpReply::report(404, &ServeReport::failure(format!("no such endpoint {path}"))),
    }
}

/// A `503 Retry-After` refusal from the memory governor, with the
/// `netart_serve_mem_rejections_total` counter bumped. Unlike the
/// `413` cap (a permanent verdict on the input), this one is
/// retryable: the budget frees as in-flight work completes.
fn mem_reject(state: &ServerState, message: String) -> HttpReply {
    record_telemetry(&state.telemetry, |t| t.inc(M_MEM_REJECTIONS, &[], 1));
    let mut reply = HttpReply::report(503, &ServeReport::failure(message));
    reply.headers.push(("Retry-After", "1".to_owned()));
    reply
}

/// One connection, one request, one response. Runs on its own thread;
/// the final defence in depth — even a panic past the service's
/// `catch_unwind` (routing, framing) kills only this connection.
///
/// Admission control runs here, on the declared `Content-Length`,
/// before a single body byte is buffered: over the `--max-body` cap is
/// `413` (a verdict on the input), over the memory governor's
/// remaining room is `503 Retry-After` (a verdict on the moment). A
/// body that fits leases its bytes on the governor until the response
/// is framed.
fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let budget_room = usize::try_from(state.mem_budget.remaining()).unwrap_or(usize::MAX);
    let reply = match read_request(&mut stream, state.max_body.min(budget_room)) {
        Ok(request) => {
            let body_lease = request.body.len() as u64;
            match state.mem_budget.try_charge("serve admission", body_lease) {
                // Lost the admission race to a concurrent request.
                Err(x) => mem_reject(state, format!("over memory budget: {x}")),
                Ok(()) => {
                    let reply = match catch_unwind(AssertUnwindSafe(|| {
                        route_request(state, &request.method, &request.path, &request.body)
                    })) {
                        Ok(reply) => reply,
                        Err(_) => {
                            count(&state.counters.panics);
                            HttpReply::report(
                                500,
                                &ServeReport::failure(
                                    "internal error while framing the response",
                                ),
                            )
                        }
                    };
                    state.mem_budget.release(body_lease);
                    reply
                }
            }
        }
        Err(RequestError::BodyTooLarge { declared, .. }) if declared > state.max_body => {
            count(&state.counters.too_large);
            HttpReply::report(
                413,
                &ServeReport::failure(format!(
                    "request body of {declared} bytes exceeds the {}-byte cap",
                    state.max_body
                )),
            )
        }
        Err(RequestError::BodyTooLarge { declared, limit }) => mem_reject(
            state,
            format!(
                "declared body of {declared} bytes exceeds the memory budget's remaining \
                 {limit} byte(s); retry shortly"
            ),
        ),
        Err(RequestError::Malformed(message)) => {
            HttpReply::report(400, &ServeReport::failure(message))
        }
        Err(RequestError::Io(e)) => {
            // Probe connections and abrupt client deaths: nothing to
            // answer, but worth a diagnostics-stream breadcrumb.
            tracing::debug!("connection dropped before a request", error = e.to_string());
            return;
        }
    };
    let _ = respond(
        &mut stream,
        reply.status,
        reply.content_type,
        &reply.headers,
        &reply.body,
    );
}

fn parse_millis(args: &ParsedArgs, flag: &str, default_ms: u64) -> Result<Duration, CliError> {
    Ok(Duration::from_millis(args.parsed(flag, default_ms)?))
}

/// `netart serve [--addr host:port] [-L libdir] [--workers n]
/// [--queue-depth n] [--default-timeout ms] [--timeout-ceiling ms]
/// [--max-body bytes] [--cache-bytes n] [--drain-grace ms]
/// [--route-timeout ms] [--max-nodes n] [-m margin] [--order o]
/// [--input-policy p] [--inject spec] [--access-log path]
/// [--trace-level lvl] [--trace-out path] [--log-json]
/// [--memory-budget bytes] [--max-input-bytes n] [--max-network-bytes n]
/// [--blackbox path] [--debug-endpoints]
/// [--shards n] [--quorum k] [--crash-limit m] [--crash-window ms]`
///
/// `--shards N` boots a supervisor instead: the listener is bound
/// once, N single-shard worker processes inherit its fd (each running
/// this same serve loop in a hidden `--shard-worker` mode), and the
/// supervisor reaps deaths, respawns with the engine's deterministic
/// backoff, quarantines crash-looping shards (`--crash-limit` deaths
/// within `--crash-window` ms) and fans out SIGTERM/SIGUSR1. Worker
/// rids gain an `s{shard}-` prefix, `netart_build_info` a `shard`
/// label, and `/readyz` answers 503 (`quorum_lost`) whenever fewer
/// than `--quorum` shards (default: all) are live.
///
/// `--memory-budget` (k/m/g suffixes accepted) arms the global memory
/// governor: declared request bodies over the remaining room answer
/// `503 Retry-After` (and bump `netart_serve_mem_rejections_total` in
/// `/metrics`) instead of being buffered, admitted bodies lease their
/// bytes for the life of the request, and each job's parse is governed
/// by a snapshot of the remaining room — an exhausted parse answers
/// `503` with the `ND015` diagnostic inline. `--max-input-bytes` /
/// `--max-network-bytes` govern the boot-time library load.
///
/// Boots the resident diagram service and blocks until SIGINT/SIGTERM
/// drains it. The first stdout line is `serving on http://ADDR` (the
/// resolved address, so `--addr 127.0.0.1:0` works for tests and
/// supervisors). Endpoints: `GET /healthz`, `GET /readyz`,
/// `GET /stats`, `GET /metrics` (Prometheus text exposition),
/// `POST /v1/diagram` with a JSON document
/// `{"net": …, "cal": …, "io"?: …, "options"?: {"timeout_ms",
/// "margin", "order"}}`. `--access-log` appends one JSON line per
/// diagram request; `--trace-out` writes the Chrome/Perfetto trace at
/// drain.
///
/// Post-mortem: a flight recorder retains the last
/// [`FlightRecorder::DEFAULT_CAPACITY`] span/event records in a ring;
/// a panicking request, a deadline breach, a 500-class fault, or a
/// SIGUSR1 freezes it into a schema-versioned dump at `--blackbox`
/// (default `blackbox.json`; render with `netart blackbox`).
/// `--debug-endpoints` additionally answers `GET /debug/flight` with
/// a live snapshot.
///
/// # Errors
///
/// Any [`CliError`] condition at boot (bad flags, unreadable library,
/// unbindable address). After boot the server degrades, it does not
/// error.
pub fn run_serve(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "addr", "L", "workers", "queue-depth", "default-timeout", "timeout-ceiling",
            "max-body", "cache-bytes", "drain-grace", "route-timeout", "max-nodes", "m", "order",
            "input-policy", "inject", "access-log", "trace-level", "trace-out", "memory-budget",
            "max-input-bytes", "max-network-bytes", "blackbox",
            "shards", "quorum", "crash-limit", "crash-window",
            "shard-worker", "shard-count", "shard-fd",
        ],
        &["log-json", "debug-endpoints"],
        (0, 0),
    )?;
    // `--shards N` makes this process the supervisor: it binds the
    // listener, re-execs N workers in the hidden `--shard-worker`
    // mode, and never serves HTTP itself.
    if args.value("shard-worker").is_none() {
        if let Some(_n) = args.value("shards") {
            let shards = args.parsed("shards", 1usize)?.max(1);
            return crate::shard::run_supervisor(argv, &args, shards);
        }
    }
    // Hidden worker mode: shard identity injected by the supervisor.
    let shard_identity = match args.value("shard-worker") {
        Some(_) => Some((
            args.parsed("shard-worker", 0u32)?,
            args.parsed("shard-count", 1u32)?.max(1),
        )),
        None => None,
    };
    // The flight recorder is always on in serve: INFO keeps the phase
    // spans and warn/error events in the ring while the per-net DEBUG
    // spans stay un-dispatched (negligible steady-state cost).
    let (flight_recorder, recorder) =
        FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY, tracing::Level::INFO);
    let trace = install_subscriber_with(&args, vec![Box::new(flight_recorder)])?;
    arm_faults(&args)?;
    let policy = input_policy(&args)?;
    let base_budget = budget_from_args(&args)?;
    let boot_budgets = budgets_from_args(&args)?;
    let mem_budget = Arc::new(match args.value("memory-budget") {
        Some(s) => MemBudget::bytes(parse_bytes("memory-budget", s)?),
        None => MemBudget::unlimited(),
    });

    let mut boot_degs = Vec::new();
    let library =
        match crate::commands::load_library(&args, policy, &boot_budgets, &mut boot_degs) {
            Ok(lib) => lib,
            Err(e @ CliError::ResourceExhausted { .. }) => {
                return Ok(exhausted_output(&e, false, false))
            }
            Err(e) => return Err(e),
        };

    let margin = args.parsed("m", 4i32)?;
    let order = match args.value("order").unwrap_or("def") {
        "def" => NetOrder::Definition,
        "most" => NetOrder::MostPinsFirst,
        "few" => NetOrder::FewestPinsFirst,
        other => {
            return Err(ArgError::BadValue {
                flag: "order".into(),
                value: other.into(),
            }
            .into())
        }
    };
    let timeout_ceiling = parse_millis(&args, "timeout-ceiling", 30_000)?;
    let default_timeout = parse_millis(&args, "default-timeout", 10_000)?.min(timeout_ceiling);
    let drain_grace = parse_millis(&args, "drain-grace", 5_000)?;
    let config = ServiceConfig {
        workers: args.parsed("workers", 2u32)?,
        queue_depth: args.parsed("queue-depth", 4usize)?,
        drain_grace,
    };

    let telemetry = Arc::new(Telemetry::new());
    // Standard Prometheus boot idioms: an info-metric gauge pinned to
    // 1 whose labels carry the build identity (plus the shard index in
    // worker mode), and the boot instant as seconds since the epoch
    // (`process_start_time_seconds` family).
    let version = env!("CARGO_PKG_VERSION");
    let git = option_env!("NETART_GIT_SHA").unwrap_or("unknown");
    match shard_identity {
        Some((index, _)) => {
            let idx = index.to_string();
            telemetry.set_gauge_labelled(
                "netart_build_info",
                &[("version", version), ("git", git), ("shard", idx.as_str())],
                1,
            );
            // Register the restart counter at zero so the series is
            // scrapeable before the first respawn.
            telemetry.inc(M_SHARD_RESTARTS, &[], 0);
        }
        None => telemetry.set_gauge_labelled(
            "netart_build_info",
            &[("version", version), ("git", git)],
            1,
        ),
    }
    telemetry.set_gauge(
        "netart_serve_start_time_seconds",
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    );
    let access_log = match args.value("access-log") {
        Some(path) => Some(Mutex::new(File::create(path).map_err(|source| CliError::Io {
            path: path.into(),
            source,
        })?)),
        None => None,
    };

    let handler_state = HandlerState {
        library,
        policy,
        base_budget,
        telemetry: Arc::clone(&telemetry),
        mem_budget: Arc::clone(&mem_budget),
    };
    let service = Service::new(&config, move |job, ctx| handle_job(&handler_state, job, ctx));
    let shard = shard_identity.map(|(index, count)| {
        let fleet = Arc::new(FleetView::new(count as usize));
        // Supervisor broadcasts arrive over stdin; increases of the
        // cumulative restart counter land in this worker's own series.
        let restarts_sink = Arc::clone(&telemetry);
        crate::shard::spawn_fleet_listener(Arc::clone(&fleet), move |delta| {
            restarts_sink.inc(M_SHARD_RESTARTS, &[], delta);
        });
        ShardRuntime { index, fleet }
    });
    let rid_prefix = match &shard {
        Some(s) => format!("s{}-r", s.index),
        None => "r".to_owned(),
    };
    let state = Arc::new(ServerState {
        service,
        flight: SingleFlight::new(),
        cache: ByteCache::new(args.parsed("cache-bytes", 16 * 1024 * 1024usize)?),
        counters: Counters::default(),
        telemetry,
        seq: AtomicU64::new(0),
        rid_prefix,
        shard,
        access_log,
        ready: AtomicBool::new(true),
        default_timeout,
        timeout_ceiling,
        max_body: args.parsed("max-body", 1024 * 1024usize)?,
        mem_budget,
        default_options: RenderOptions { margin, order },
        recorder,
        blackbox_path: PathBuf::from(args.value("blackbox").unwrap_or("blackbox.json")),
        debug_endpoints: args.has("debug-endpoints"),
    });

    let addr = args.value("addr").unwrap_or("127.0.0.1:4817");
    let listener = match args.value("shard-fd") {
        Some(_) => {
            let fd = args.parsed("shard-fd", -1i32)?;
            if fd < 0 {
                return Err(ArgError::BadValue {
                    flag: "shard-fd".into(),
                    value: fd.to_string(),
                }
                .into());
            }
            // Safety: the supervisor bound this listener, cleared
            // FD_CLOEXEC, and handed us its fd over exec; we are the
            // sole owner in this process.
            unsafe { TcpListener::from_raw_fd(fd) }
        }
        None => TcpListener::bind(addr).map_err(|source| CliError::Io {
            path: addr.into(),
            source,
        })?,
    };
    let local = listener.local_addr().map_err(|source| CliError::Io {
        path: addr.into(),
        source,
    })?;
    listener.set_nonblocking(true).map_err(|source| CliError::Io {
        path: addr.into(),
        source,
    })?;

    // The contract with supervisors and tests: the first stdout line
    // names the resolved address, flushed before any request lands.
    // Shard workers report readiness to their supervisor instead (it
    // already printed the address line for the fleet).
    match &state.shard {
        Some(s) => println!("shard {} ready", s.index),
        None => println!("serving on http://{local}"),
    }
    let _ = std::io::stdout().flush();
    for d in &boot_degs {
        eprintln!("warning: {}", d.detail.as_deref().unwrap_or(&d.kind));
    }

    crate::batch::reset_signal_drain();
    let connections = Arc::new(AtomicUsize::new(0));
    let mut draining_since: Option<Instant> = None;
    loop {
        if crate::batch::take_signal_flight() {
            // SIGUSR1: an on-demand blackbox of the live ring — "what
            // is this server doing right now" without stopping it.
            dump_blackbox(&state, "signal", None);
        }
        let stop_requested = crate::batch::signal_drain_requested()
            // A worker whose supervisor died (stdin EOF) drains itself
            // rather than squatting on the shared socket.
            || state.shard.as_ref().is_some_and(|s| s.fleet.orphaned());
        if draining_since.is_none() && stop_requested {
            // Readiness flips *first* so load balancers stop routing,
            // then admission closes; queued and running requests keep
            // their connections and finish within the grace.
            state.ready.store(false, Ordering::Release);
            state.service.drain();
            draining_since = Some(Instant::now());
        }
        // Accept everything already pending *before* judging whether
        // the drain has settled: a connection that completed its
        // handshake before the signal must be served, not dropped by
        // an accept/settle race.
        while let Ok((stream, _peer)) = listener.accept() {
            let state = Arc::clone(&state);
            let connections = Arc::clone(&connections);
            connections.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                handle_connection(&state, stream);
                connections.fetch_sub(1, Ordering::SeqCst);
            });
        }
        if let Some(since) = draining_since {
            let settled =
                state.service.drained() && connections.load(Ordering::SeqCst) == 0;
            // The hard stop covers a connection wedged on a dead
            // client: drain grace for the work, a little more for the
            // final response writes.
            if settled || since.elapsed() > drain_grace + Duration::from_secs(2) {
                break;
            }
        }
        std::thread::sleep(ACCEPT_TICK);
    }

    write_trace(&args, trace.as_ref())?;
    let stats = stats_snapshot(&state);
    Ok(RunOutput {
        message: format!(
            "drained cleanly: {} requests ({} clean, {} degraded, {} failed, {} shed), \
             {} cache hits, {} coalesced, {} panics contained",
            stats.requests,
            stats.clean,
            stats.degraded,
            stats.failed,
            stats.shed,
            stats.cache_hits,
            stats.coalesced,
            stats.panics,
        ),
        degraded: false,
        strict: false,
        message_to_stderr: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_keys_ignore_whitespace_but_not_content_or_options() {
        let options = RenderOptions {
            margin: 4,
            order: NetOrder::Definition,
        };
        let a = artifact_key("n0 u0 y\nn0 u1 a\n", "u0 inv\n", None, &options);
        let b = artifact_key("n0 u0 y   \r\n\r\nn0 u1 a\n", "u0 inv\n", None, &options);
        assert_eq!(a, b, "line-normalization: same artifact");

        let c = artifact_key("n0 u0 y\nn0 u1 b\n", "u0 inv\n", None, &options);
        assert_ne!(a, c, "different netlist: different artifact");

        let wider = RenderOptions {
            margin: 8,
            order: NetOrder::Definition,
        };
        let d = artifact_key("n0 u0 y\nn0 u1 a\n", "u0 inv\n", None, &wider);
        assert_ne!(a, d, "different options: different artifact");

        let e = artifact_key("n0 u0 y\nn0 u1 a\n", "u0 inv\n", Some("in in\n"), &options);
        assert_ne!(a, e, "io file participates in the address");
    }

    #[test]
    fn artifact_keys_are_stable_hex() {
        let options = RenderOptions {
            margin: 4,
            order: NetOrder::Definition,
        };
        let key = artifact_key("x", "y", None, &options);
        assert_eq!(key.len(), 16);
        assert!(key.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(key, artifact_key("x", "y", None, &options));
    }
}
