//! `netart profile` — the routing heat-map profiler.
//!
//! Runs the full pipeline on one design, then aggregates the per-net
//! EUREKA effort counters ([`NetRouteStats`]) into a spatial grid over
//! the diagram: where the router spent its search nodes, where the
//! salvage cascade ripped up victims, where salvaged nets settled.
//! The output is an ASCII heat map on stdout plus (with `--heat-json`)
//! the schema-versioned [`ProfileReport`] document, which `netart
//! report diff` can compare against a baseline profile.
//!
//! Everything in the JSON document derives from deterministic
//! counters — no wall-clock members — so two runs over the same input
//! are bit-identical, making profiles diffable and CI-pinnable.

use netart::obs::{ProfileCell, ProfileReport, ProfileTotals};
use netart::place::PlaceConfig;
use netart::route::{NetOrder, NetRouteStats, RouteConfig};
use netart::Outcome;

use crate::commands::{
    arm_faults, budget_from_args, input_policy, install_subscriber, load_network, write_or_stdout,
    write_trace, CliError, RunOutput,
};
use crate::{ArgError, ParsedArgs};

/// An inclusive diagram-coordinate bounding box `(min_x, min_y,
/// max_x, max_y)`.
type Bbox = (i32, i32, i32, i32);

fn union(a: Option<Bbox>, b: Option<Bbox>) -> Option<Bbox> {
    match (a, b) {
        (Some((ax0, ay0, ax1, ay1)), Some((bx0, by0, bx1, by1))) => {
            Some((ax0.min(bx0), ay0.min(by0), ax1.max(bx1), ay1.max(by1)))
        }
        (a, None) => a,
        (None, b) => b,
    }
}

/// The spatial footprint of one net's routing effort: the searches'
/// activation bbox when the regular passes ran, else the routed
/// geometry, else the ghost-wire endpoints. `None` for nets with no
/// spatial trace at all (prerouted point nets).
fn net_footprint(outcome: &Outcome, s: &NetRouteStats) -> Option<Bbox> {
    if let Some(bbox) = s.search_bbox {
        return Some(bbox);
    }
    let mut bbox = None;
    if let Some(path) = outcome.diagram.route(s.net) {
        for seg in path.segments() {
            let (a, b) = seg.endpoints();
            bbox = union(bbox, Some((a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))));
        }
    }
    if bbox.is_none() {
        if let Some(ghost) = outcome.diagram.ghost(s.net) {
            for (a, b) in &ghost.lines {
                bbox = union(bbox, Some((a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))));
            }
        }
    }
    bbox
}

/// Buckets the per-net counters onto a `grid`×`grid` heat map.
///
/// Counter conservation is the invariant that makes profiles diffable:
/// each net's `nodes_expanded` and `ripup_victims` are split evenly
/// over its touched cells with the remainder going to the earliest
/// cells (row-major), so the cell sums equal the per-net sums exactly.
/// Nets without a spatial footprint still count in the totals.
fn build_profile(outcome: &Outcome, grid: u32) -> ProfileReport {
    let stats = &outcome.report.net_stats;
    let totals = ProfileTotals {
        nets: stats.len() as u64,
        routed: stats.iter().filter(|s| s.routed).count() as u64,
        expansions: stats.iter().map(|s| s.nodes_expanded).sum(),
        ripup_victims: stats.iter().map(|s| u64::from(s.ripup_victims)).sum(),
        salvaged: stats.iter().filter(|s| s.salvage.is_some()).count() as u64,
    };

    let footprints: Vec<(usize, Bbox)> = stats
        .iter()
        .enumerate()
        .filter_map(|(i, s)| net_footprint(outcome, s).map(|b| (i, b)))
        .collect();
    let bounds = footprints
        .iter()
        .fold(None, |acc, (_, b)| union(acc, Some(*b)));
    let Some((x0, y0, x1, y1)) = bounds else {
        // Nothing spatial at all (an empty or fully point-prerouted
        // design): a degenerate but valid profile.
        return ProfileReport {
            tool: "netart profile".to_owned(),
            cols: grid,
            rows: grid,
            bounds: (0, 0, 0, 0),
            totals,
            cells: Vec::new(),
        };
    };

    // Exclusive upper bounds; cell size rounds up so grid*size covers
    // the whole extent.
    let width = i64::from(x1) - i64::from(x0) + 1;
    let height = i64::from(y1) - i64::from(y0) + 1;
    let cell_w = (width + i64::from(grid) - 1) / i64::from(grid);
    let cell_h = (height + i64::from(grid) - 1) / i64::from(grid);
    let cell_w = cell_w.max(1);
    let cell_h = cell_h.max(1);

    let cols = grid as usize;
    let rows = grid as usize;
    let mut cells = vec![ProfileCell::default(); cols * rows];
    let clamp = |v: i64, max: usize| (v.max(0) as usize).min(max - 1);
    for (i, (bx0, by0, bx1, by1)) in footprints {
        let s = &stats[i];
        let c0 = clamp((i64::from(bx0) - i64::from(x0)) / cell_w, cols);
        let c1 = clamp((i64::from(bx1) - i64::from(x0)) / cell_w, cols);
        // Row 0 is the top edge, diagram y grows upward: flip.
        let r0 = clamp(
            i64::from(grid) - 1 - (i64::from(by1) - i64::from(y0)) / cell_h,
            rows,
        );
        let r1 = clamp(
            i64::from(grid) - 1 - (i64::from(by0) - i64::from(y0)) / cell_h,
            rows,
        );
        let touched: Vec<usize> = (r0..=r1)
            .flat_map(|r| (c0..=c1).map(move |c| r * cols + c))
            .collect();
        let k = touched.len() as u64;
        let spread = |total: u64, idx: usize| total / k + u64::from((idx as u64) < total % k);
        for (idx, &cell) in touched.iter().enumerate() {
            cells[cell].expansions += spread(s.nodes_expanded, idx);
            cells[cell].ripup_victims += spread(u64::from(s.ripup_victims), idx);
            cells[cell].nets += 1;
        }
        if s.salvage.is_some() {
            cells[touched[0]].salvaged += 1;
        }
    }

    let cells = cells
        .into_iter()
        .enumerate()
        .filter(|(_, c)| c.expansions + c.ripup_victims + c.salvaged + c.nets > 0)
        .map(|(i, mut c)| {
            c.col = (i % cols) as u32;
            c.row = (i / cols) as u32;
            c
        })
        .collect();
    ProfileReport {
        tool: "netart profile".to_owned(),
        cols: grid,
        rows: grid,
        bounds: (
            i64::from(x0),
            i64::from(y0),
            i64::from(x0) + cell_w * i64::from(grid),
            i64::from(y0) + cell_h * i64::from(grid),
        ),
        totals,
        cells,
    }
}

/// `netart profile [--grid n] [--heat-json out.json] [-L libdir]
/// [-m margin] [--order o] [--route-timeout ms] [--max-nodes n]
/// [--input-policy p] [--inject spec] [--trace-level lvl]
/// [--trace-out path] [--log-json] net-list call-file [io-file]`
///
/// Routes the design once and prints the spatial congestion heat map
/// (`--grid` cells per side, default 16). `--heat-json` writes the
/// schema-versioned profile document (`-` for stdout; the ASCII map
/// then moves to stderr), which `netart report diff` accepts on
/// either side. The document carries only deterministic counters:
/// profiling the same input twice produces bit-identical JSON.
///
/// # Errors
///
/// Any [`CliError`] condition, including unreadable inputs and a
/// `--grid` of zero.
pub fn run_profile(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "grid", "heat-json", "L", "m", "order", "route-timeout", "max-nodes", "input-policy",
            "inject", "trace-level", "trace-out", "max-input-bytes", "max-network-bytes",
        ],
        &["log-json"],
        (2, 3),
    )?;
    let trace_buffer = install_subscriber(&args)?;
    arm_faults(&args)?;
    let grid = args.parsed("grid", 16u32)?;
    if grid == 0 || grid > 512 {
        return Err(ArgError::BadValue {
            flag: "grid".into(),
            value: grid.to_string(),
        }
        .into());
    }
    let policy = input_policy(&args)?;
    let budgets = crate::commands::budgets_from_args(&args)?;
    let (network, _degs) = match load_network(&args, policy, &budgets) {
        Ok(v) => v,
        Err(e @ CliError::ResourceExhausted { .. }) => {
            return Ok(crate::commands::exhausted_output(&e, false, false))
        }
        Err(e) => return Err(e),
    };

    let order = match args.value("order").unwrap_or("def") {
        "def" => NetOrder::Definition,
        "most" => NetOrder::MostPinsFirst,
        "few" => NetOrder::FewestPinsFirst,
        other => {
            return Err(ArgError::BadValue {
                flag: "order".into(),
                value: other.into(),
            }
            .into())
        }
    };
    let route = RouteConfig::new()
        .with_margin(args.parsed("m", 4i32)?)
        .with_order(order)
        .with_budget(budget_from_args(&args)?);
    let outcome = netart::Generator::new()
        .with_placing(PlaceConfig::new())
        .with_routing(route)
        .generate(network);

    let profile = build_profile(&outcome, grid);
    let mut message_to_stderr = false;
    if let Some(path) = args.value("heat-json") {
        write_or_stdout(path, &profile.to_json_string())?;
        message_to_stderr = path == "-";
    }
    write_trace(&args, trace_buffer.as_ref())?;
    Ok(RunOutput {
        message: profile.render_ascii(),
        degraded: false,
        strict: false,
        message_to_stderr,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn spread_conserves_counts_and_first_cells_take_the_remainder() {
        // The closure logic, restated: 10 over 4 cells = 3,3,2,2.
        let k = 4u64;
        let spread = |total: u64, idx: usize| total / k + u64::from((idx as u64) < total % k);
        let parts: Vec<u64> = (0..4).map(|i| spread(10, i)).collect();
        assert_eq!(parts, vec![3, 3, 2, 2]);
        assert_eq!(parts.iter().sum::<u64>(), 10);
    }
}
