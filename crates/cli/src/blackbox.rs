//! The `netart blackbox` subcommand: render a flight-recorder dump.
//!
//! `netart serve` (and a quarantining `netart batch`) leave a
//! schema-versioned `blackbox.json` behind when something goes wrong —
//! a panic, a deadline breach, a SIGUSR1, or a tripped circuit
//! breaker. This subcommand reads one of those dumps back and prints
//! it as a human-readable timeline: the trigger, the spans that were
//! still open, the recent degradations, and the last ring of
//! span-close/event records leading up to the incident.

use std::path::Path;

use netart::obs::{BlackboxDump, Json};

use crate::commands::{read, CliError, RunOutput};
use crate::ParsedArgs;

/// Writes a blackbox dump under the `obs.flight` fault site. Any
/// fired kind (panic included) or I/O failure degrades to `false`: a
/// failed dump must never disturb the request or job that triggered
/// it. Callers turn `false` into a `flight_dump_failed` degradation.
pub(crate) fn write_dump(path: &Path, dump: &netart::obs::BlackboxDump) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if netart_fault::fire(netart_fault::sites::OBS_FLIGHT).is_some() {
            return false;
        }
        std::fs::write(path, dump.to_json_string()).is_ok()
    }))
    .unwrap_or(false)
}

/// `netart blackbox <dump.json>`
///
/// Parses a blackbox dump written by `netart serve` (on panic,
/// deadline breach, or SIGUSR1) or `netart batch` (on quarantine) and
/// prints the recorded timeline. Exit 0 on a rendered dump, 1 on an
/// unreadable or unsupported file.
///
/// # Errors
///
/// [`CliError::Io`] when the file cannot be read, [`CliError::Parse`]
/// when it is not JSON or not a supported blackbox schema version.
pub fn run_blackbox(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(argv, &[], &[], (1, 1))?;
    let path = Path::new(&args.positionals()[0]);
    let text = read(path)?;
    let json = Json::parse(&text).map_err(|e| CliError::Parse {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    let dump = BlackboxDump::from_json(&json).map_err(|message| CliError::Parse {
        path: path.to_owned(),
        message,
    })?;
    Ok(RunOutput {
        message: dump.render_timeline(),
        degraded: false,
        strict: false,
        message_to_stderr: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart::obs::FlightRecorder;
    use tracing::Level;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "netart-blackbox-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn renders_a_written_dump() {
        let dir = scratch_dir("render");
        let (_recorder, handle) = FlightRecorder::new(8, Level::INFO);
        handle.note_degradation("route_salvaged");
        let dump = handle.snapshot("signal", Some("r000042"));
        let path = dir.join("blackbox.json");
        std::fs::write(&path, dump.to_json_string()).unwrap();

        let out = run_blackbox(&[path.display().to_string()]).expect("renders");
        assert!(out.message.contains("reason=signal"), "{}", out.message);
        assert!(out.message.contains("r000042"), "{}", out.message);
        assert!(out.message.contains("route_salvaged"), "{}", out.message);
        assert!(!out.degraded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_non_dump_json() {
        let dir = scratch_dir("reject");
        let path = dir.join("not-a-dump.json");
        std::fs::write(&path, "{\"schema_version\": 99}").unwrap();
        let err = run_blackbox(&[path.display().to_string()]).unwrap_err();
        assert!(
            err.to_string().contains("unsupported schema_version 99"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn requires_exactly_one_path() {
        assert!(run_blackbox(&[]).is_err());
    }
}
