//! The `eureka` program; see [`netart_cli::run_eureka`].
//!
//! Exit codes: 0 clean, 2 degraded (salvaged or ghost-wired nets;
//! 1 under `--strict`), 1 failed outright.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match netart_cli::run_eureka(&argv) {
        Ok(out) => {
            if out.message_to_stderr {
                eprintln!("{}", out.message);
            } else {
                println!("{}", out.message);
            }
            out.exit_code()
        }
        Err(e) => {
            eprintln!("eureka: {e}");
            ExitCode::FAILURE
        }
    }
}
