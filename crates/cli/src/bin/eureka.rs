//! The `eureka` program; see [`netart_cli::run_eureka`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match netart_cli::run_eureka(&argv) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("eureka: {e}");
            ExitCode::FAILURE
        }
    }
}
