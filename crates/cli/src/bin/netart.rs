//! The `netart` umbrella program: the full pipeline in one invocation;
//! see [`netart_cli::run_netart`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match netart_cli::run_netart(&argv) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("netart: {e}");
            ExitCode::FAILURE
        }
    }
}
