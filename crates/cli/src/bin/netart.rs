//! The `netart` umbrella program: the full pipeline in one invocation;
//! see [`netart_cli::run_netart`]. The `report diff` subcommand
//! compares two run-report or heat-map profile files; see
//! [`netart_cli::run_report_diff`]. The `batch` subcommand runs many
//! inputs on a resilient worker pool; see [`netart_cli::run_batch`].
//! The `serve` subcommand keeps the pipeline resident behind an HTTP
//! endpoint; see [`netart_cli::run_serve`]. The `profile` subcommand
//! renders the routing heat map of one design; see
//! [`netart_cli::run_profile`]. The `stress` subcommand generates
//! big-N and adversarial workloads and pushes them through the
//! memory-governed ingestion path; see [`netart_cli::run_stress`].
//! The `blackbox` subcommand renders a flight-recorder dump written by
//! `serve` or `batch` as a timeline; see [`netart_cli::run_blackbox`].
//!
//! Exit codes: 0 clean, 2 degraded (salvaged or ghost-wired nets, or a
//! recovered phase crash; 1 under `--strict`), 1 failed outright.
//! `report diff` exits 0 when clean, 3 on regression, 1 on error.
//! `batch` exits 0 when every job is ok, 2 when any job degraded,
//! failed, was quarantined or skipped, 1 when the batch could not run.
//! `serve` exits 0 on a clean signal-driven drain, 1 when it could not
//! boot.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("batch") {
        netart_cli::install_drain_handlers();
        return match netart_cli::run_batch(&argv[1..]) {
            Ok(out) => {
                if out.message_to_stderr {
                    eprintln!("{}", out.message);
                } else {
                    println!("{}", out.message);
                }
                out.exit_code()
            }
            Err(e) => {
                eprintln!("netart batch: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("serve") {
        netart_cli::install_drain_handlers();
        netart_cli::install_flight_handler();
        return match netart_cli::run_serve(&argv[1..]) {
            Ok(out) => {
                if out.message_to_stderr {
                    eprintln!("{}", out.message);
                } else {
                    println!("{}", out.message);
                }
                out.exit_code()
            }
            Err(e) => {
                eprintln!("netart serve: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("stress") {
        return match netart_cli::run_stress(&argv[1..]) {
            Ok(out) => {
                if out.message_to_stderr {
                    eprintln!("{}", out.message);
                } else {
                    println!("{}", out.message);
                }
                out.exit_code()
            }
            Err(e) => {
                eprintln!("netart stress: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("profile") {
        return match netart_cli::run_profile(&argv[1..]) {
            Ok(out) => {
                if out.message_to_stderr {
                    eprint!("{}", out.message);
                } else {
                    print!("{}", out.message);
                }
                out.exit_code()
            }
            Err(e) => {
                eprintln!("netart profile: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("blackbox") {
        return match netart_cli::run_blackbox(&argv[1..]) {
            Ok(out) => {
                print!("{}", out.message);
                out.exit_code()
            }
            Err(e) => {
                eprintln!("netart blackbox: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("report") {
        return match argv.get(1).map(String::as_str) {
            Some("diff") => match netart_cli::run_report_diff(&argv[2..]) {
                Ok(out) => {
                    if out.message_to_stderr {
                        eprintln!("{}", out.message);
                    } else {
                        println!("{}", out.message);
                    }
                    if out.regressed {
                        ExitCode::from(3)
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("netart report diff: {e}");
                    ExitCode::FAILURE
                }
            },
            _ => {
                eprintln!("netart report: unknown subcommand (expected `diff`)");
                ExitCode::FAILURE
            }
        };
    }
    match netart_cli::run_netart(&argv) {
        Ok(out) => {
            if out.message_to_stderr {
                eprintln!("{}", out.message);
            } else {
                println!("{}", out.message);
            }
            out.exit_code()
        }
        Err(e) => {
            eprintln!("netart: {e}");
            ExitCode::FAILURE
        }
    }
}
