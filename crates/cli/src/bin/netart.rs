//! The `netart` umbrella program: the full pipeline in one invocation;
//! see [`netart_cli::run_netart`].
//!
//! Exit codes: 0 clean, 2 degraded (salvaged or ghost-wired nets, or a
//! recovered phase crash; 1 under `--strict`), 1 failed outright.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match netart_cli::run_netart(&argv) {
        Ok(out) => {
            println!("{}", out.message);
            out.exit_code()
        }
        Err(e) => {
            eprintln!("netart: {e}");
            ExitCode::FAILURE
        }
    }
}
