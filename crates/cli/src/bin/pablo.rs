//! The `pablo` program; see [`netart_cli::run_pablo`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match netart_cli::run_pablo(&argv) {
        Ok(out) => {
            if out.message_to_stderr {
                eprintln!("{}", out.message);
            } else {
                println!("{}", out.message);
            }
            out.exit_code()
        }
        Err(e) => {
            eprintln!("pablo: {e}");
            ExitCode::FAILURE
        }
    }
}
