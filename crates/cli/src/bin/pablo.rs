//! The `pablo` program; see [`netart_cli::run_pablo`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match netart_cli::run_pablo(&argv) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pablo: {e}");
            ExitCode::FAILURE
        }
    }
}
