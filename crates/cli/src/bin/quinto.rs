//! The `quinto` program; see [`netart_cli::run_quinto`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match netart_cli::run_quinto(&argv) {
        Ok(out) => {
            if out.message_to_stderr {
                eprintln!("{}", out.message);
            } else {
                println!("{}", out.message);
            }
            out.exit_code()
        }
        Err(e) => {
            eprintln!("quinto: {e}");
            ExitCode::FAILURE
        }
    }
}
