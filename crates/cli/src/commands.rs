//! The `pablo`, `eureka` and `quinto` command implementations.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use netart::diagram::{escher, svg, Diagram};
use netart::netlist::doctor::{self, DoctorCode, DoctorFile, InputPolicy, Severity};
use netart::netlist::format::quinto;
use netart::netlist::ingest::{self, IngestBudgets, IngestError, Record};
use netart::netlist::{Library, Network};
use netart_govern::MemBudget;
use netart::obs::{
    DegradationReport, DiffConfig, FanoutSubscriber, Json, JsonLinesSubscriber, ProfileReport,
    ReportDiff, RunReport, TextSubscriber, TraceBuffer, TraceEventSubscriber,
};
use netart_fault::FaultKind;
use netart::place::{Pablo, PlaceConfig};
use netart::route::{Budget, NetOrder, RouteConfig};
use netart::Generator;

use crate::{ArgError, ParsedArgs};

/// Nanoseconds of a duration, saturating at `u64::MAX`.
pub(crate) fn ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Parses the shared observability flags and installs the matching
/// subscriber. `--trace-level <error|warn|info|debug|trace>` turns on
/// the human-readable text stream on stderr; `--log-json` switches the
/// stream to one JSON object per line (at `--trace-level`, defaulting
/// to `info`); `--trace-out <path>` additionally records every span
/// and event into a Chrome trace-event buffer, returned here so the
/// caller can write it after the run. Without any flag no subscriber
/// is installed and the library instrumentation stays disabled.
pub(crate) fn install_subscriber(args: &ParsedArgs) -> Result<Option<TraceBuffer>, CliError> {
    install_subscriber_with(args, Vec::new())
}

/// [`install_subscriber`] with caller-supplied extra children ahead of
/// the flag-driven ones — `netart serve` threads its flight recorder
/// in here. Under the `alloc-profile` feature a phase-tag subscriber
/// is always appended (even with no tracing flags at all), so heap
/// attribution works on an otherwise silent run.
pub(crate) fn install_subscriber_with(
    args: &ParsedArgs,
    extra: Vec<Box<dyn tracing::Subscriber>>,
) -> Result<Option<TraceBuffer>, CliError> {
    let level = match args.value("trace-level") {
        Some(s) => Some(s.parse::<tracing::Level>().map_err(|_| ArgError::BadValue {
            flag: "trace-level".into(),
            value: s.into(),
        })?),
        None => None,
    };
    let mut children: Vec<Box<dyn tracing::Subscriber>> = extra;
    if args.has("log-json") {
        children.push(Box::new(JsonLinesSubscriber::new(
            level.unwrap_or(tracing::Level::INFO),
        )));
    } else if let Some(max) = level {
        children.push(Box::new(TextSubscriber::new(max)));
    }
    let mut buffer = None;
    if args.value("trace-out").is_some() {
        // The trace file is for offline inspection, so record
        // everything the instrumentation offers regardless of the
        // stderr stream's level.
        let (subscriber, buf) = TraceEventSubscriber::new(tracing::Level::TRACE);
        children.push(Box::new(subscriber));
        buffer = Some(buf);
    }
    #[cfg(feature = "alloc-profile")]
    children.push(Box::new(netart::obs::PhaseTagSubscriber));
    if !children.is_empty() {
        // Lenient: in-process callers (tests) may install twice; the
        // first subscriber wins, which is fine for a diagnostics
        // stream (a second run's trace buffer then stays empty).
        let _ = tracing::set_global_default(FanoutSubscriber::new(children));
    }
    Ok(buffer)
}

/// Which streams claim stdout (`--report-json -` / `--trace-out -`).
/// At most one may; the human-readable summary then moves to stderr so
/// the machine-readable stream stays parseable.
pub(crate) fn stdout_claimed(args: &ParsedArgs) -> Result<bool, CliError> {
    let report = args.value("report-json") == Some("-");
    let trace = args.value("trace-out") == Some("-");
    if report && trace {
        return Err(CliError::Other(
            "--report-json - and --trace-out - both claim stdout; write at most one stream there"
                .into(),
        ));
    }
    Ok(report || trace)
}

/// Writes `text` to `path`, where `-` means stdout.
pub(crate) fn write_or_stdout(path: &str, text: &str) -> Result<(), CliError> {
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        write(Path::new(path), text)
    }
}

/// Writes the machine-readable run report when `--report-json <path>`
/// was given (`-` for stdout).
fn write_report(args: &ParsedArgs, report: &RunReport) -> Result<(), CliError> {
    if let Some(path) = args.value("report-json") {
        write_or_stdout(path, &report.to_json_string())?;
    }
    Ok(())
}

/// Writes the recorded Chrome trace-event document when `--trace-out
/// <path>` was given (`-` for stdout). Load the file in
/// `ui.perfetto.dev` or `chrome://tracing`.
pub(crate) fn write_trace(args: &ParsedArgs, buffer: Option<&TraceBuffer>) -> Result<(), CliError> {
    if let (Some(path), Some(buffer)) = (args.value("trace-out"), buffer) {
        write_or_stdout(path, &buffer.to_json_string())?;
    }
    Ok(())
}

/// Parses `--input-policy <strict|repair|best-effort>` (default
/// `strict`); see [`InputPolicy`] for what each does.
pub(crate) fn input_policy(args: &ParsedArgs) -> Result<InputPolicy, CliError> {
    match args.value("input-policy") {
        None => Ok(InputPolicy::Strict),
        Some(s) => s.parse().map_err(|_| {
            CliError::Args(ArgError::BadValue {
                flag: "input-policy".into(),
                value: s.into(),
            })
        }),
    }
}

/// Arms the deterministic fault registry from `--inject
/// site[:nth][:kind]` (comma-separated) and `NETART_INJECT`. Unless
/// the binary was built with `--features fault-injection`, arming
/// anything is an error — the sites compile to nothing.
pub(crate) fn arm_faults(args: &ParsedArgs) -> Result<(), CliError> {
    netart_fault::disarm_all();
    if let Some(specs) = args.value("inject") {
        for spec in specs.split(',').filter(|s| !s.trim().is_empty()) {
            netart_fault::arm(spec.trim()).map_err(CliError::Other)?;
        }
    }
    netart_fault::arm_from_env().map_err(CliError::Other)?;
    Ok(())
}

/// A CLI-level degradation record (doctor repairs, recovered parse
/// faults, emit retries) for the run report.
pub(crate) fn cli_degradation(kind: &str, stage: Option<String>, detail: String) -> DegradationReport {
    DegradationReport {
        kind: kind.to_owned(),
        net: None,
        stage,
        routed: None,
        over_budget: None,
        nodes_expanded: None,
        detail: Some(detail),
    }
}

/// Folds a doctor report into degradation records: one per applied
/// repair, and one per defect the best-effort policy skipped.
pub(crate) fn doctor_degradations(
    source: &Path,
    report: &doctor::DoctorReport,
    degs: &mut Vec<DegradationReport>,
) {
    for d in &report.diagnostics {
        if d.repair.is_some() || d.severity == Severity::Error {
            degs.push(cli_degradation(
                "doctor_repair",
                Some(d.code.as_str().to_owned()),
                format!("{}: {d}", source.display()),
            ));
        }
    }
}

/// The panic payload as text (mirrors the core generator's handling).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the parse phase with panic isolation. A failure (panic or
/// error) that coincides with a newly fired fault site is retried once
/// — the one-shot site has burned out — and recorded as a
/// `parse_recovered` degradation. Genuine failures propagate
/// unchanged, so this is inert without `--features fault-injection`.
fn parse_with_recovery<T>(
    mut op: impl FnMut() -> Result<(T, Vec<DegradationReport>), CliError>,
) -> Result<(T, Vec<DegradationReport>), CliError> {
    let fired_before = netart_fault::fired_count();
    let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut op));
    let fault_fired = netart_fault::fired_count() > fired_before;
    let detail = match first {
        Ok(Ok(result)) => return Ok(result),
        Ok(Err(e)) if !fault_fired => return Err(e),
        Ok(Err(e)) => e.to_string(),
        Err(payload) if !fault_fired => std::panic::resume_unwind(payload),
        Err(payload) => panic_message(payload),
    };
    let (value, mut degs) = op()?;
    degs.push(cli_degradation("parse_recovered", None, detail));
    Ok((value, degs))
}

/// What a routing command produced, and how the process should exit.
///
/// The routing binaries distinguish three outcomes: a *clean* run
/// (exit 0), a *degraded* run that still produced a diagram but needed
/// fallbacks — salvaged or ghost-wired nets (exit 2, or exit 1 under
/// `--strict`) — and a *failed* run that produced nothing (a
/// [`CliError`], exit 1).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The human-readable summary to print.
    pub message: String,
    /// `true` when the run needed fallbacks (salvage, ghost wires, or
    /// outright unroutable nets).
    pub degraded: bool,
    /// `true` when `--strict` was given: degradation becomes failure.
    pub strict: bool,
    /// `true` when a machine-readable stream claimed stdout
    /// (`--report-json -` / `--trace-out -`): the summary must go to
    /// stderr instead.
    pub message_to_stderr: bool,
}

impl RunOutput {
    /// The process exit code for this outcome: 0 clean, 2 degraded,
    /// 1 degraded under `--strict`.
    pub fn exit_code(&self) -> ExitCode {
        match (self.degraded, self.strict) {
            (false, _) => ExitCode::SUCCESS,
            (true, false) => ExitCode::from(2),
            (true, true) => ExitCode::FAILURE,
        }
    }
}

/// Parses the shared robustness flags: `--route-timeout <ms>` and
/// `--max-nodes <n>` build the per-net routing [`Budget`], `--strict`
/// is read by the caller.
pub(crate) fn budget_from_args(args: &ParsedArgs) -> Result<Budget, ArgError> {
    let mut budget = Budget::new();
    if let Some(ms) = args.value("route-timeout") {
        let ms: u64 = ms.parse().map_err(|_| ArgError::BadValue {
            flag: "route-timeout".into(),
            value: ms.into(),
        })?;
        budget = budget.with_time_limit(Duration::from_millis(ms));
    }
    if let Some(n) = args.value("max-nodes") {
        let n: u64 = n.parse().map_err(|_| ArgError::BadValue {
            flag: "max-nodes".into(),
            value: n.into(),
        })?;
        budget = budget.with_node_limit(n);
    }
    Ok(budget)
}

/// Any failure of a CLI run.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// Filesystem trouble.
    Io {
        /// Path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file failed to parse.
    Parse {
        /// Path involved.
        path: PathBuf,
        /// Parser message.
        message: String,
    },
    /// The memory governor refused the input (`ND015`). Commands catch
    /// this variant and *degrade* (exit 2) instead of failing: refusing
    /// an oversized input is the configured contract, not a
    /// malfunction.
    ResourceExhausted {
        /// Path of the input being ingested when the budget ran out.
        path: PathBuf,
        /// The full `ND015` diagnostic (stage and byte counts).
        message: String,
    },
    /// Anything else, explained.
    Other(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            CliError::Parse { path, message }
            | CliError::ResourceExhausted { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            CliError::Other(m) => f.write_str(m),
        }
    }
}

impl Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

pub(crate) fn read(path: &Path) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive): `65536`, `64k`, `8m`, `1g`.
pub(crate) fn parse_bytes(flag: &str, s: &str) -> Result<u64, CliError> {
    let bad = || {
        CliError::Args(ArgError::BadValue {
            flag: flag.into(),
            value: s.into(),
        })
    };
    let (digits, shift) = match s.trim().to_ascii_lowercase() {
        t if t.ends_with('k') => (t[..t.len() - 1].to_owned(), 10),
        t if t.ends_with('m') => (t[..t.len() - 1].to_owned(), 20),
        t if t.ends_with('g') => (t[..t.len() - 1].to_owned(), 30),
        t => (t, 0),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    n.checked_shl(shift).filter(|v| v >> shift == n).ok_or_else(bad)
}

/// Builds the two ingestion budgets from `--max-input-bytes` /
/// `--max-network-bytes` (absent flags mean unlimited). Sizes accept
/// `k`/`m`/`g` suffixes.
pub(crate) fn budgets_from_args(args: &ParsedArgs) -> Result<IngestBudgets, CliError> {
    let budget = |flag: &str| -> Result<std::sync::Arc<MemBudget>, CliError> {
        Ok(std::sync::Arc::new(match args.value(flag) {
            Some(s) => MemBudget::bytes(parse_bytes(flag, s)?),
            None => MemBudget::unlimited(),
        }))
    };
    Ok(IngestBudgets {
        input: budget("max-input-bytes")?,
        network: budget("max-network-bytes")?,
    })
}

/// The `ND015` diagnostic text for an ingestion-time exhaustion,
/// attributed to `file`.
fn nd015_message(file: DoctorFile, e: &netart_govern::Exhausted) -> String {
    doctor::resource_exhausted(file, e).to_string()
}

/// Streams one record file under `budget`. The kept records' bytes
/// stay charged until the caller releases them; an exhaustion maps to
/// [`CliError::ResourceExhausted`] carrying the `ND015` text.
pub(crate) fn read_records_gov(
    path: &Path,
    budget: &MemBudget,
    stage: &'static str,
    file: DoctorFile,
) -> Result<Vec<Record>, CliError> {
    let f = fs::File::open(path).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })?;
    ingest::read_records(std::io::BufReader::new(f), budget, stage).map_err(|e| match e {
        IngestError::Io(source) => CliError::Io {
            path: path.to_owned(),
            source,
        },
        IngestError::Exhausted(x) => CliError::ResourceExhausted {
            path: path.to_owned(),
            message: nd015_message(file, &x),
        },
        IngestError::Parse(p) => CliError::Parse {
            path: path.to_owned(),
            message: p.to_string(),
        },
    })
}

/// Reads a whole non-record file (an ESCHER diagram) under `budget`:
/// its on-disk size is charged before the bytes are loaded, so an
/// oversized file is refused up front with exact counts. Returns the
/// text and the charged byte count, which the caller releases once
/// parsing is done.
pub(crate) fn read_text_gov(
    path: &Path,
    budget: &MemBudget,
    stage: &'static str,
) -> Result<(String, u64), CliError> {
    let len = fs::metadata(path)
        .map_err(|source| CliError::Io {
            path: path.to_owned(),
            source,
        })?
        .len();
    budget
        .try_charge(stage, len)
        .map_err(|x| CliError::ResourceExhausted {
            path: path.to_owned(),
            message: format!("{} {x}", DoctorCode::ResourceExhausted.as_str()),
        })?;
    match read(path) {
        Ok(text) => Ok((text, len)),
        Err(e) => {
            budget.release(len);
            Err(e)
        }
    }
}

/// Turns a caught [`CliError::ResourceExhausted`] into the degraded
/// (exit 2) outcome the governor contract promises: the refusal is
/// reported with its `ND015` diagnostic, nothing is written, and under
/// `--strict` the exit hardens to 1.
pub(crate) fn exhausted_output(
    error: &CliError,
    strict: bool,
    message_to_stderr: bool,
) -> RunOutput {
    RunOutput {
        message: format!("input refused: {error}"),
        degraded: true,
        strict,
        message_to_stderr,
    }
}

fn write(path: &Path, contents: &str) -> Result<(), CliError> {
    fs::write(path, contents).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })
}

/// Loads every `*.qto` quinto module description in the library
/// directory (`-L`, falling back to `$USER_LIB` like the paper's
/// tools), running each through the module doctor under `policy`.
pub(crate) fn load_library(
    args: &ParsedArgs,
    policy: InputPolicy,
    budgets: &IngestBudgets,
    degs: &mut Vec<DegradationReport>,
) -> Result<Library, CliError> {
    let dir = match args.value("L") {
        Some(d) => PathBuf::from(d),
        None => std::env::var_os("USER_LIB")
            .map(PathBuf::from)
            .ok_or_else(|| {
                CliError::Other("no module library: pass -L <dir> or set USER_LIB".into())
            })?,
    };
    load_library_dir(&dir, policy, budgets, degs)
}

/// The directory-parameterised core of [`load_library`], reused by
/// `netart stress` on its generated library.
pub(crate) fn load_library_dir(
    dir: &Path,
    policy: InputPolicy,
    budgets: &IngestBudgets,
    degs: &mut Vec<DegradationReport>,
) -> Result<Library, CliError> {
    let mut lib = Library::new();
    let entries = fs::read_dir(dir).map_err(|source| CliError::Io {
        path: dir.to_owned(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "qto"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Other(format!(
            "no .qto module descriptions in {}",
            dir.display()
        )));
    }
    for p in paths {
        let recs = read_records_gov(&p, &budgets.input, "module file", DoctorFile::Module)?;
        let kept: u64 = recs.iter().map(Record::cost).sum();
        let doctored = doctor::doctor_module_records(recs, policy);
        budgets.input.release(kept);
        let (template, report) = doctored.map_err(|e| CliError::Parse {
            path: p.clone(),
            message: e.to_string(),
        })?;
        doctor_degradations(&p, &report, degs);
        let name = template.name().to_owned();
        if lib.add_template(template).is_err() {
            // Two .qto files declare the same module name.
            let code = DoctorCode::DuplicateTemplate;
            let message = format!(
                "{} [{}] duplicate module template `{name}` (repair: kept the first file)",
                code.as_str(),
                p.display(),
            );
            if policy == InputPolicy::Strict {
                return Err(CliError::Parse { path: p, message });
            }
            degs.push(cli_degradation(
                "doctor_repair",
                Some(code.as_str().to_owned()),
                message,
            ));
        }
    }
    Ok(lib)
}

/// Parses the Appendix A positional files `net-list call-file
/// [io-file]` through the netlist doctor under `policy`, collecting
/// applied repairs as degradation records.
pub(crate) fn load_network(
    args: &ParsedArgs,
    policy: InputPolicy,
    budgets: &IngestBudgets,
) -> Result<(Network, Vec<DegradationReport>), CliError> {
    let mut degs = Vec::new();
    let lib = load_library(args, policy, budgets, &mut degs)?;
    let files = args.positionals();
    let (network, mut net_degs) = load_network_files(
        lib,
        Path::new(&files[0]),
        Path::new(&files[1]),
        files.get(2).map(Path::new),
        policy,
        budgets,
    )?;
    degs.append(&mut net_degs);
    Ok((network, degs))
}

/// Parses one netlist group (`net-list call-file [io-file]`) through
/// the doctor under `policy` — the path-parameterised core of
/// [`load_network`], reused per job by `netart batch`.
pub(crate) fn load_network_files(
    lib: Library,
    net_list_path: &Path,
    calls_path: &Path,
    io_path: Option<&Path>,
    policy: InputPolicy,
    budgets: &IngestBudgets,
) -> Result<(Network, Vec<DegradationReport>), CliError> {
    let mut degs = Vec::new();
    let kept = std::cell::Cell::new(0u64);
    let load = |path: &Path, stage: &'static str, file: DoctorFile| {
        let recs = read_records_gov(path, &budgets.input, stage, file)?;
        kept.set(kept.get() + recs.iter().map(Record::cost).sum::<u64>());
        Ok::<_, CliError>(recs)
    };
    let loaded = (|| {
        Ok((
            load(net_list_path, "net-list file", DoctorFile::NetList)?,
            load(calls_path, "call file", DoctorFile::Calls)?,
            match io_path {
                Some(f) => Some(load(f, "io file", DoctorFile::Io)?),
                None => None,
            },
        ))
    })();
    let (net_records, call_records, io_records) = match loaded {
        Ok(v) => v,
        Err(e) => {
            // A failed sibling read drops the already-kept records.
            budgets.input.release(kept.get());
            return Err(e);
        }
    };
    let kept = kept.get();
    let doctored = doctor::doctor_network_records(
        lib,
        net_records,
        call_records,
        io_records,
        policy,
        &budgets.network,
    );
    // The records were consumed by the doctor; what survives is the
    // network, accounted on the network budget.
    budgets.input.release(kept);
    let (network, report) = doctored.map_err(|e| {
        // Attribute the rejection to the first defective file.
        let which = e
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map_or(DoctorFile::NetList, |d| d.file);
        let path = match which {
            DoctorFile::Calls => calls_path,
            DoctorFile::Io => io_path.unwrap_or(net_list_path),
            _ => net_list_path,
        };
        if e.diagnostics
            .iter()
            .any(|d| d.code == DoctorCode::ResourceExhausted)
        {
            CliError::ResourceExhausted {
                path: path.to_owned(),
                message: e.to_string(),
            }
        } else {
            CliError::Parse {
                path: path.to_owned(),
                message: e.to_string(),
            }
        }
    })?;
    doctor_degradations(net_list_path, &report, &mut degs);
    Ok((network, degs))
}

/// Serialises the diagram to ESCHER text with an always-on self-check:
/// the text must parse back into a diagram, otherwise the emission is
/// redone once (recording an `emit_retried` degradation when a fault
/// site caused it) and the re-check must pass.
pub(crate) fn checked_escher(
    name: &str,
    diagram: &Diagram,
    degs: &mut Vec<DegradationReport>,
) -> Result<String, CliError> {
    let attempt = || -> Result<String, String> {
        let mut text = escher::write_diagram(name, diagram);
        match netart_fault::fire(netart_fault::sites::EMIT_ESCHER) {
            Some(FaultKind::GarbageOutput) => text.push_str("scrambled trailing record\n"),
            Some(kind) => return Err(format!("injected {kind} fault at `emit.escher`")),
            None => {}
        }
        escher::parse_diagram(diagram.network().clone(), &text)
            .map_err(|e| format!("emitted diagram does not re-parse: {e}"))?;
        Ok(text)
    };
    let fired_before = netart_fault::fired_count();
    let detail = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&attempt)) {
        Ok(Ok(text)) => return Ok(text),
        Ok(Err(message)) => message,
        Err(payload) => {
            if netart_fault::fired_count() == fired_before {
                std::panic::resume_unwind(payload);
            }
            panic_message(payload)
        }
    };
    if netart_fault::fired_count() == fired_before {
        // A genuine emitter defect, not an injected one: refuse to
        // write a diagram that cannot be read back.
        return Err(CliError::Other(detail));
    }
    degs.push(cli_degradation("emit_retried", None, detail));
    attempt().map_err(CliError::Other)
}

fn emit_diagram(
    args: &ParsedArgs,
    name: &str,
    diagram: &Diagram,
    degs: &mut Vec<DegradationReport>,
) -> Result<String, CliError> {
    let out = args.value("o").unwrap_or(name);
    let esc = PathBuf::from(format!("{out}.esc"));
    write(&esc, &checked_escher(out, diagram, degs)?)?;
    let svg_path = PathBuf::from(format!("{out}.svg"));
    write(&svg_path, &svg::render(diagram))?;
    Ok(format!("wrote {} and {}", esc.display(), svg_path.display()))
}

/// `pablo [-p n] [-b n] [-c n] [-e n] [-i n] [-s n] [-g preplaced.esc]
/// [--input-policy strict|repair|best-effort] [--inject spec]
/// [--trace-out trace.json] [--trace-level lvl] [--log-json]
/// [-L libdir] [-o name] net-list call-file [io-file]`
///
/// Places the network (Appendix E). With `-g` the given ESCHER diagram
/// is kept as the preplaced part. Writes `<name>.esc` / `<name>.svg`
/// with modules and terminals only — nets are EUREKA's job — and
/// returns a human-readable summary (with one warning line per input
/// repair the doctor applied). `--trace-out` records the placement
/// passes as a Chrome trace-event file.
///
/// # Errors
///
/// Any [`CliError`] condition.
pub fn run_pablo(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "p", "b", "c", "e", "i", "s", "g", "L", "o", "input-policy", "inject", "trace-out",
            "trace-level", "max-input-bytes", "max-network-bytes",
        ],
        &["log-json"],
        (2, 3),
    )?;
    let message_to_stderr = stdout_claimed(&args)?;
    let trace_buffer = install_subscriber(&args)?;
    arm_faults(&args)?;
    let policy = input_policy(&args)?;
    let budgets = budgets_from_args(&args)?;
    let (network, mut degs) =
        match parse_with_recovery(|| load_network(&args, policy, &budgets)) {
            Ok(v) => v,
            Err(e @ CliError::ResourceExhausted { .. }) => {
                return Ok(exhausted_output(&e, false, message_to_stderr))
            }
            Err(e) => return Err(e),
        };

    let mut config = PlaceConfig::new()
        .with_max_part_size(args.parsed("p", 1usize)?)
        .with_max_box_size(args.parsed("b", 1usize)?)
        .with_part_spacing(args.parsed("e", 0i32)?)
        .with_box_spacing(args.parsed("i", 0i32)?)
        .with_module_spacing(args.parsed("s", 0i32)?);
    if let Some(c) = args.value("c") {
        config = config.with_max_connections(c.parse().map_err(|_| ArgError::BadValue {
            flag: "c".into(),
            value: c.into(),
        })?);
    }

    let preplaced = match args.value("g") {
        Some(file) => {
            let path = Path::new(file);
            let (text, len) = match read_text_gov(path, &budgets.input, "seed diagram file") {
                Ok(v) => v,
                Err(e @ CliError::ResourceExhausted { .. }) => {
                    return Ok(exhausted_output(&e, false, message_to_stderr))
                }
                Err(e) => return Err(e),
            };
            let parsed = escher::parse_diagram(network.clone(), &text);
            drop(text);
            budgets.input.release(len);
            let diagram = parsed.map_err(|e| CliError::Parse {
                path: path.to_owned(),
                message: e.to_string(),
            })?;
            let (_, placement, _) = diagram.into_parts();
            doctor_seeds(&network, placement, path, policy, &mut degs)?
        }
        None => netart::diagram::Placement::new(&network),
    };

    let placement = Pablo::new(config).place_with_preplaced(&network, preplaced);
    let structure = placement
        .structure()
        .map(|s| {
            format!(
                "{} partitions, {} boxes, longest string {}",
                s.partition_count(),
                s.box_count(),
                s.longest_string()
            )
        })
        .unwrap_or_default();
    let diagram = Diagram::new(network, placement);
    let files = emit_diagram(&args, "pablo_out", &diagram, &mut degs)?;
    let mut message = format!(
        "placed {} modules and {} terminals ({structure}); {files}",
        diagram.network().module_count(),
        diagram.network().system_term_count(),
    );
    for d in &degs {
        message.push_str(&format!(
            "\nwarning: {}",
            d.detail.as_deref().unwrap_or(&d.kind)
        ));
    }
    write_trace(&args, trace_buffer.as_ref())?;
    Ok(RunOutput {
        message,
        degraded: false,
        strict: false,
        message_to_stderr,
    })
}

/// Validates a preplaced seed diagram (`pablo -g`): strictly
/// overlapping seed modules are ND012 defects — rejected under
/// `strict`, dropped (latest first) and re-placed by PABLO under
/// `repair`/`best-effort`.
fn doctor_seeds(
    network: &Network,
    placement: netart::diagram::Placement,
    source: &Path,
    policy: InputPolicy,
    degs: &mut Vec<DegradationReport>,
) -> Result<netart::diagram::Placement, CliError> {
    let placed: Vec<_> = network
        .modules()
        .filter(|&m| placement.module(m).is_some())
        .collect();
    let mut keep = vec![true; placed.len()];
    let mut dropped = Vec::new();
    for i in 0..placed.len() {
        if !keep[i] {
            continue;
        }
        let a = placement.module_rect(network, placed[i]);
        for j in (i + 1)..placed.len() {
            if !keep[j] {
                continue;
            }
            let b = placement.module_rect(network, placed[j]);
            if a.overlaps_strictly(&b) {
                keep[j] = false;
                let message = format!(
                    "{} [{}] seed placement of `{}` overlaps `{}` (repair: dropped the \
                     later seed; PABLO re-places it)",
                    DoctorCode::OverlappingSeeds.as_str(),
                    source.display(),
                    network.instance(placed[j]).name(),
                    network.instance(placed[i]).name(),
                );
                dropped.push((placed[j], message));
            }
        }
    }
    if dropped.is_empty() {
        return Ok(placement);
    }
    if policy == InputPolicy::Strict {
        return Err(CliError::Parse {
            path: source.to_owned(),
            message: dropped
                .iter()
                .map(|(_, m)| m.as_str())
                .collect::<Vec<_>>()
                .join("\n"),
        });
    }
    for (_, message) in &dropped {
        degs.push(cli_degradation(
            "doctor_repair",
            Some(DoctorCode::OverlappingSeeds.as_str().to_owned()),
            message.clone(),
        ));
    }
    // Placements are append-only, so rebuild without the dropped seeds.
    let mut repaired = netart::diagram::Placement::new(network);
    for (idx, &m) in placed.iter().enumerate() {
        if keep[idx] {
            if let Some(p) = placement.module(m) {
                repaired.place_module(m, p.position, p.rotation);
            }
        }
    }
    for st in network.system_terms() {
        if let Some(p) = placement.system_term(st) {
            repaired.place_system_term(st, p);
        }
    }
    Ok(repaired)
}

/// `eureka [-u] [-d] [-r] [-l] [-s] [-m margin] [--order def|most|few]
/// [--no-claims] [--route-timeout ms] [--max-nodes n] [--strict]
/// [--report-json report.json] [--log-json] [--trace-level lvl]
/// [-L libdir] [-o name] --diagram placed.esc net-list call-file
/// [io-file]`
///
/// Routes the nets of a placed diagram (Appendix F). The placement
/// comes from `--diagram` (a pablo or hand-edited ESCHER file, possibly
/// with prerouted nets); the netlist files supply the connection rules.
/// `--route-timeout`/`--max-nodes` bound the per-net search effort (the
/// salvage cascade handles nets that bust the budget); see
/// [`RunOutput`] for how degraded runs exit. `--report-json` writes the
/// machine-readable run report, `--trace-level`/`--log-json` stream
/// diagnostics to stderr.
///
/// # Errors
///
/// Any [`CliError`] condition.
pub fn run_eureka(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "m", "order", "L", "o", "diagram", "route-timeout", "max-nodes", "report-json",
            "trace-out", "trace-level", "input-policy", "inject", "max-input-bytes",
            "max-network-bytes",
        ],
        &["u", "d", "r", "l", "s", "no-claims", "no-salvage", "strict", "log-json"],
        (2, 3),
    )?;
    let message_to_stderr = stdout_claimed(&args)?;
    let trace_buffer = install_subscriber(&args)?;
    arm_faults(&args)?;
    let policy = input_policy(&args)?;
    let budgets = budgets_from_args(&args)?;
    let strict = args.has("strict");
    let alloc_base = netart::obs::AllocSnapshot::capture();
    let t_parse = Instant::now();
    let parse_tag = netart::obs::enter_phase("parse");
    let (network, mut cli_degs) =
        match parse_with_recovery(|| load_network(&args, policy, &budgets)) {
            Ok(v) => v,
            Err(e @ CliError::ResourceExhausted { .. }) => {
                return Ok(exhausted_output(&e, strict, message_to_stderr))
            }
            Err(e) => return Err(e),
        };

    let diagram_file = args
        .value("diagram")
        .ok_or_else(|| CliError::Other("eureka needs --diagram <placed.esc>".into()))?;
    let path = Path::new(diagram_file);
    let (esc_text, esc_len) = match read_text_gov(path, &budgets.input, "diagram file") {
        Ok(v) => v,
        Err(e @ CliError::ResourceExhausted { .. }) => {
            return Ok(exhausted_output(&e, strict, message_to_stderr))
        }
        Err(e) => return Err(e),
    };
    let diagram =
        escher::parse_diagram(network, &esc_text).map_err(|e| CliError::Parse {
            path: path.to_owned(),
            message: e.to_string(),
        })?;
    drop(esc_text);
    budgets.input.release(esc_len);
    drop(parse_tag);
    let parse_ns = ns(t_parse.elapsed());

    let mut config = RouteConfig::new()
        .with_margin(args.parsed("m", 4i32)?)
        .with_budget(budget_from_args(&args)?);
    if args.has("u") {
        config = config.with_fixed_up();
    }
    if args.has("d") {
        config = config.with_fixed_down();
    }
    if args.has("r") {
        config = config.with_fixed_right();
    }
    if args.has("l") {
        config = config.with_fixed_left();
    }
    if args.has("s") {
        config = config.with_swapped_tiebreak();
    }
    if args.has("no-claims") {
        config = config.without_claimpoints();
    }
    if args.has("no-salvage") {
        config = config.without_salvage();
    }
    config = config.with_order(match args.value("order").unwrap_or("def") {
        "def" => NetOrder::Definition,
        "most" => NetOrder::MostPinsFirst,
        "few" => NetOrder::FewestPinsFirst,
        other => {
            return Err(ArgError::BadValue {
                flag: "order".into(),
                value: other.into(),
            }
            .into())
        }
    });

    let outcome = Generator::new()
        .with_routing(config)
        .route_diagram(diagram)
        .map_err(|e| CliError::Other(e.to_string()))?;
    let report = &outcome.report;
    let mut summary = format!(
        "routed {}/{} nets",
        report.routed.len(),
        report.routed.len() + report.failed.len()
    );
    summary.push_str(&salvage_summary(&outcome.diagram, report));
    let t_emit = Instant::now();
    let emit_tag = netart::obs::enter_phase("emit");
    let files = emit_diagram(&args, "eureka_out", &outcome.diagram, &mut cli_degs)?;
    drop(emit_tag);
    let mut run_report = outcome.run_report("eureka");
    run_report.push_phase_front("parse", parse_ns);
    run_report.push_phase("emit", ns(t_emit.elapsed()));
    netart::obs::attach_alloc_profile(&mut run_report, &alloc_base);
    for d in &cli_degs {
        summary.push_str(&format!(
            "\nwarning: {}",
            d.detail.as_deref().unwrap_or(&d.kind)
        ));
        run_report.push_degradation(d.clone());
    }
    write_report(&args, &run_report)?;
    write_trace(&args, trace_buffer.as_ref())?;
    Ok(RunOutput {
        message: format!("{summary}\n{}\n{files}", outcome.diagram.metrics()),
        degraded: !outcome.is_clean() || !cli_degs.is_empty(),
        strict: args.has("strict"),
        message_to_stderr,
    })
}

/// Warning lines for nets that needed the salvage cascade or stayed
/// unroutable.
fn salvage_summary(diagram: &Diagram, report: &netart::route::RouteReport) -> String {
    use netart::route::SalvageStep;
    let mut out = String::new();
    for record in &report.salvaged {
        let name = diagram.network().net(record.net).name();
        let how = match record.step {
            SalvageStep::RipUpRetry => "salvaged by rip-up and retry",
            SalvageStep::LeeFallback => "salvaged by the Lee fallback router",
            SalvageStep::GhostWire => "unroutable; drawn as a ghost wire",
        };
        out.push_str(&format!("\nwarning: net `{name}` {how}"));
    }
    for &n in &report.failed {
        if report.salvaged.iter().any(|r| r.net == n) {
            continue;
        }
        out.push_str(&format!(
            "\nwarning: net `{}` is unroutable",
            diagram.network().net(n).name()
        ));
    }
    out
}

/// `netart [-p n] [-b n] [-c n] [-e n] [-i n] [-s n] [-m margin]
/// [--order def|most|few] [--no-claims] [--route-timeout ms]
/// [--max-nodes n] [--strict] [--art] [--report-json report.json]
/// [--log-json] [--trace-level lvl] [-L libdir] [-o name] net-list
/// call-file [io-file]`
///
/// The full pipeline — PABLO placement followed by EUREKA routing — in
/// one invocation. `--art` appends an ASCII rendering of the finished
/// diagram to the output. Writes `<name>.esc` / `<name>.svg` (with the
/// partition/box structure overlaid in the SVG).
/// `--route-timeout`/`--max-nodes` bound the per-net search effort; see
/// [`RunOutput`] for how degraded runs exit. `--report-json` writes the
/// machine-readable run report, `--trace-level`/`--log-json` stream
/// diagnostics to stderr.
///
/// # Errors
///
/// Any [`CliError`] condition.
pub fn run_netart(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "p", "b", "c", "e", "i", "s", "m", "order", "L", "o", "route-timeout", "max-nodes",
            "report-json", "trace-out", "trace-level", "input-policy", "inject",
            "max-input-bytes", "max-network-bytes",
        ],
        &["no-claims", "no-salvage", "art", "strict", "log-json"],
        (2, 3),
    )?;
    let message_to_stderr = stdout_claimed(&args)?;
    let trace_buffer = install_subscriber(&args)?;
    arm_faults(&args)?;
    let policy = input_policy(&args)?;
    let budgets = budgets_from_args(&args)?;
    // Heap-attribution window for the whole run (a no-op stub unless
    // built with `--features alloc-profile`). Parse and emit are
    // phases without spans, so they tag themselves with guards.
    let alloc_base = netart::obs::AllocSnapshot::capture();
    let t_parse = Instant::now();
    let parse_tag = netart::obs::enter_phase("parse");
    let (network, mut cli_degs) =
        match parse_with_recovery(|| load_network(&args, policy, &budgets)) {
            Ok(v) => v,
            Err(e @ CliError::ResourceExhausted { .. }) => {
                return Ok(exhausted_output(&e, args.has("strict"), message_to_stderr))
            }
            Err(e) => return Err(e),
        };
    drop(parse_tag);
    let parse_ns = ns(t_parse.elapsed());

    let mut place = PlaceConfig::new()
        .with_max_part_size(args.parsed("p", 1usize)?)
        .with_max_box_size(args.parsed("b", 1usize)?)
        .with_part_spacing(args.parsed("e", 0i32)?)
        .with_box_spacing(args.parsed("i", 0i32)?)
        .with_module_spacing(args.parsed("s", 0i32)?);
    if let Some(c) = args.value("c") {
        place = place.with_max_connections(c.parse().map_err(|_| ArgError::BadValue {
            flag: "c".into(),
            value: c.into(),
        })?);
    }
    let mut route = RouteConfig::new()
        .with_margin(args.parsed("m", 4i32)?)
        .with_budget(budget_from_args(&args)?);
    if args.has("no-claims") {
        route = route.without_claimpoints();
    }
    if args.has("no-salvage") {
        route = route.without_salvage();
    }
    route = route.with_order(match args.value("order").unwrap_or("def") {
        "def" => NetOrder::Definition,
        "most" => NetOrder::MostPinsFirst,
        "few" => NetOrder::FewestPinsFirst,
        other => {
            return Err(ArgError::BadValue {
                flag: "order".into(),
                value: other.into(),
            }
            .into())
        }
    });

    let outcome = netart::Generator::new()
        .with_placing(place)
        .with_routing(route)
        .generate(network);
    let diagram = &outcome.diagram;
    let out = args.value("o").unwrap_or("netart_out");
    let t_emit = Instant::now();
    let emit_tag = netart::obs::enter_phase("emit");
    write(
        Path::new(&format!("{out}.esc")),
        &checked_escher(out, diagram, &mut cli_degs)?,
    )?;
    write(
        Path::new(&format!("{out}.svg")),
        &svg::render_with_structure(diagram),
    )?;
    drop(emit_tag);
    let mut run_report = outcome.run_report("netart");
    run_report.push_phase_front("parse", parse_ns);
    run_report.push_phase("emit", ns(t_emit.elapsed()));
    netart::obs::attach_alloc_profile(&mut run_report, &alloc_base);
    for d in &cli_degs {
        run_report.push_degradation(d.clone());
    }
    write_report(&args, &run_report)?;
    write_trace(&args, trace_buffer.as_ref())?;

    let mut summary = format!(
        "placed {} modules in {:?}; routed {}/{} nets in {:?}\n{}\nwrote {out}.esc and {out}.svg",
        diagram.network().module_count(),
        outcome.place_time,
        outcome.report.routed.len(),
        outcome.report.routed.len() + outcome.report.failed.len(),
        outcome.route_time,
        diagram.metrics(),
    );
    summary.push_str(&salvage_summary(diagram, &outcome.report));
    for d in &outcome.degradations {
        match d {
            netart::Degradation::PlacementRecovered(msg) => {
                summary.push_str(&format!(
                    "\nwarning: placer crashed ({msg}); used a fallback grid placement"
                ));
            }
            netart::Degradation::RoutingAborted(msg) => {
                summary.push_str(&format!(
                    "\nwarning: router crashed ({msg}); diagram has no wires"
                ));
            }
            // Per-net degradations already covered by salvage_summary.
            netart::Degradation::NetSalvaged { .. } | netart::Degradation::NetUnrouted(_) => {}
        }
    }
    for d in &cli_degs {
        summary.push_str(&format!(
            "\nwarning: {}",
            d.detail.as_deref().unwrap_or(&d.kind)
        ));
    }
    if args.has("art") {
        summary.push('\n');
        summary.push_str(&netart::diagram::ascii::render(diagram));
    }
    Ok(RunOutput {
        message: summary,
        degraded: !outcome.is_clean() || !cli_degs.is_empty(),
        strict: args.has("strict"),
        message_to_stderr,
    })
}

/// `quinto [-L libdir] [--input-policy strict|repair|best-effort]
/// [--inject spec] [--trace-out trace.json] [--trace-level lvl]
/// [--log-json] description.qto […]`
///
/// Validates module descriptions (Appendix B) through the module
/// doctor and installs them into the library directory. Under
/// `repair`/`best-effort` the *repaired* description is what gets
/// installed, with one warning line per applied repair. `--trace-out`
/// records the doctor's work as a Chrome trace-event file.
///
/// # Errors
///
/// Any [`CliError`] condition.
pub fn run_quinto(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "L", "input-policy", "inject", "trace-out", "trace-level", "max-input-bytes",
            "max-network-bytes",
        ],
        &["log-json"],
        (1, usize::MAX),
    )?;
    let message_to_stderr = stdout_claimed(&args)?;
    let trace_buffer = install_subscriber(&args)?;
    arm_faults(&args)?;
    let policy = input_policy(&args)?;
    let budgets = budgets_from_args(&args)?;
    let dir = match args.value("L") {
        Some(d) => PathBuf::from(d),
        None => std::env::var_os("USER_LIB")
            .map(PathBuf::from)
            .ok_or_else(|| CliError::Other("pass -L <dir> or set USER_LIB".into()))?,
    };
    fs::create_dir_all(&dir).map_err(|source| CliError::Io {
        path: dir.clone(),
        source,
    })?;
    let mut added = Vec::new();
    let mut warnings = String::new();
    for file in args.positionals() {
        let path = Path::new(file);
        let recs = match read_records_gov(path, &budgets.input, "module file", DoctorFile::Module)
        {
            Ok(recs) => recs,
            Err(e @ CliError::ResourceExhausted { .. }) => {
                return Ok(exhausted_output(&e, false, message_to_stderr))
            }
            Err(e) => return Err(e),
        };
        let kept: u64 = recs.iter().map(Record::cost).sum();
        let doctored = doctor::doctor_module_records(recs, policy);
        budgets.input.release(kept);
        let (template, report) = doctored.map_err(|e| CliError::Parse {
            path: path.to_owned(),
            message: e.to_string(),
        })?;
        for d in &report.diagnostics {
            warnings.push_str(&format!("\nwarning: {}: {d}", path.display()));
        }
        let target = dir.join(format!("{}.qto", template.name()));
        write(&target, &quinto::write_module(&template))?;
        added.push(template.name().to_owned());
    }
    write_trace(&args, trace_buffer.as_ref())?;
    Ok(RunOutput {
        message: format!(
            "added {} module(s): {}{warnings}",
            added.len(),
            added.join(", ")
        ),
        degraded: false,
        strict: false,
        message_to_stderr,
    })
}

/// `netart report diff [--band n] [--diff-json out.json] baseline.json
/// current.json`
///
/// Compares two run-report files with the baseline differ: counters,
/// per-net effort, degradations and quality exactly, phase wall times
/// band-tolerantly (`--band` log-2 buckets of slack, default 1).
/// `--diff-json` additionally writes the machine-readable diff (`-`
/// for stdout; the text summary then moves to stderr). The caller
/// exits 3 when [`DiffOutput::regressed`] is set.
///
/// # Errors
///
/// Any [`CliError`] condition, including unreadable or malformed
/// report files.
pub fn run_report_diff(argv: &[String]) -> Result<DiffOutput, CliError> {
    let args = ParsedArgs::parse(argv, &["band", "diff-json"], &[], (2, 2))?;
    let band = args.parsed("band", 1usize)?;
    let load = |path: &str| -> Result<RunReport, CliError> {
        let text = read(Path::new(path))?;
        let json = Json::parse(&text).map_err(|e| CliError::Parse {
            path: PathBuf::from(path),
            message: e.to_string(),
        })?;
        // Heat-map profiles diff through the same machinery: both
        // sides are lowered to a synthetic counter-only RunReport, so
        // a self-diff is empty and cell drift shows up as a counter
        // regression.
        if ProfileReport::is_profile_json(&json) {
            return ProfileReport::from_json(&json)
                .map(|profile| profile.to_run_report())
                .map_err(|message| CliError::Parse {
                    path: PathBuf::from(path),
                    message,
                });
        }
        RunReport::from_json(&json).map_err(|message| CliError::Parse {
            path: PathBuf::from(path),
            message,
        })
    };
    let files = args.positionals();
    let baseline = load(&files[0])?;
    let current = load(&files[1])?;
    let diff = ReportDiff::diff_with(&baseline, &current, DiffConfig { band_buckets: band });
    let mut message_to_stderr = false;
    if let Some(path) = args.value("diff-json") {
        write_or_stdout(path, &diff.to_json().render_pretty())?;
        message_to_stderr = path == "-";
    }
    let regressed = diff.is_regression();
    let verdict = if regressed {
        let names: Vec<&str> = diff.regressions().map(|e| e.metric.as_str()).collect();
        format!("REGRESSION: {}", names.join(", "))
    } else {
        "ok: no regressions".to_owned()
    };
    let mut message = diff.render_text();
    message.push('\n');
    message.push_str(&verdict);
    Ok(DiffOutput {
        message,
        regressed,
        message_to_stderr,
    })
}

/// What `netart report diff` produced, and how the process should
/// exit: 0 when clean, 3 on regression, 1 on error.
#[derive(Debug, Clone)]
pub struct DiffOutput {
    /// The text summary (one line per differing metric plus a verdict).
    pub message: String,
    /// `true` when any compared metric regressed — the exit 3 case.
    pub regressed: bool,
    /// `true` when `--diff-json -` claimed stdout.
    pub message_to_stderr: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// A scratch directory unique to the test.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netart-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn write_inputs(dir: &Path) -> (String, String, String, String) {
        let lib = dir.join("lib");
        fs::create_dir_all(&lib).unwrap();
        fs::write(lib.join("inv.qto"), "module inv 40 20\nin a 0 10\nout y 40 10\n").unwrap();
        let nets = dir.join("design.net");
        fs::write(&nets, "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\n").unwrap();
        let calls = dir.join("design.call");
        fs::write(&calls, "u0 inv\nu1 inv\n").unwrap();
        let io = dir.join("design.io");
        fs::write(&io, "in in\n").unwrap();
        (
            lib.to_string_lossy().into_owned(),
            nets.to_string_lossy().into_owned(),
            calls.to_string_lossy().into_owned(),
            io.to_string_lossy().into_owned(),
        )
    }

    #[test]
    fn pablo_then_eureka_full_flow() {
        let dir = scratch("flow");
        let (lib, nets, calls, io) = write_inputs(&dir);
        let out = dir.join("placed").to_string_lossy().into_owned();

        let msg = run_pablo(&argv(&[
            "-p", "7", "-b", "5", "-L", &lib, "-o", &out, &nets, &calls, &io,
        ]))
        .expect("pablo runs")
        .message;
        assert!(msg.contains("placed 2 modules"), "{msg}");
        assert!(dir.join("placed.esc").exists());
        assert!(dir.join("placed.svg").exists());

        let routed_out = dir.join("routed").to_string_lossy().into_owned();
        let esc = dir.join("placed.esc").to_string_lossy().into_owned();
        let out = run_eureka(&argv(&[
            "-L", &lib, "--diagram", &esc, "-o", &routed_out, &nets, &calls, &io,
        ]))
        .expect("eureka runs");
        assert!(out.message.contains("routed 2/2"), "{}", out.message);
        assert!(!out.degraded, "clean run: {}", out.message);
        assert_eq!(out.exit_code(), std::process::ExitCode::SUCCESS);
        assert!(dir.join("routed.esc").exists());
        assert!(dir.join("routed.svg").exists());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn quinto_installs_modules() {
        let dir = scratch("quinto");
        let lib = dir.join("lib").to_string_lossy().into_owned();
        let desc = dir.join("buf.qto");
        fs::write(&desc, "module buf 20 20\nin a 0 10\nout y 20 10\n").unwrap();
        let msg = run_quinto(&argv(&["-L", &lib, &desc.to_string_lossy()]))
            .expect("quinto runs")
            .message;
        assert!(msg.contains("buf"), "{msg}");
        assert!(Path::new(&lib).join("buf.qto").exists());
        // Bad description is rejected with the file named.
        let bad = dir.join("bad.qto");
        fs::write(&bad, "module bad 41 20\n").unwrap();
        let err = run_quinto(&argv(&["-L", &lib, &bad.to_string_lossy()])).unwrap_err();
        assert!(err.to_string().contains("bad.qto"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn netart_runs_the_full_pipeline() {
        let dir = scratch("umbrella");
        let (lib, nets, calls, io) = write_inputs(&dir);
        let out = dir.join("full").to_string_lossy().into_owned();
        let run = run_netart(&argv(&[
            "-p", "7", "-b", "5", "--art", "-L", &lib, "-o", &out, &nets, &calls, &io,
        ]))
        .expect("netart runs");
        let msg = &run.message;
        assert!(msg.contains("routed 2/2"), "{msg}");
        assert!(msg.contains("u0"), "ASCII art appended: {msg}");
        assert!(!run.degraded, "{msg}");
        assert!(dir.join("full.esc").exists());
        assert!(dir.join("full.svg").exists());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn netart_writes_run_report() {
        let dir = scratch("report");
        let (lib, nets, calls, io) = write_inputs(&dir);
        let out = dir.join("rep").to_string_lossy().into_owned();
        let report = dir.join("report.json").to_string_lossy().into_owned();
        let run = run_netart(&argv(&[
            "-L",
            &lib,
            "-o",
            &out,
            "--report-json",
            &report,
            &nets,
            &calls,
            &io,
        ]))
        .expect("netart runs");
        let doc = fs::read_to_string(dir.join("report.json")).expect("report written");
        assert!(doc.contains("\"schema_version\": 3"), "{doc}");
        assert!(doc.contains("\"tool\": \"netart\""), "{doc}");
        for phase in ["parse", "place", "route", "emit"] {
            assert!(doc.contains(&format!("\"name\": \"{phase}\"")), "{doc}");
        }
        assert!(doc.contains("\"is_clean\": true"), "{doc}");
        assert!(!run.degraded);

        // The eureka flow writes a report of its own.
        let esc = dir.join("rep.esc").to_string_lossy().into_owned();
        let routed = dir.join("routed").to_string_lossy().into_owned();
        let ereport = dir.join("eureka.json").to_string_lossy().into_owned();
        run_eureka(&argv(&[
            "-L",
            &lib,
            "--diagram",
            &esc,
            "-o",
            &routed,
            "--report-json",
            &ereport,
            &nets,
            &calls,
            &io,
        ]))
        .expect("eureka runs");
        let doc = fs::read_to_string(dir.join("eureka.json")).expect("report written");
        assert!(doc.contains("\"tool\": \"eureka\""), "{doc}");
        assert!(doc.contains("\"nodes_expanded\""), "{doc}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_trace_level_is_rejected() {
        let dir = scratch("tracelvl");
        let (lib, nets, calls, io) = write_inputs(&dir);
        let err = run_netart(&argv(&[
            "-L",
            &lib,
            "--trace-level",
            "loud",
            &nets,
            &calls,
            &io,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("loud"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn eureka_rejects_missing_diagram() {
        let dir = scratch("nodiag");
        let (lib, nets, calls, io) = write_inputs(&dir);
        let err = run_eureka(&argv(&["-L", &lib, &nets, &calls, &io])).unwrap_err();
        assert!(err.to_string().contains("--diagram"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn pablo_propagates_parse_errors_with_path() {
        let dir = scratch("parse");
        let (lib, nets, calls, io) = write_inputs(&dir);
        fs::write(&nets, "only two\n").unwrap();
        let err = run_pablo(&argv(&["-L", &lib, &nets, &calls, &io])).unwrap_err();
        assert!(err.to_string().contains("design.net"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_library_is_reported() {
        let dir = scratch("nolib");
        let (_, nets, calls, io) = write_inputs(&dir);
        let empty = dir.join("empty");
        fs::create_dir_all(&empty).unwrap();
        let err = run_pablo(&argv(&[
            "-L",
            &empty.to_string_lossy(),
            &nets,
            &calls,
            &io,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no .qto"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn strict_rejects_dangling_net_with_code() {
        let dir = scratch("strictnd");
        let (lib, nets, calls, io) = write_inputs(&dir);
        fs::write(&nets, "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\nnx u1 y\n").unwrap();
        let err = run_netart(&argv(&["-L", &lib, &nets, &calls, &io])).unwrap_err();
        assert!(err.to_string().contains("ND001"), "{err}");
        assert!(err.to_string().contains("design.net"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn repair_policy_fixes_and_reports() {
        let dir = scratch("repairnd");
        let (lib, nets, calls, io) = write_inputs(&dir);
        fs::write(&nets, "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\nnx u1 y\n").unwrap();
        let out = dir.join("rep").to_string_lossy().into_owned();
        let report = dir.join("report.json").to_string_lossy().into_owned();
        let run = run_netart(&argv(&[
            "--input-policy",
            "repair",
            "-L",
            &lib,
            "-o",
            &out,
            "--report-json",
            &report,
            &nets,
            &calls,
            &io,
        ]))
        .expect("repair policy proceeds");
        assert!(run.degraded, "{}", run.message);
        assert_eq!(run.exit_code(), ExitCode::from(2));
        assert!(run.message.contains("ND001"), "{}", run.message);
        let doc = fs::read_to_string(dir.join("report.json")).expect("report written");
        assert!(doc.contains("doctor_repair"), "{doc}");
        assert!(doc.contains("\"is_clean\": false"), "{doc}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn unknown_template_stub_under_repair() {
        let dir = scratch("stub");
        let (lib, nets, calls, io) = write_inputs(&dir);
        fs::write(
            &nets,
            "n0 u0 y\nn0 u1 a\nn1 u1 y\nn1 u2 a\nnin root in\nnin u0 a\n",
        )
        .unwrap();
        fs::write(&calls, "u0 inv\nu1 inv\nu2 mystery\n").unwrap();
        let err = run_netart(&argv(&["-L", &lib, &nets, &calls, &io])).unwrap_err();
        assert!(err.to_string().contains("ND004"), "{err}");
        let out = dir.join("stub").to_string_lossy().into_owned();
        let run = run_netart(&argv(&[
            "--input-policy",
            "repair",
            "-L",
            &lib,
            "-o",
            &out,
            &nets,
            &calls,
            &io,
        ]))
        .expect("stub synthesized");
        assert!(run.message.contains("ND004"), "{}", run.message);
        assert!(run.message.contains("placed 3 modules"), "{}", run.message);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn best_effort_skips_unrepairable_records() {
        let dir = scratch("besteffort");
        let (lib, nets, calls, io) = write_inputs(&dir);
        fs::write(&nets, "only two\nn0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\n").unwrap();
        // A malformed record has no repair: strict AND repair reject it.
        for policy in ["strict", "repair"] {
            let err = run_netart(&argv(&[
                "--input-policy",
                policy,
                "-L",
                &lib,
                &nets,
                &calls,
                &io,
            ]))
            .unwrap_err();
            assert!(err.to_string().contains("ND013"), "{policy}: {err}");
        }
        let out = dir.join("be").to_string_lossy().into_owned();
        let run = run_netart(&argv(&[
            "--input-policy",
            "best-effort",
            "-L",
            &lib,
            "-o",
            &out,
            &nets,
            &calls,
            &io,
        ]))
        .expect("best-effort proceeds");
        assert!(run.degraded, "{}", run.message);
        assert!(run.message.contains("ND013"), "{}", run.message);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_input_policy_is_rejected() {
        let dir = scratch("badpolicy");
        let (lib, nets, calls, io) = write_inputs(&dir);
        let err = run_netart(&argv(&[
            "--input-policy",
            "relaxed",
            "-L",
            &lib,
            &nets,
            &calls,
            &io,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("relaxed"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn quinto_repairs_off_grid_terminals() {
        let dir = scratch("quintofix");
        let lib = dir.join("lib").to_string_lossy().into_owned();
        let desc = dir.join("skew.qto");
        fs::write(&desc, "module skew 20 20\nin a 0 11\nout y 20 10\n").unwrap();
        let err = run_quinto(&argv(&["-L", &lib, &desc.to_string_lossy()])).unwrap_err();
        assert!(err.to_string().contains("ND008"), "{err}");
        let msg = run_quinto(&argv(&[
            "--input-policy",
            "repair",
            "-L",
            &lib,
            &desc.to_string_lossy(),
        ]))
        .expect("repair installs the snapped module")
        .message;
        assert!(msg.contains("ND008"), "{msg}");
        assert!(Path::new(&lib).join("skew.qto").exists());
        let _ = fs::remove_dir_all(dir);
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn inject_rejected_without_feature() {
        let dir = scratch("noinject");
        let (lib, nets, calls, io) = write_inputs(&dir);
        let err = run_netart(&argv(&[
            "--inject",
            "route.net:1:error",
            "-L",
            &lib,
            &nets,
            &calls,
            &io,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("fault-injection"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn pablo_rejects_overlapping_seeds_strict() {
        let dir = scratch("seeds");
        let (lib, nets, calls, io) = write_inputs(&dir);
        // Both instances seeded at the same origin: ND012.
        let seed = dir.join("seed.esc");
        fs::write(
            &seed,
            format!(
                "{}\nsubsys: u0 inv 0 0 0\nsubsys: u1 inv 1 0 0\n",
                escher::HEADER
            ),
        )
        .unwrap();
        let err = run_pablo(&argv(&[
            "-g",
            &seed.to_string_lossy(),
            "-L",
            &lib,
            &nets,
            &calls,
            &io,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("ND012"), "{err}");
        let out = dir.join("seeded").to_string_lossy().into_owned();
        let msg = run_pablo(&argv(&[
            "--input-policy",
            "repair",
            "-g",
            &seed.to_string_lossy(),
            "-L",
            &lib,
            "-o",
            &out,
            &nets,
            &calls,
            &io,
        ]))
        .expect("repair drops the later seed")
        .message;
        assert!(msg.contains("ND012"), "{msg}");
        assert!(dir.join("seeded.esc").exists());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn eureka_with_options_and_order() {
        let dir = scratch("opts");
        let (lib, nets, calls, io) = write_inputs(&dir);
        let out = dir.join("p").to_string_lossy().into_owned();
        run_pablo(&argv(&["-L", &lib, "-o", &out, &nets, &calls, &io])).unwrap();
        let esc = dir.join("p.esc").to_string_lossy().into_owned();
        let routed = dir.join("r").to_string_lossy().into_owned();
        let out = run_eureka(&argv(&[
            "-L", &lib, "--diagram", &esc, "-o", &routed, "-u", "-s", "-m", "6", "--order",
            "few", "--no-claims", "--no-salvage", "--route-timeout", "5000", "--max-nodes",
            "100000", &nets, &calls, &io,
        ]))
        .expect("eureka with options");
        assert!(out.message.contains("routed"), "{}", out.message);
        let err = run_eureka(&argv(&[
            "-L", &lib, "--diagram", &esc, "--order", "sideways", &nets, &calls, &io,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("sideways"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }
}
