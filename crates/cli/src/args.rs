//! A small deterministic option parser in the spirit of 1989 `getopt`:
//! single-dash flags, some taking a value, plus positional operands.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error from option parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag the command does not know.
    UnknownFlag(String),
    /// A value-taking flag at the end of the line.
    MissingValue(String),
    /// A flag value that failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
    },
    /// Wrong number of positional operands.
    Positionals {
        /// Allowed range, inclusive.
        expected: (usize, usize),
        /// What arrived.
        got: usize,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::UnknownFlag(flag) => write!(f, "unknown option `{flag}`"),
            ArgError::MissingValue(flag) => write!(f, "option `{flag}` needs a value"),
            ArgError::BadValue { flag, value } => {
                write!(f, "option `{flag}`: bad value `{value}`")
            }
            ArgError::Positionals { expected, got } => write!(
                f,
                "expected {}..{} file operand(s), got {got}",
                expected.0, expected.1
            ),
        }
    }
}

impl Error for ArgError {}

/// The result of parsing: flag → value (empty string for boolean
/// flags) and positional operands in order.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    flags: HashMap<String, String>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Parses `argv` (without the program name).
    ///
    /// `value_flags` lists the options that consume the next argument;
    /// `bool_flags` the ones that do not. `positional_range` bounds the
    /// number of file operands (inclusive).
    ///
    /// # Errors
    ///
    /// Any [`ArgError`] condition.
    pub fn parse(
        argv: &[String],
        value_flags: &[&str],
        bool_flags: &[&str],
        positional_range: (usize, usize),
    ) -> Result<Self, ArgError> {
        let mut out = ParsedArgs::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            if let Some(flag) = arg.strip_prefix('-').filter(|f| !f.is_empty()) {
                // normalise --long to long, -p to p
                let flag = flag.strip_prefix('-').unwrap_or(flag);
                if value_flags.contains(&flag) {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(arg.clone()))?;
                    out.flags.insert(flag.to_owned(), value.clone());
                } else if bool_flags.contains(&flag) {
                    out.flags.insert(flag.to_owned(), String::new());
                } else {
                    return Err(ArgError::UnknownFlag(arg.clone()));
                }
            } else {
                out.positionals.push(arg.clone());
            }
        }
        let got = out.positionals.len();
        if got < positional_range.0 || got > positional_range.1 {
            return Err(ArgError::Positionals {
                expected: positional_range,
                got,
            });
        }
        Ok(out)
    }

    /// `true` when the flag was given.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// The raw value of a value-taking flag.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Parses a flag's value, with a default when absent.
    ///
    /// # Errors
    ///
    /// [`ArgError::BadValue`] when present but unparsable.
    pub fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_owned(),
                value: v.clone(),
            }),
        }
    }

    /// The positional operands.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn mixed_flags_and_positionals() {
        let a = ParsedArgs::parse(
            &argv("-p 7 -g nets.txt calls.txt"),
            &["p"],
            &["g"],
            (1, 3),
        )
        .unwrap();
        assert_eq!(a.parsed("p", 1usize).unwrap(), 7);
        assert!(a.has("g"));
        assert!(!a.has("b"));
        assert_eq!(a.positionals(), &["nets.txt", "calls.txt"]);
        assert_eq!(a.parsed("b", 42usize).unwrap(), 42, "default");
    }

    #[test]
    fn long_flags_normalise() {
        let a = ParsedArgs::parse(&argv("--order most nets.txt"), &["order"], &[], (1, 1)).unwrap();
        assert_eq!(a.value("order"), Some("most"));
    }

    #[test]
    fn errors() {
        assert_eq!(
            ParsedArgs::parse(&argv("-z"), &[], &[], (0, 0)).unwrap_err(),
            ArgError::UnknownFlag("-z".into())
        );
        assert_eq!(
            ParsedArgs::parse(&argv("-p"), &["p"], &[], (0, 0)).unwrap_err(),
            ArgError::MissingValue("-p".into())
        );
        let a = ParsedArgs::parse(&argv("-p x"), &["p"], &[], (0, 0)).unwrap();
        assert!(matches!(a.parsed("p", 0usize), Err(ArgError::BadValue { .. })));
        assert!(matches!(
            ParsedArgs::parse(&argv("a b c"), &[], &[], (0, 1)),
            Err(ArgError::Positionals { .. })
        ));
    }

    #[test]
    fn error_messages() {
        assert!(ArgError::UnknownFlag("-z".into()).to_string().contains("-z"));
        assert!(ArgError::Positionals { expected: (1, 3), got: 0 }
            .to_string()
            .contains("1..3"));
    }
}
