//! Multi-process sharding for `netart serve`: the supervisor side and
//! the worker-side fleet view.
//!
//! `netart serve --shards N` turns the process into a supervisor: it
//! pre-binds the listener, clears `FD_CLOEXEC` on the socket, and
//! re-execs the current binary N times in a hidden `--shard-worker`
//! mode. Every worker inherits the *same* listening file descriptor
//! and runs the ordinary accept loop against it, so the kernel
//! spreads connections across the fleet and a respawned worker picks
//! the socket straight back up — connections that arrive while a
//! shard is down simply wait in the listen backlog.
//!
//! The supervisor answers no HTTP itself (all workers share the one
//! port). It babysits:
//!
//! * **exit detection** — `Child::try_wait` (waitpid) on a 10 ms
//!   tick; any exit is a death fed to the engine's [`ShardTable`]
//!   policy;
//! * **respawn with backoff** — deaths respawn after the engine's
//!   deterministic exponential-backoff schedule; the
//!   `serve.spawn` fault site fires on every spawn attempt so the
//!   chaos suite can exercise spawn failure as just another death;
//! * **crash-loop breaker** — [`SupervisorConfig::crash_limit`]
//!   deaths inside `--crash-window` quarantine the shard instead of
//!   spinning, and readiness degrades via quorum;
//! * **signal fan-out** — SIGTERM/SIGINT drains every worker within
//!   `--drain-grace` and exits 0; SIGUSR1 forwards to every live
//!   worker, each of which freezes its own shard-stamped blackbox;
//! * **fleet broadcasts** — lifecycle state (`quorum`, cumulative
//!   restarts, per-shard phases) is pushed to every worker over its
//!   piped stdin, and each worker folds it into `/readyz`, `/stats`
//!   and `/metrics`. Worker→supervisor readiness travels the other
//!   way as a `shard K ready` stdout line.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use netart_engine::{ShardAction, ShardPhase, ShardTable, SupervisorConfig};

use crate::commands::{arm_faults, CliError, RunOutput};
use crate::ParsedArgs;

/// The supervisor's reap/respawn/broadcast tick.
const SUPERVISE_TICK: Duration = Duration::from_millis(10);

// Raw libc symbol bindings, same dependency-free pattern as the
// signal handlers in `batch.rs`.
extern "C" {
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn kill(pid: i32, sig: i32) -> i32;
}
const F_SETFD: i32 = 2;
const SIGKILL: i32 = 9;
const SIGUSR1: i32 = 10;
const SIGTERM: i32 = 15;

/// Worker-mode identity: which shard this process is, how many exist,
/// and the supervisor-fed fleet view.
pub(crate) struct ShardRuntime {
    /// This worker's shard index (stamps rids, metrics, blackboxes).
    pub index: u32,
    /// Fleet state as last broadcast by the supervisor.
    pub fleet: Arc<FleetView>,
}

/// The worker's copy of fleet-wide lifecycle state, updated by the
/// supervisor's stdin broadcasts. Defaults are optimistic (quorum ok,
/// everyone live) until the first broadcast lands.
pub(crate) struct FleetView {
    quorum_ok: AtomicBool,
    restarts: AtomicU64,
    phases: Mutex<Vec<ShardPhase>>,
    /// Set when the supervisor's pipe closes: the worker is orphaned
    /// and should drain itself rather than squat on the shared socket.
    orphaned: AtomicBool,
}

impl FleetView {
    pub(crate) fn new(count: usize) -> FleetView {
        FleetView {
            quorum_ok: AtomicBool::new(true),
            restarts: AtomicU64::new(0),
            phases: Mutex::new(vec![ShardPhase::Live; count]),
            orphaned: AtomicBool::new(false),
        }
    }

    /// Whether the fleet currently meets its readiness quorum.
    pub(crate) fn quorum_ok(&self) -> bool {
        self.quorum_ok.load(Ordering::Acquire)
    }

    /// Cumulative fleet respawns, as last broadcast.
    pub(crate) fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Acquire)
    }

    /// Per-shard phases, in shard order.
    pub(crate) fn phases(&self) -> Vec<ShardPhase> {
        self.phases
            .lock()
            .map(|p| p.clone())
            .unwrap_or_default()
    }

    /// Shards currently live, per the last broadcast.
    pub(crate) fn live_count(&self) -> usize {
        self.phases()
            .iter()
            .filter(|p| **p == ShardPhase::Live)
            .count()
    }

    /// Whether the supervisor went away (stdin EOF).
    pub(crate) fn orphaned(&self) -> bool {
        self.orphaned.load(Ordering::Acquire)
    }

    /// Applies one `fleet …` broadcast line; returns the increase in
    /// the cumulative restart counter (for the worker's telemetry).
    fn apply(&self, line: &str) -> u64 {
        let Some(rest) = line.strip_prefix("fleet ") else {
            return 0;
        };
        let mut delta = 0;
        for part in rest.split_whitespace() {
            let Some((key, value)) = part.split_once('=') else {
                continue;
            };
            match key {
                "quorum" => self.quorum_ok.store(value == "1", Ordering::Release),
                "restarts" => {
                    if let Ok(total) = value.parse::<u64>() {
                        let prev = self.restarts.swap(total, Ordering::AcqRel);
                        delta = total.saturating_sub(prev);
                    }
                }
                "phases" => {
                    let parsed: Option<Vec<ShardPhase>> =
                        value.split(',').map(ShardPhase::parse).collect();
                    if let (Some(phases), Ok(mut slot)) = (parsed, self.phases.lock()) {
                        *slot = phases;
                    }
                }
                _ => {}
            }
        }
        delta
    }
}

/// Starts the worker-side fleet listener: a thread reading broadcast
/// lines off stdin into `fleet`, calling `on_restarts` with every
/// increase of the cumulative restart counter. Stdin EOF means the
/// supervisor died; the view flips to orphaned and the serve loop
/// drains itself.
pub(crate) fn spawn_fleet_listener(
    fleet: Arc<FleetView>,
    on_restarts: impl Fn(u64) + Send + 'static,
) {
    std::thread::spawn(move || {
        let mut reader = BufReader::new(std::io::stdin().lock());
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    fleet.orphaned.store(true, Ordering::Release);
                    return;
                }
                Ok(_) => {
                    let delta = fleet.apply(line.trim());
                    if delta > 0 {
                        on_restarts(delta);
                    }
                }
            }
        }
    });
}

/// Stamps a per-shard suffix into a file path: `blackbox.json` →
/// `blackbox.s2.json`, extensionless paths get `.s2` appended. Keeps
/// N workers from clobbering each other's file sinks.
fn stamp_shard(path: &str, shard: usize) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() && !ext.contains('/') => {
            format!("{stem}.s{shard}.{ext}")
        }
        _ => format!("{path}.s{shard}"),
    }
}

/// Flags the supervisor consumes itself and must not forward.
const SUPERVISOR_FLAGS: &[&str] = &["shards", "quorum", "crash-limit", "crash-window", "addr"];
/// Per-worker file sinks whose paths get a shard stamp.
const STAMPED_FLAGS: &[&str] = &["blackbox", "access-log", "trace-out"];

/// Builds one worker's argv from the supervisor's: supervisor-only
/// flags stripped, file sinks shard-stamped, and the hidden worker
/// identity (`--shard-worker K --shard-count N --shard-fd FD`)
/// appended.
fn worker_argv(argv: &[String], shard: usize, count: usize, fd: i32) -> Vec<String> {
    let mut out = Vec::with_capacity(argv.len() + 6);
    let mut stamped = HashSet::new();
    let mut i = 0;
    while i < argv.len() {
        let arg = &argv[i];
        let name = arg.trim_start_matches('-');
        let is_flag = arg.starts_with('-') && !name.is_empty() && name != arg;
        if is_flag && SUPERVISOR_FLAGS.contains(&name) {
            i += 2;
            continue;
        }
        if is_flag && STAMPED_FLAGS.contains(&name) {
            if let Some(value) = argv.get(i + 1) {
                out.push(format!("--{name}"));
                out.push(stamp_shard(value, shard));
                stamped.insert(name.to_owned());
            }
            i += 2;
            continue;
        }
        out.push(arg.clone());
        i += 1;
    }
    if !stamped.contains("blackbox") {
        // The default dump path must be shard-stamped too, or N
        // workers overwrite one `blackbox.json`.
        out.push("--blackbox".to_owned());
        out.push(stamp_shard("blackbox.json", shard));
    }
    out.push("--shard-worker".to_owned());
    out.push(shard.to_string());
    out.push("--shard-count".to_owned());
    out.push(count.to_string());
    out.push("--shard-fd".to_owned());
    out.push(fd.to_string());
    out
}

/// A worker-ready stdout line (`shard K ready`), observed by the
/// supervisor's per-worker reader thread.
enum Event {
    Ready { shard: usize, generation: u64 },
}

/// One shard's process slot in the supervisor.
struct WorkerSlot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Spawn generation, so a stale reader thread of a dead worker
    /// cannot mark its respawned successor ready.
    generation: u64,
    respawn_at: Option<Instant>,
}

impl WorkerSlot {
    fn pid(&self) -> Option<i32> {
        self.child
            .as_ref()
            .and_then(|c| i32::try_from(c.id()).ok())
    }
}

fn io_error(path: &str, source: std::io::Error) -> CliError {
    CliError::Io {
        path: path.into(),
        source,
    }
}

/// Spawns (or respawns) the worker for `slot`/`shard`. Fires the
/// `serve.spawn` fault site first — any fired kind, panic included,
/// is a simulated spawn failure. Returns whether a process is now
/// running; a `false` is the caller's cue to record a death.
fn spawn_worker(
    slot: &mut WorkerSlot,
    table: &mut ShardTable,
    shard: usize,
    argv: &[String],
    count: usize,
    fd: i32,
    events: &Sender<Event>,
) -> bool {
    table.record_spawn_attempt(shard);
    let faulted = catch_unwind(AssertUnwindSafe(|| {
        netart_fault::fire(netart_fault::sites::SERVE_SPAWN).is_some()
    }))
    .unwrap_or(true);
    if faulted {
        eprintln!("shard {shard}: injected fault at `serve.spawn`; treating as spawn failure");
        return false;
    }
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("shard {shard}: cannot resolve current executable: {e}");
            return false;
        }
    };
    let spawned = Command::new(exe)
        .arg("serve")
        .args(worker_argv(argv, shard, count, fd))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn();
    let mut child = match spawned {
        Ok(child) => child,
        Err(e) => {
            eprintln!("shard {shard}: spawn failed: {e}");
            return false;
        }
    };
    slot.generation += 1;
    slot.stdin = child.stdin.take();
    if let Some(stdout) = child.stdout.take() {
        let events = events.clone();
        let generation = slot.generation;
        let ready_line = format!("shard {shard} ready");
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line == ready_line {
                    let _ = events.send(Event::Ready { shard, generation });
                } else if !line.is_empty() {
                    // Forward worker chatter (boot warnings, the drain
                    // summary) with a shard prefix.
                    println!("[s{shard}] {line}");
                }
            }
        });
    }
    slot.child = Some(child);
    slot.respawn_at = None;
    true
}

/// Pushes the current fleet state to every worker's stdin. A write to
/// a dead worker's pipe just fails (Rust ignores SIGPIPE); the next
/// broadcast after its respawn catches it up.
fn broadcast(slots: &mut [WorkerSlot], table: &ShardTable, quorum: usize) {
    let phases = table
        .phases()
        .iter()
        .map(|p| p.as_str())
        .collect::<Vec<_>>()
        .join(",");
    let line = format!(
        "fleet quorum={} restarts={} phases={phases}\n",
        u8::from(table.quorum_ok(quorum)),
        table.restarts_total(),
    );
    for slot in slots.iter_mut() {
        if let Some(stdin) = slot.stdin.as_mut() {
            let _ = stdin.write_all(line.as_bytes());
            let _ = stdin.flush();
        }
    }
}

/// Applies one death verdict to a slot (schedule the respawn or
/// quarantine for good).
fn apply_death(slot: &mut WorkerSlot, shard: usize, action: ShardAction) {
    match action {
        ShardAction::Respawn { delay } => {
            eprintln!("shard {shard}: respawning in {delay:?}");
            slot.respawn_at = Some(Instant::now() + delay);
        }
        ShardAction::Quarantine => {
            eprintln!("shard {shard}: crash-looping; quarantined (readiness degrades)");
            slot.respawn_at = None;
        }
    }
}

/// `netart serve --shards N [--quorum K] [--crash-limit M]
/// [--crash-window ms] …`: the supervisor process. Binds the
/// listener, spawns N workers inheriting the socket, and supervises
/// until SIGTERM/SIGINT drains the fleet.
pub(crate) fn run_supervisor(
    argv: &[String],
    args: &ParsedArgs,
    shards: usize,
) -> Result<RunOutput, CliError> {
    // Arm before the first spawn attempt: `serve.spawn` fires here in
    // the supervisor; every other site rides the forwarded `--inject`
    // (and the inherited NETART_INJECT) into the workers.
    arm_faults(args)?;
    let quorum = args.parsed("quorum", shards)?.clamp(1, shards);
    let defaults = SupervisorConfig::default();
    let config = SupervisorConfig {
        crash_limit: args.parsed("crash-limit", defaults.crash_limit)?.max(1),
        crash_window: Duration::from_millis(
            args.parsed("crash-window", defaults.crash_window.as_millis() as u64)?,
        ),
        ..defaults
    };
    let drain_grace = Duration::from_millis(args.parsed("drain-grace", 5_000u64)?);

    let addr = args.value("addr").unwrap_or("127.0.0.1:4817");
    let listener = TcpListener::bind(addr).map_err(|e| io_error(addr, e))?;
    let local = listener.local_addr().map_err(|e| io_error(addr, e))?;
    let fd = listener.as_raw_fd();
    // Workers must inherit the listening socket across exec: clear
    // FD_CLOEXEC (std sets it on every fd it creates).
    if unsafe { fcntl(fd, F_SETFD, 0) } != 0 {
        return Err(io_error(addr, std::io::Error::last_os_error()));
    }

    let mut table = ShardTable::new(shards, config);
    let (events_tx, events_rx): (Sender<Event>, Receiver<Event>) = std::sync::mpsc::channel();
    let mut slots: Vec<WorkerSlot> = (0..shards)
        .map(|_| WorkerSlot {
            child: None,
            stdin: None,
            generation: 0,
            respawn_at: None,
        })
        .collect();
    for (shard, slot) in slots.iter_mut().enumerate() {
        if !spawn_worker(slot, &mut table, shard, argv, shards, fd, &events_tx) {
            let action = table.record_death(shard, Instant::now());
            apply_death(slot, shard, action);
        }
    }

    // The ServeProc/load-balancer contract: first stdout line names
    // the resolved address. Printed before the workers finish booting
    // — early connections wait in the listen backlog, nothing is
    // refused or dropped.
    println!("serving on http://{local}");
    let _ = std::io::stdout().flush();

    crate::batch::reset_signal_drain();
    loop {
        if crate::batch::take_signal_flight() {
            // SIGUSR1 fan-out: every live worker freezes its own
            // shard-stamped blackbox.
            for slot in &slots {
                if let Some(pid) = slot.pid() {
                    unsafe { kill(pid, SIGUSR1) };
                }
            }
        }
        if crate::batch::signal_drain_requested() {
            break;
        }
        let mut changed = false;
        for (shard, slot) in slots.iter_mut().enumerate() {
            let exited = slot
                .child
                .as_mut()
                .and_then(|child| child.try_wait().ok().flatten());
            if let Some(status) = exited {
                eprintln!("shard {shard}: worker exited ({status})");
                slot.child = None;
                slot.stdin = None;
                let action = table.record_death(shard, Instant::now());
                apply_death(slot, shard, action);
                changed = true;
            }
        }
        while let Ok(Event::Ready { shard, generation }) = events_rx.try_recv() {
            if slots[shard].generation == generation && slots[shard].child.is_some() {
                table.record_ready(shard);
                changed = true;
            }
        }
        for (shard, slot) in slots.iter_mut().enumerate() {
            let due = slot.respawn_at.is_some_and(|at| Instant::now() >= at);
            if due && slot.child.is_none() {
                slot.respawn_at = None;
                if !spawn_worker(slot, &mut table, shard, argv, shards, fd, &events_tx) {
                    let action = table.record_death(shard, Instant::now());
                    apply_death(slot, shard, action);
                }
                changed = true;
            }
        }
        if changed {
            broadcast(&mut slots, &table, quorum);
        }
        std::thread::sleep(SUPERVISE_TICK);
    }

    // Drain: SIGTERM fan-out, then reap everyone within the grace
    // (plus the workers' own settle margin); stragglers get SIGKILL.
    for slot in &slots {
        if let Some(pid) = slot.pid() {
            unsafe { kill(pid, SIGTERM) };
        }
    }
    let deadline = Instant::now() + drain_grace + Duration::from_secs(4);
    loop {
        for slot in slots.iter_mut() {
            if let Some(child) = slot.child.as_mut() {
                if matches!(child.try_wait(), Ok(Some(_))) {
                    slot.child = None;
                }
            }
        }
        if slots.iter().all(|s| s.child.is_none()) {
            break;
        }
        if Instant::now() >= deadline {
            for slot in slots.iter_mut() {
                if let Some(mut child) = slot.child.take() {
                    unsafe { kill(child.id() as i32, SIGKILL) };
                    let _ = child.wait();
                }
            }
            break;
        }
        std::thread::sleep(SUPERVISE_TICK);
    }

    Ok(RunOutput {
        message: format!(
            "drained cleanly: {} shard(s) supervised, {} restart(s), {} quarantined",
            shards,
            table.restarts_total(),
            table.quarantined(),
        ),
        degraded: false,
        strict: false,
        message_to_stderr: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_stamping_preserves_extensions() {
        assert_eq!(stamp_shard("blackbox.json", 2), "blackbox.s2.json");
        assert_eq!(stamp_shard("/tmp/x/access.jsonl", 0), "/tmp/x/access.s0.jsonl");
        assert_eq!(stamp_shard("dump", 1), "dump.s1");
        assert_eq!(stamp_shard("/tmp/v1.2/trace", 3), "/tmp/v1.2/trace.s3");
    }

    #[test]
    fn worker_argv_strips_supervisor_flags_and_stamps_sinks() {
        let argv: Vec<String> = [
            "--addr", "127.0.0.1:0", "-L", "libdir", "--shards", "4", "--quorum", "3",
            "--crash-limit", "3", "--crash-window", "60000", "--workers", "2",
            "--access-log", "/tmp/a.jsonl", "--blackbox", "/tmp/bb.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let worker = worker_argv(&argv, 1, 4, 7);
        let worker: Vec<&str> = worker.iter().map(String::as_str).collect();
        assert_eq!(
            worker,
            [
                "-L", "libdir", "--workers", "2",
                "--access-log", "/tmp/a.s1.jsonl", "--blackbox", "/tmp/bb.s1.json",
                "--shard-worker", "1", "--shard-count", "4", "--shard-fd", "7",
            ]
        );
    }

    #[test]
    fn worker_argv_stamps_the_default_blackbox() {
        let argv: Vec<String> = ["-L", "libdir"].iter().map(|s| s.to_string()).collect();
        let worker = worker_argv(&argv, 0, 2, 5);
        let pos = worker.iter().position(|a| a == "--blackbox").expect("default blackbox");
        assert_eq!(worker[pos + 1], "blackbox.s0.json");
    }

    #[test]
    fn fleet_view_applies_broadcasts_and_reports_deltas() {
        let view = FleetView::new(3);
        assert!(view.quorum_ok(), "optimistic before the first broadcast");
        assert_eq!(view.apply("fleet quorum=0 restarts=2 phases=live,down,quarantined"), 2);
        assert!(!view.quorum_ok());
        assert_eq!(view.restarts(), 2);
        assert_eq!(view.live_count(), 1);
        assert_eq!(
            view.phases(),
            vec![ShardPhase::Live, ShardPhase::Down, ShardPhase::Quarantined]
        );
        // Replay of the same total is a zero delta; garbage is ignored.
        assert_eq!(view.apply("fleet quorum=1 restarts=2 phases=live,live,quarantined"), 0);
        assert!(view.quorum_ok());
        assert_eq!(view.apply("not a broadcast"), 0);
        assert_eq!(view.live_count(), 2);
    }
}
