//! A minimal vendored HTTP/1.1 layer for `netart serve`.
//!
//! The no-dependency discipline rules out a web framework, and the
//! server's needs are tiny: parse one request per connection
//! (`Connection: close` semantics), enforce a body-size cap *before*
//! buffering the body, and write one response. So this module is the
//! whole HTTP surface — request line, headers, `Content-Length`
//! bodies. Chunked transfer encoding, keep-alive, and everything else
//! are deliberately refused; clients get a clear `400` instead of a
//! wedged connection.

use std::io::{Read, Write};

/// Upper bound on the request line plus headers. Anything bigger is a
/// malformed or hostile request; refuse before buffering more.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request: the line and the (possibly empty) body.
#[derive(Debug)]
pub(crate) struct Request {
    /// `GET`, `POST`, … — uppercased as received.
    pub method: String,
    /// The request target, query string included, fragment-free as on
    /// the wire.
    pub path: String,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub(crate) enum RequestError {
    /// The declared `Content-Length` exceeds the server's cap — answer
    /// `413` without reading the body.
    BodyTooLarge {
        /// What the client declared.
        declared: usize,
        /// The server's cap.
        limit: usize,
    },
    /// Not HTTP/1.1 we understand — answer `400`.
    Malformed(String),
    /// The connection died; nothing to answer.
    Io(std::io::Error),
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and parses one request from `stream`, refusing bodies larger
/// than `max_body` bytes before buffering them.
pub(crate) fn read_request<S: Read>(
    stream: &mut S,
    max_body: usize,
) -> Result<Request, RequestError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Malformed(format!(
                "header section exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(RequestError::Io)?;
        if n == 0 {
            return Err(if buf.is_empty() {
                // A probe connection (health checker, port scanner)
                // that never sent anything: not worth an answer.
                RequestError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a request",
                ))
            } else {
                RequestError::Malformed("connection closed mid-header".to_owned())
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| RequestError::Malformed("header section is not UTF-8".to_owned()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_owned();

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" {
            return Err(RequestError::Malformed(
                "chunked transfer encoding is not supported; send Content-Length".to_owned(),
            ));
        }
        if name == "content-length" {
            content_length = value.parse().map_err(|_| {
                RequestError::Malformed(format!("bad Content-Length {value:?}"))
            })?;
        }
    }
    if content_length > max_body {
        return Err(RequestError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }

    let mut body = buf.split_off(head_len + 4);
    if body.len() > content_length {
        // Pipelined trailing bytes; this server is Connection: close,
        // so anything past the declared body is dropped.
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Malformed(
                "connection closed mid-body".to_owned(),
            ));
        }
        let want = content_length - body.len();
        body.extend_from_slice(&chunk[..n.min(want)]);
    }

    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one `Connection: close` response with the given
/// `Content-Type` (the serve endpoints answer JSON everywhere except
/// the Prometheus `/metrics` text exposition).
pub(crate) fn respond<S: Write>(
    stream: &mut S,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str, max_body: usize) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/diagram HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
            1024,
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/diagram");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", 1024).expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_declared_body_is_refused_before_buffering() {
        // Only the head is sent; the cap must trip on the declaration
        // alone, without waiting for (or storing) body bytes.
        let err = parse(
            "POST /v1/diagram HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
            64,
        )
        .unwrap_err();
        match err {
            RequestError::BodyTooLarge { declared, limit } => {
                assert_eq!(declared, 1_000_000);
                assert_eq!(limit, 64);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_diagnosed() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n", 64),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/99\r\n\r\n", 64),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse(
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                64
            ),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: soon\r\n\r\n", 64),
            Err(RequestError::Malformed(_))
        ));
        // Truncated body: the connection ends before Content-Length.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 64),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse(
            "POST /x HTTP/1.1\r\ncOnTeNt-LeNgTh: 3\r\n\r\nabc",
            64,
        )
        .expect("parses");
        assert_eq!(req.body, b"abc");
    }

    #[test]
    fn an_empty_connection_is_an_io_error_not_a_malformed_request() {
        assert!(matches!(parse("", 64), Err(RequestError::Io(_))));
    }

    #[test]
    fn responses_carry_length_close_and_extra_headers() {
        let mut out = Vec::new();
        respond(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "1".to_owned())],
            "{\"status\":\"shed\"}",
        )
        .expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 17\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"status\":\"shed\"}"));
    }
}
