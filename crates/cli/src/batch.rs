//! `netart batch` — the resilient multi-input front end over
//! [`netart_engine`].
//!
//! Inputs arrive as positional operands, each one of:
//!
//! * a **directory** — every `*.net` file inside (sorted) becomes a
//!   job, paired with its `<stem>.cal` sibling and optional
//!   `<stem>.io`;
//! * a **`.net` file** — one job, same sibling convention;
//! * any **other file** — a manifest: one job per non-comment line,
//!   either `net-list call-file [io-file]` or a bare `.net` path,
//!   resolved relative to the manifest's directory.
//!
//! Each job runs the full parse→doctor→place→route→emit pipeline on a
//! worker pool with panic isolation, watchdog cancellation, retry
//! with backoff for transient failures, and quarantine for poison
//! inputs; see the crate-level docs of `netart-engine`. Outputs are
//! written atomically (`.tmp` + rename), so an interrupted batch
//! never leaves a partial diagram file. The aggregate
//! [`BatchManifest`] goes to `--report-json`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netart::diagram::svg;
use netart::netlist::doctor::{DoctorCode, InputPolicy};
use netart::netlist::ingest::{self, IngestBudgets, IngestError};
use netart::netlist::Library;
use netart::obs::{BatchManifest, FlightRecorder};
use netart::route::{CancelToken, RouteConfig};
use netart::place::PlaceConfig;
use netart_engine::{EngineConfig, JobContext, JobFailure, JobSuccess};

use crate::commands::{
    arm_faults, budget_from_args, budgets_from_args, checked_escher, exhausted_output,
    input_policy, install_subscriber, install_subscriber_with, load_library, load_network_files,
    ns, stdout_claimed, write_or_stdout, CliError, RunOutput,
};
use crate::ParsedArgs;

/// Set by the process signal handler; bridged onto the engine's drain
/// token by [`run_batch`]'s poller thread.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// Installs SIGINT/SIGTERM handlers that request a graceful drain of
/// the running batch. Called by the `netart` binary before
/// [`run_batch`]; in-process callers (tests) may skip it and drive
/// drain through the engine directly.
pub fn install_drain_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_signum: i32) {
            SIGNAL_DRAIN.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: the handler only performs an atomic store, which is
        // async-signal-safe; the raw `signal` binding avoids a libc
        // dependency.
        unsafe {
            let handler = on_signal as *const () as usize;
            let _ = signal(SIGINT, handler);
            let _ = signal(SIGTERM, handler);
        }
    }
}

/// Whether a SIGINT/SIGTERM drain request is pending. Observed by
/// [`run_batch`]'s poller and by `netart serve`'s accept loop.
pub(crate) fn signal_drain_requested() -> bool {
    SIGNAL_DRAIN.load(Ordering::SeqCst)
}

/// Set by the SIGUSR1 handler; consumed by `netart serve`'s accept
/// loop, which answers with an on-demand blackbox dump.
static SIGNAL_FLIGHT: AtomicBool = AtomicBool::new(false);

/// Installs a SIGUSR1 handler that requests an on-demand blackbox
/// dump from the running `netart serve`. Same raw-`signal` pattern as
/// [`install_drain_handlers`]; called by the binary before
/// [`crate::run_serve`].
pub fn install_flight_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_signum: i32) {
            SIGNAL_FLIGHT.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGUSR1: i32 = 10;
        // SAFETY: the handler only performs an atomic store, which is
        // async-signal-safe; the raw `signal` binding avoids a libc
        // dependency.
        unsafe {
            let _ = signal(SIGUSR1, on_signal as *const () as usize);
        }
    }
}

/// Takes (and clears) a pending SIGUSR1 dump request, so one signal
/// produces exactly one dump.
pub(crate) fn take_signal_flight() -> bool {
    SIGNAL_FLIGHT.swap(false, Ordering::SeqCst)
}

/// Clears a pending drain request so each resident run starts fresh
/// (a signal delivered to a *previous* run must not drain this one).
pub(crate) fn reset_signal_drain() {
    SIGNAL_DRAIN.store(false, Ordering::SeqCst);
}

/// One batch job: a netlist group plus its output stem.
#[derive(Debug, Clone)]
struct BatchJob {
    net: PathBuf,
    cal: PathBuf,
    io: Option<PathBuf>,
    stem: String,
}

/// Builds a job from a `.net` path via the sibling convention.
fn job_from_net(net: PathBuf) -> Result<BatchJob, CliError> {
    let cal = net.with_extension("cal");
    if !cal.is_file() {
        return Err(CliError::Other(format!(
            "{}: missing companion call file {}",
            net.display(),
            cal.display()
        )));
    }
    let io = net.with_extension("io");
    let io = io.is_file().then_some(io);
    let stem = net
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    Ok(BatchJob { net, cal, io, stem })
}

/// Parses one manifest line: `net cal [io]` or a bare `.net` path.
fn job_from_manifest_line(
    base: &Path,
    line: &str,
    manifest: &Path,
    lineno: usize,
) -> Result<BatchJob, CliError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    match fields.as_slice() {
        [net] => job_from_net(base.join(net)),
        [net, cal] | [net, cal, _] => {
            let net = base.join(net);
            let stem = net
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            Ok(BatchJob {
                net,
                cal: base.join(cal),
                io: fields.get(2).map(|io| base.join(io)),
                stem,
            })
        }
        _ => Err(CliError::Other(format!(
            "{}:{lineno}: expected `net-list [call-file [io-file]]`, got {} fields",
            manifest.display(),
            fields.len()
        ))),
    }
}

/// Expands every positional operand into jobs, keyed and sorted by
/// the net-list path so the batch order (and the manifest) is
/// deterministic regardless of how the inputs were spelled.
fn collect_jobs(
    positionals: &[String],
    budgets: &IngestBudgets,
) -> Result<BTreeMap<String, BatchJob>, CliError> {
    let mut jobs: BTreeMap<String, BatchJob> = BTreeMap::new();
    let mut add = |job: BatchJob| {
        jobs.insert(job.net.to_string_lossy().into_owned(), job);
    };
    for operand in positionals {
        let path = PathBuf::from(operand);
        if path.is_dir() {
            let mut nets: Vec<PathBuf> = std::fs::read_dir(&path)
                .map_err(|source| CliError::Io {
                    path: path.clone(),
                    source,
                })?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "net"))
                .collect();
            nets.sort();
            if nets.is_empty() {
                return Err(CliError::Other(format!(
                    "{}: no .net job inputs in directory",
                    path.display()
                )));
            }
            for net in nets {
                add(job_from_net(net)?);
            }
        } else if path.extension().is_some_and(|e| e == "net") {
            add(job_from_net(path)?);
        } else {
            // A manifest streams line-at-a-time under the input budget
            // like every other ingested file — a hostile multi-gigabyte
            // "manifest" is refused, not slurped.
            let file = std::fs::File::open(&path).map_err(|source| CliError::Io {
                path: path.clone(),
                source,
            })?;
            let base = path.parent().unwrap_or(Path::new(".")).to_owned();
            let mut any = false;
            let mut bad: Option<CliError> = None;
            let streamed = ingest::for_each_line(
                std::io::BufReader::new(file),
                &budgets.input,
                "batch manifest",
                |lineno, line| {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        return Ok(());
                    }
                    match job_from_manifest_line(&base, line, &path, lineno) {
                        Ok(job) => {
                            add(job);
                            any = true;
                            Ok(())
                        }
                        Err(e) => {
                            // Stash the structured error; the sentinel
                            // below only stops the streaming loop.
                            bad = Some(e);
                            Err(IngestError::Parse(netart::netlist::ParseError::new(
                                lineno,
                                "unusable manifest line",
                            )))
                        }
                    }
                },
            );
            if let Some(e) = bad {
                return Err(e);
            }
            streamed.map_err(|e| match e {
                IngestError::Io(source) => CliError::Io {
                    path: path.clone(),
                    source,
                },
                IngestError::Exhausted(x) => CliError::ResourceExhausted {
                    path: path.clone(),
                    message: format!("{} {x}", DoctorCode::ResourceExhausted.as_str()),
                },
                IngestError::Parse(p) => CliError::Parse {
                    path: path.clone(),
                    message: p.to_string(),
                },
            })?;
            if !any {
                return Err(CliError::Other(format!(
                    "{}: manifest lists no jobs",
                    path.display()
                )));
            }
        }
    }
    // Output stems must be unique or jobs would overwrite each other.
    let mut stems: BTreeMap<&str, &str> = BTreeMap::new();
    for (key, job) in &jobs {
        if let Some(first) = stems.insert(job.stem.as_str(), key.as_str()) {
            return Err(CliError::Other(format!(
                "jobs `{first}` and `{key}` both emit `{}.esc`; rename one input",
                job.stem
            )));
        }
    }
    Ok(jobs)
}

/// Writes `contents` to `path` atomically: a `.tmp` sibling is
/// written first and renamed into place, so readers (and interrupted
/// batches) never observe a partial file.
fn write_atomic(path: &Path, contents: &str) -> Result<(), CliError> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    std::fs::write(&tmp, contents).map_err(|source| CliError::Io {
        path: tmp.clone(),
        source,
    })?;
    std::fs::rename(&tmp, path).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })
}

/// One pipeline attempt for one job. Classification contract with the
/// engine: `Err(transient)` retries (injected faults, budget
/// exhaustion below the final attempt, watchdog cancellation),
/// `Err(permanent)` fails immediately (genuine parse/IO errors), `Ok`
/// resolves the job as `ok`/`degraded` by degradation count.
#[allow(clippy::too_many_arguments)]
fn attempt_job(
    job: &BatchJob,
    ctx: &JobContext,
    lib: &Library,
    policy: InputPolicy,
    base_budget: netart::route::Budget,
    ingest_budgets: &IngestBudgets,
    out_dir: &Path,
    strict_inputs: bool,
) -> Result<JobSuccess, JobFailure> {
    let fired_before = netart_fault::fired_count();
    // A failure that coincides with a newly fired fault site is
    // injected, hence transient. (With `--jobs` > 1 a concurrent
    // job's fault can blur the attribution; chaos tests pin
    // `--jobs 1`.)
    let classify = |e: CliError| {
        if netart_fault::fired_count() > fired_before {
            JobFailure::transient(e.to_string())
        } else {
            JobFailure::permanent(e.to_string())
        }
    };
    let t_parse = Instant::now();
    // Fresh per-job budgets with the configured limits: a finished
    // job's network charges must not starve the jobs after it.
    let budgets = ingest_budgets.fresh();
    let (network, mut cli_degs) = load_network_files(
        lib.clone(),
        &job.net,
        &job.cal,
        job.io.as_deref(),
        policy,
        &budgets,
    )
    .map_err(classify)?;
    let parse_ns = ns(t_parse.elapsed());

    // Retries escalate the routing budget, like the salvage cascade
    // escalates per net: a transiently tight budget deserves a real
    // second chance, not an identical rerun.
    let escalation = 1u32 << (ctx.attempt - 1).min(16);
    let route = RouteConfig::new()
        .with_budget(base_budget.scaled(escalation))
        .with_cancel(ctx.cancel.clone());
    let outcome = netart::Generator::new()
        .with_placing(PlaceConfig::new())
        .with_routing(route)
        .generate(network);

    if ctx.cancel.is_cancelled() {
        // Watchdog timeout or drain: the routed result is truncated;
        // never emit it.
        return Err(JobFailure::transient("attempt cancelled".to_owned()));
    }
    let over_budget = outcome.report.net_stats.iter().any(|s| s.over_budget);
    if over_budget && !base_budget.is_unlimited() && !ctx.last_attempt {
        return Err(JobFailure::transient(format!(
            "budget exhausted at escalation x{escalation}; retrying with a larger budget"
        )));
    }

    let t_emit = Instant::now();
    let esc = checked_escher(&job.stem, &outcome.diagram, &mut cli_degs).map_err(classify)?;
    write_atomic(&out_dir.join(format!("{}.esc", job.stem)), &esc).map_err(classify)?;
    write_atomic(
        &out_dir.join(format!("{}.svg", job.stem)),
        &svg::render_with_structure(&outcome.diagram),
    )
    .map_err(classify)?;

    let mut report = outcome.run_report("netart");
    report.push_phase_front("parse", parse_ns);
    report.push_phase("emit", ns(t_emit.elapsed()));
    for d in &cli_degs {
        report.push_degradation(d.clone());
    }
    let degradations = report.degradations.len();
    if strict_inputs && degradations > 0 && !ctx.last_attempt {
        // `--strict` batches treat any degradation as retry-worthy
        // only when it was injected; otherwise accept it.
        if netart_fault::fired_count() > fired_before {
            return Err(JobFailure::transient(
                "degraded by an injected fault; retrying".to_owned(),
            ));
        }
    }
    Ok(JobSuccess {
        report: Some(report),
        degradations,
    })
}

/// `netart batch [--jobs n] [--max-attempts n] [--job-timeout ms]
/// [--drain-grace ms] [--route-timeout ms] [--max-nodes n]
/// [--out-dir dir] [--report-json manifest.json] [--strict]
/// [--input-policy p] [--inject spec] [--trace-level lvl] [--log-json]
/// [-L libdir] <dir | jobs.list | job.net> […]`
///
/// Runs every job through the full pipeline on a worker pool with
/// per-job isolation, watchdog cancellation, retry/backoff and
/// quarantine, then writes the aggregate [`BatchManifest`]. Exit
/// codes mirror the single-run CLI: 0 when every job is `ok`, 2 when
/// any job degraded / failed / was quarantined or skipped (1 under
/// `--strict`), 1 when the batch itself could not run.
///
/// # Errors
///
/// Any [`CliError`] condition (bad flags, no jobs, unreadable
/// library, unwritable manifest).
pub fn run_batch(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "jobs", "max-attempts", "job-timeout", "drain-grace", "route-timeout", "max-nodes",
            "L", "out-dir", "report-json", "input-policy", "inject", "trace-level",
            "max-input-bytes", "max-network-bytes", "blackbox",
        ],
        &["log-json", "strict"],
        (1, usize::MAX),
    )?;
    let message_to_stderr = stdout_claimed(&args)?;
    // `--blackbox <path>` arms the flight recorder: span closes and
    // events ride the fan-out into a bounded ring, and a quarantined
    // job freezes the ring into a post-mortem dump at that path.
    let _trace = if let Some(path) = args.value("blackbox") {
        let (recorder, handle) =
            FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY, tracing::Level::INFO);
        let path = PathBuf::from(path);
        netart_engine::set_quarantine_hook(Some(Box::new(move |record| {
            let dump = handle.snapshot("quarantine", Some(&record.input));
            if !crate::blackbox::write_dump(&path, &dump) {
                handle.note_degradation("flight_dump_failed");
            }
        })));
        install_subscriber_with(&args, vec![Box::new(recorder)])?
    } else {
        install_subscriber(&args)?
    };
    arm_faults(&args)?;
    let policy = input_policy(&args)?;
    let base_budget = budget_from_args(&args)?;
    let ingest_budgets = budgets_from_args(&args)?;
    let strict = args.has("strict");

    let mut lib_degs = Vec::new();
    let lib = match load_library(&args, policy, &ingest_budgets, &mut lib_degs) {
        Ok(lib) => lib,
        Err(e @ CliError::ResourceExhausted { .. }) => {
            return Ok(exhausted_output(&e, strict, message_to_stderr))
        }
        Err(e) => return Err(e),
    };
    let jobs = match collect_jobs(args.positionals(), &ingest_budgets) {
        Ok(jobs) => jobs,
        Err(e @ CliError::ResourceExhausted { .. }) => {
            return Ok(exhausted_output(&e, strict, message_to_stderr))
        }
        Err(e) => return Err(e),
    };
    let inputs: Vec<String> = jobs.keys().cloned().collect();
    let out_dir = PathBuf::from(args.value("out-dir").unwrap_or("."));
    std::fs::create_dir_all(&out_dir).map_err(|source| CliError::Io {
        path: out_dir.clone(),
        source,
    })?;

    let ms_flag = |flag: &str, default: u64| -> Result<u64, CliError> {
        args.parsed(flag, default).map_err(CliError::Args)
    };
    let job_timeout = match args.value("job-timeout") {
        Some(_) => Some(Duration::from_millis(ms_flag("job-timeout", 0)?)),
        None => None,
    };
    let config = EngineConfig {
        workers: args.parsed("jobs", 1u32)?,
        max_attempts: args.parsed("max-attempts", 3u32)?,
        job_timeout,
        drain_grace: Duration::from_millis(ms_flag("drain-grace", 5_000)?),
        ..EngineConfig::default()
    };

    // Bridge the process signal flag onto the engine's drain token.
    SIGNAL_DRAIN.store(false, Ordering::SeqCst);
    let drain = CancelToken::new();
    let done = Arc::new(AtomicBool::new(false));
    let poller = {
        let drain = drain.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                if SIGNAL_DRAIN.load(Ordering::SeqCst) {
                    drain.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let manifest: BatchManifest = netart_engine::run(
        "netart batch",
        &inputs,
        &config,
        &drain,
        |input, ctx| match jobs.get(input) {
            Some(job) => attempt_job(
                job,
                ctx,
                &lib,
                policy,
                base_budget,
                &ingest_budgets,
                &out_dir,
                strict,
            ),
            None => Err(JobFailure::permanent(format!("unknown job key `{input}`"))),
        },
    );
    done.store(true, Ordering::Release);
    let _ = poller.join();
    if args.value("blackbox").is_some() {
        // Drop the hook's handle so in-process callers (tests) never
        // see a stale recorder from a previous batch.
        netart_engine::set_quarantine_hook(None);
    }

    if let Some(path) = args.value("report-json") {
        write_or_stdout(path, &manifest.to_json_string())?;
    }

    let s = &manifest.summary;
    let mut message = format!(
        "batch: {} job(s) on {} worker(s) — ok {}, degraded {}, failed {}, quarantined {}, skipped {}{}",
        manifest.jobs.len(),
        manifest.jobs_in_flight,
        s.ok,
        s.degraded,
        s.failed,
        s.quarantined,
        s.skipped,
        if manifest.drained { " (drained)" } else { "" },
    );
    for d in &lib_degs {
        message.push_str(&format!(
            "\nwarning: {}",
            d.detail.as_deref().unwrap_or(&d.kind)
        ));
    }
    for job in &manifest.jobs {
        if let Some(error) = &job.error {
            message.push_str(&format!(
                "\nwarning: {} {} after {} attempt(s): {error}",
                job.input,
                job.status.as_str(),
                job.attempts
            ));
        }
    }
    Ok(RunOutput {
        message,
        degraded: manifest.exit_code() != 0,
        strict,
        message_to_stderr,
    })
}
